module go-arxiv/smore

go 1.24
