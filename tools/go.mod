// Tools module: pins the external analyzer versions via Go 1.24 `tool`
// directives, so Makefile and CI build them with `go install tool` instead
// of copy-pasted `go install pkg@version` lines that drift. Kept as a
// nested module so the analyzers' large dependency graphs never enter the
// main module (which is deliberately dependency-free).
//
// go.sum is generated on first use (`go mod tidy`, run by `make lint`):
// this repo is developed offline, so the sum file cannot be committed from
// the dev environment.
module go-arxiv/smore/tools

go 1.24

tool (
	golang.org/x/vuln/cmd/govulncheck
	honnef.co/go/tools/cmd/staticcheck
)

require (
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.6.0
)
