GO ?= go

# Benchmark-regression gate configuration (see cmd/benchjson). The committed
# BENCH_N.json with the highest N is the performance baseline; bench-json
# fails when any benchmark's ns/op regresses more than MAX_REGRESS against
# it. When a deliberate perf change lands, commit a new BENCH_N.json and
# bump BENCH_BASELINE here and in .github/workflows/ci.yml.
BENCH_BASELINE ?= BENCH_3.json
MAX_REGRESS ?= 0.25

# Fuzzing knobs: CI fans these out as a matrix over every fuzz target and
# caches the corpus between runs (see the fuzz job in ci.yml).
FUZZPKG ?= ./internal/hdc
FUZZ ?= FuzzVectorRoundTrip
FUZZTIME ?= 30s

.PHONY: build test race bench bench-json lint fuzz fmt fmt-check vet vet-smore demo serve e2e ablate-smoke drift-smoke loadgen-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# bench-json reruns the benchmark suite, snapshots it to BENCH_new.json in
# the BENCH_N.json schema, and enforces the regression gate against
# $(BENCH_BASELINE): >MAX_REGRESS ns/op growth or any allocation on a
# zero-alloc baseline benchmark fails. Each benchmark runs BENCH_COUNT
# times and benchjson keeps the fastest, damping scheduler noise on shared
# CI runners. The raw go-test output is preserved in bench_raw.txt (CI
# uploads it as an artifact for triage). Run `go run ./cmd/benchjson -h`
# for the tool's flags.
BENCH_COUNT ?= 3
# bash + pipefail so a go-test failure cannot be masked by benchjson's exit
# status (sh's pipeline status is the last command's only).
bench-json: SHELL := /bin/bash
bench-json:
	set -o pipefail; \
	$(GO) test -bench . -benchmem -run '^$$' -count $(BENCH_COUNT) ./... \
		| tee bench_raw.txt \
		| $(GO) run ./cmd/benchjson -out BENCH_new.json -baseline $(BENCH_BASELINE) -max-regress $(MAX_REGRESS)

# lint mirrors the CI lint job. The analyzer versions are pinned once, by
# the `tool` directives in tools/go.mod; `go install tool` builds exactly
# those versions into ./bin. The tidy fills in tools/go.sum on first run
# (the sum file is not committed; see tools/go.mod).
lint:
	cd tools && $(GO) mod tidy
	cd tools && GOBIN=$(CURDIR)/bin $(GO) install tool
	./bin/staticcheck ./...
	./bin/govulncheck ./...

# vet-smore runs the repo's own analyzer suite (cmd/smorevet) as a vet
# tool: lockdiscipline, hotpath, errenvelope, and atomicsnap mechanically
# enforce the concurrency, hot-path, and error-envelope invariants the
# package docs promise. See cmd/smorevet for the diagnostics and the
# //smorevet:allow suppression syntax.
vet-smore:
	$(GO) build -o bin/smorevet ./cmd/smorevet
	$(GO) vet -vettool=$(CURDIR)/bin/smorevet ./...

fuzz:
	$(GO) test $(FUZZPKG) -run '^$$' -fuzz '$(FUZZ)$$' -fuzztime $(FUZZTIME)

fmt:
	gofmt -l -w .

# fmt-check fails (listing the offenders) instead of rewriting; CI's lint
# job runs this so unformatted files cannot land.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

demo:
	$(GO) run ./cmd/smore

# serve trains+saves a small model and boots the HTTP serving surface on it.
# Endpoints: POST /v1/predict, POST /v1/adapt, GET /v1/model, /healthz,
# /metrics (see cmd/smore-serve). Override ADDR/MODEL as needed.
ADDR ?= 127.0.0.1:8080
MODEL ?= /tmp/smore-model.smore
serve:
	$(GO) run ./cmd/smore -save $(MODEL) > /dev/null
	$(GO) run ./cmd/smore-serve -load $(MODEL) -addr $(ADDR)

# e2e boots smore-serve on a freshly trained bundle and round-trips every
# endpoint with curl, including a byte-identical /v1/model export check.
e2e:
	./scripts/e2e_serve.sh

# ablate-smoke runs a fast adaptation-strategy sweep (2 strategies × 2 seeds
# on a small config) as a CI sanity check of the ablation runner, writing
# ablate.json + ablate.md. In GitHub Actions the markdown table lands on the
# job's step summary. Full grids: `go run ./cmd/smore ablate -h`.
ABLATE_STRATEGIES ?= margin+constant+bundle,margin+anneal+bundle
ABLATE_SEEDS ?= 42,43
ablate-smoke:
	$(GO) run ./cmd/smore ablate -dim 1024 -levels 16 -ngram 3 -sensors 3 \
		-classes 4 -window 48 -per-class 24 -retrain 2 \
		-strategies '$(ABLATE_STRATEGIES)' -seeds '$(ABLATE_SEEDS)' \
		-out-json ablate.json -out-md ablate.md
	@if [ -n "$$GITHUB_STEP_SUMMARY" ]; then cat ablate.md >> "$$GITHUB_STEP_SUMMARY"; fi

# drift-smoke replays the two-shift continual-adaptation scenario through
# the real CLI: phase A adapts to the standard target, phase B streams a
# second shifted domain, and -require-drift makes the run exit non-zero
# unless the spawn policy opened a second target AND final phase-B accuracy
# beat the frozen single-target baseline. The 0.04 threshold pairs with the
# pipeline's DefaultDriftShift (see internal/pipeline/drift_eval.go).
drift-smoke:
	$(GO) run ./cmd/smore stream -dim 1024 -sensors 3 -classes 4 -window 48 \
		-per-class 24 -levels 16 -seed 7 -batch 8 -adapt-epochs 10 \
		-drift-policy spawn:0.04 -require-drift

# loadgen-smoke is the crash-safe-serving proof point: smore-loadgen drives a
# mixed predict/stream/drift workload against a checkpointing server (zero
# 5xx, bounded p99, exact queue reconciliation), then against an overloaded
# server with injected fold failures (429/503 all carry Retry-After, the
# circuit breaker trips). Reports: loadgen_clean.json / loadgen_overload.json.
loadgen-smoke:
	./scripts/loadgen_smoke.sh

clean:
	$(GO) clean -testcache
	rm -f BENCH_new.json bench_raw.txt ablate.json ablate.md loadgen_clean.json loadgen_overload.json
