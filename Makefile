GO ?= go

.PHONY: build test race bench fuzz fmt vet demo clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

fuzz:
	$(GO) test ./internal/hdc -run '^$$' -fuzz FuzzVectorRoundTrip -fuzztime 30s

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

demo:
	$(GO) run ./cmd/smore

clean:
	$(GO) clean -testcache
