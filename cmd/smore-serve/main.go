// Command smore-serve is the long-running HTTP serving surface around a
// trained SMORE model bundle (written by `smore -save`): batched
// encode→predict, incremental adaptation on unlabeled batches, model
// export, and health/metrics endpoints.
//
//	smore-serve -load model.smore -addr :8080
//
//	POST /v1/predict  {"windows": [[[...]]]} → {"predictions": [...]}
//	POST /v1/adapt    {"windows": [[[...]]]} → {"stats": {...}}
//	GET  /v1/model    canonical bundle bytes (byte-identical to the file)
//	GET  /healthz     liveness + model summary
//	GET  /metrics     per-endpoint and per-stage latency counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/serve"
)

func main() {
	var (
		load     = flag.String("load", "", "model bundle to serve (required; written by smore -save)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker-pool size for encode/predict batches (0 = all cores)")
		maxBatch = flag.Int("max-batch", 1024, "maximum windows per request")
		maxBody  = flag.Int64("max-body", 32<<20, "maximum request body bytes")
	)
	flag.Parse()
	if *load == "" {
		fmt.Fprintln(os.Stderr, "smore-serve: -load is required")
		flag.Usage()
		os.Exit(2)
	}

	b, err := pipeline.LoadBundleFile(*load)
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	srv, err := serve.New(b, serve.Options{
		Workers: *workers, MaxBatch: *maxBatch, MaxBody: *maxBody,
	})
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	mcfg := b.Model.Config()
	log.Printf("smore-serve: serving %s on %s (dim=%d classes=%d sensors=%d adapted=%v)",
		*load, *addr, mcfg.Dim, mcfg.Classes, b.Encoder.Sensors, b.Model.Adapted())

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("smore-serve: shutdown: %v", err)
		}
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("smore-serve: %v", err)
	}
	log.Print("smore-serve: shut down")
}
