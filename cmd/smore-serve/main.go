// Command smore-serve is the long-running HTTP serving surface around a
// trained SMORE model bundle (written by `smore -save`): batched
// encode→predict, incremental adaptation on unlabeled batches, a streaming
// adaptation queue, model export, and health/metrics endpoints.
//
//	smore-serve -load model.smore -addr :8080
//
//	POST   /v1/predict                    {"windows": [[[...]]]} → {"predictions": [...]}
//	POST   /v1/adapt                      {"windows": [[[...]]]} → {"stats": {...}}
//	POST   /v1/stream/adapt               enqueue windows for background adaptation → 202 (429 when full)
//	GET    /v1/stream/stats               streaming queue depth, folds, drift trajectory, target set
//	POST   /v1/stream/rollback            restore the pre-drift checkpoint (409 no_checkpoint without one)
//	POST   /v1/checkpoint                 persist a durable checkpoint now (409 no_state_dir without -state-dir)
//	GET    /v1/model                      canonical bundle bytes (byte-identical to the file)
//	GET    /v1/models                     registry listing
//	POST   /v1/models/{name}              upload a bundle (create or atomic hot swap; LRU-evicts past -max-models)
//	GET    /v1/models/{name}              canonical named bundle bytes
//	DELETE /v1/models/{name}              remove a named model (the default is pinned)
//	POST   /v1/models/{name}/predict      per-model predict (also .../adapt, .../stream/adapt, .../stream/stats, .../stream/rollback, .../checkpoint)
//	GET    /healthz                       liveness + model summary
//	GET    /metrics                       per-endpoint, per-stage, and per-model counters
//
// Durability: with -state-dir every model's bundle (and drift-rollback
// checkpoint) is persisted there via temp-file + fsync + atomic rename — on
// the -checkpoint-interval cadence, after every -checkpoint-folds stream
// folds, on POST .../checkpoint, and at shutdown. On restart the last good
// generation of every model is recovered; torn or corrupt files fall back to
// the previous generation, so a kill -9 mid-write never loses more than the
// folds since the last checkpoint.
//
// Overload protection: -request-timeout bounds each request's handler work
// (503 deadline_exceeded past it), -max-in-flight caps concurrently admitted
// model-route requests (429 overloaded past it), and -breaker-threshold opens
// a per-model circuit after that many consecutive stream-fold failures (503
// adapter_open until -breaker-cooldown elapses, then one probe batch). Every
// 429/503 carries a Retry-After header.
//
// Fault injection (testing only): -fault (or SMORE_FAULT) arms deterministic
// seeded failure injectors by name, e.g.
// "persist.torn:times=1,stream.fold.err:p=0.1"; see internal/fault for the
// point registry and spec grammar. Off (the default) it costs one atomic
// load per hook.
//
// On SIGINT/SIGTERM the server stops listening, waits for in-flight
// requests, drains the streaming queue into the model, and — with -state-dir
// — takes a final checkpoint before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"go-arxiv/smore/internal/fault"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/serve"
	"go-arxiv/smore/internal/stream"
)

// envUint64 parses an environment variable as a uint64 flag default.
func envUint64(name string, def uint64) uint64 {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		log.Fatalf("smore-serve: %s: %v", name, err)
	}
	return n
}

// pprofListenAddr normalizes the -pprof-addr flag: a bare port or
// ":port" binds localhost, so profiling is never exposed on all
// interfaces unless an explicit host is given.
func pprofListenAddr(addr string) string {
	if !strings.Contains(addr, ":") {
		return "127.0.0.1:" + addr
	}
	if strings.HasPrefix(addr, ":") {
		return "127.0.0.1" + addr
	}
	return addr
}

// startPprof serves net/http/pprof on its own mux and listener, separate
// from the public API surface, so the debug endpoints never ride along on
// the serving address. The listen happens synchronously so a bad or in-use
// -pprof-addr fails the process at startup instead of logging success and
// dying silently in a goroutine.
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Handler: mux,
		// Slow-client bounds, mirroring the main listener. Write stays
		// generous because /debug/pprof/profile and /trace stream for
		// their whole sampling window.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("smore-serve: pprof listener: %v", err)
	}
	log.Printf("smore-serve: pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("smore-serve: pprof listener: %v", err)
		}
	}()
}

func main() {
	var (
		load         = flag.String("load", "", "model bundle to serve (required; written by smore -save)")
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker-pool size for encode/predict batches (0 = all cores)")
		maxBatch     = flag.Int("max-batch", 1024, "maximum windows per request")
		maxBody      = flag.Int64("max-body", 32<<20, "maximum request body bytes")
		streamQueue  = flag.Int("stream-queue", 4096, "streaming adaptation queue capacity in windows (full queue → 429)")
		streamBatch  = flag.Int("stream-batch", 256, "maximum windows folded per background adaptation batch")
		maxModels    = flag.Int("max-models", 8, "maximum named models held by the registry (uploads past the cap LRU-evict)")
		readTimeout  = flag.Duration("read-timeout", time.Minute, "maximum duration for reading an entire request")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute, "maximum duration for writing a response")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight requests, then again for the stream queue")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (opt-in; a bare port like 6060 binds localhost); empty disables")
		strategy     = flag.String("strategy", "", "override the default model's adaptation strategy (confidence+schedule+update; empty keeps the bundle's)")
		driftPolicy  = flag.String("drift-policy", "", "spawn fresh target domains on streamed drift: none | spawn[:threshold] | spawn+retire[:threshold] (empty = none, EMA still tracked)")
		maxTargets   = flag.Int("max-targets", 0, "live-target cap per model under a retiring drift policy (0 = default)")

		stateDir     = flag.String("state-dir", "", "durable checkpoint directory; empty disables checkpointing and recovery")
		ckptInterval = flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint cadence for models with unpersisted folds (0 disables the ticker)")
		ckptFolds    = flag.Int("checkpoint-folds", 0, "checkpoint a model after this many stream folds since its last checkpoint (0 disables the trigger)")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request handler deadline; past it the request fails 503 deadline_exceeded (0 disables)")
		maxInFlight  = flag.Int("max-in-flight", 0, "concurrently admitted model-route requests; past the cap requests fail 429 overloaded (0 disables)")
		brThreshold  = flag.Int("breaker-threshold", 0, "consecutive stream-fold failures that open a model's circuit → 503 adapter_open (0 disables)")
		brCooldown   = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit duration before the half-open probe batch")
		faultSpec    = flag.String("fault", os.Getenv("SMORE_FAULT"), "deterministic fault-injection spec, e.g. \"persist.torn:times=1,stream.fold.err:p=0.1\" (testing only; also SMORE_FAULT)")
		faultSeed    = flag.Uint64("fault-seed", envUint64("SMORE_FAULT_SEED", 1), "seed for the fault injectors' deterministic randomness (also SMORE_FAULT_SEED)")
	)
	flag.Parse()
	if *faultSpec != "" {
		if err := fault.Enable(*faultSpec, *faultSeed); err != nil {
			log.Fatalf("smore-serve: %v", err)
		}
		log.Printf("smore-serve: FAULT INJECTION ARMED: %s (seed %d)", fault.Spec(), *faultSeed)
	}
	if *load == "" {
		fmt.Fprintln(os.Stderr, "smore-serve: -load is required")
		flag.Usage()
		os.Exit(2)
	}

	b, err := pipeline.LoadBundleFile(*load)
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	if *strategy != "" {
		strat, err := model.ParseStrategySpec(*strategy)
		if err != nil {
			log.Fatalf("smore-serve: %v", err)
		}
		b.Model.SetStrategy(strat)
	}
	policy, err := stream.ParseDriftPolicy(*driftPolicy)
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	srv, err := serve.New(b, serve.Options{
		Workers: *workers, MaxBatch: *maxBatch, MaxBody: *maxBody,
		StreamQueue: *streamQueue, StreamBatch: *streamBatch,
		DriftPolicy: policy, MaxTargets: *maxTargets,
		MaxModels: *maxModels,
		StateDir:  *stateDir, CheckpointInterval: *ckptInterval, CheckpointFolds: *ckptFolds,
		RequestTimeout: *reqTimeout, MaxInFlight: *maxInFlight,
		BreakerThreshold: *brThreshold, BreakerCooldown: *brCooldown,
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	mcfg := b.Model.Config()
	log.Printf("smore-serve: serving %s on %s (dim=%d classes=%d sensors=%d adapted=%v strategy=%s drift-policy=%s stream-queue=%d stream-batch=%d max-models=%d)",
		*load, *addr, mcfg.Dim, mcfg.Classes, b.Encoder.Sensors, b.Model.Adapted(), b.Model.Strategy(), policy.Name(), *streamQueue, *streamBatch, *maxModels)
	if *pprofAddr != "" {
		startPprof(pprofListenAddr(*pprofAddr))
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// The listener failed outright (bad address, port in use).
		log.Fatalf("smore-serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting on the drain
	log.Print("smore-serve: shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("smore-serve: http shutdown: %v", err)
	}
	cancel()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("smore-serve: %v", err)
	}
	st := srv.StreamStats()
	if !st.Drained() {
		log.Printf("smore-serve: draining stream queue (%d queued, %d in flight)", st.QueueDepth, st.InFlight)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := srv.Close(drainCtx)
	cancel()
	st = srv.StreamStats()
	log.Printf("smore-serve: shut down (stream: %d windows folded in %d batches, %d dropped)",
		st.WindowsFolded, st.BatchesFolded, st.Dropped)
	if drainErr != nil {
		// 202-accepted windows were discarded; make that visible to
		// supervisors instead of reporting a clean shutdown.
		log.Fatalf("smore-serve: stream drain: %v (%d windows lost)", drainErr, st.QueueDepth+st.InFlight)
	}
}
