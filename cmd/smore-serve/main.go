// Command smore-serve is the long-running HTTP serving surface around a
// trained SMORE model bundle (written by `smore -save`): batched
// encode→predict, incremental adaptation on unlabeled batches, a streaming
// adaptation queue, model export, and health/metrics endpoints.
//
//	smore-serve -load model.smore -addr :8080
//
//	POST   /v1/predict                    {"windows": [[[...]]]} → {"predictions": [...]}
//	POST   /v1/adapt                      {"windows": [[[...]]]} → {"stats": {...}}
//	POST   /v1/stream/adapt               enqueue windows for background adaptation → 202 (429 when full)
//	GET    /v1/stream/stats               streaming queue depth, folds, drift trajectory, target set
//	POST   /v1/stream/rollback            restore the pre-drift checkpoint (409 no_checkpoint without one)
//	GET    /v1/model                      canonical bundle bytes (byte-identical to the file)
//	GET    /v1/models                     registry listing
//	POST   /v1/models/{name}              upload a bundle (create or atomic hot swap; LRU-evicts past -max-models)
//	GET    /v1/models/{name}              canonical named bundle bytes
//	DELETE /v1/models/{name}              remove a named model (the default is pinned)
//	POST   /v1/models/{name}/predict      per-model predict (also .../adapt, .../stream/adapt, .../stream/stats, .../stream/rollback)
//	GET    /healthz                       liveness + model summary
//	GET    /metrics                       per-endpoint, per-stage, and per-model counters
//
// On SIGINT/SIGTERM the server stops listening, waits for in-flight
// requests, then drains the streaming queue into the model before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/serve"
	"go-arxiv/smore/internal/stream"
)

// pprofListenAddr normalizes the -pprof-addr flag: a bare port or
// ":port" binds localhost, so profiling is never exposed on all
// interfaces unless an explicit host is given.
func pprofListenAddr(addr string) string {
	if !strings.Contains(addr, ":") {
		return "127.0.0.1:" + addr
	}
	if strings.HasPrefix(addr, ":") {
		return "127.0.0.1" + addr
	}
	return addr
}

// startPprof serves net/http/pprof on its own mux and listener, separate
// from the public API surface, so the debug endpoints never ride along on
// the serving address. The listen happens synchronously so a bad or in-use
// -pprof-addr fails the process at startup instead of logging success and
// dying silently in a goroutine.
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Handler: mux,
		// Slow-client bounds, mirroring the main listener. Write stays
		// generous because /debug/pprof/profile and /trace stream for
		// their whole sampling window.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("smore-serve: pprof listener: %v", err)
	}
	log.Printf("smore-serve: pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("smore-serve: pprof listener: %v", err)
		}
	}()
}

func main() {
	var (
		load         = flag.String("load", "", "model bundle to serve (required; written by smore -save)")
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker-pool size for encode/predict batches (0 = all cores)")
		maxBatch     = flag.Int("max-batch", 1024, "maximum windows per request")
		maxBody      = flag.Int64("max-body", 32<<20, "maximum request body bytes")
		streamQueue  = flag.Int("stream-queue", 4096, "streaming adaptation queue capacity in windows (full queue → 429)")
		streamBatch  = flag.Int("stream-batch", 256, "maximum windows folded per background adaptation batch")
		maxModels    = flag.Int("max-models", 8, "maximum named models held by the registry (uploads past the cap LRU-evict)")
		readTimeout  = flag.Duration("read-timeout", time.Minute, "maximum duration for reading an entire request")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute, "maximum duration for writing a response")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight requests, then again for the stream queue")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (opt-in; a bare port like 6060 binds localhost); empty disables")
		strategy     = flag.String("strategy", "", "override the default model's adaptation strategy (confidence+schedule+update; empty keeps the bundle's)")
		driftPolicy  = flag.String("drift-policy", "", "spawn fresh target domains on streamed drift: none | spawn[:threshold] | spawn+retire[:threshold] (empty = none, EMA still tracked)")
		maxTargets   = flag.Int("max-targets", 0, "live-target cap per model under a retiring drift policy (0 = default)")
	)
	flag.Parse()
	if *load == "" {
		fmt.Fprintln(os.Stderr, "smore-serve: -load is required")
		flag.Usage()
		os.Exit(2)
	}

	b, err := pipeline.LoadBundleFile(*load)
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	if *strategy != "" {
		strat, err := model.ParseStrategySpec(*strategy)
		if err != nil {
			log.Fatalf("smore-serve: %v", err)
		}
		b.Model.SetStrategy(strat)
	}
	policy, err := stream.ParseDriftPolicy(*driftPolicy)
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	srv, err := serve.New(b, serve.Options{
		Workers: *workers, MaxBatch: *maxBatch, MaxBody: *maxBody,
		StreamQueue: *streamQueue, StreamBatch: *streamBatch,
		DriftPolicy: policy, MaxTargets: *maxTargets,
		MaxModels: *maxModels, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("smore-serve: %v", err)
	}
	mcfg := b.Model.Config()
	log.Printf("smore-serve: serving %s on %s (dim=%d classes=%d sensors=%d adapted=%v strategy=%s drift-policy=%s stream-queue=%d stream-batch=%d max-models=%d)",
		*load, *addr, mcfg.Dim, mcfg.Classes, b.Encoder.Sensors, b.Model.Adapted(), b.Model.Strategy(), policy.Name(), *streamQueue, *streamBatch, *maxModels)
	if *pprofAddr != "" {
		startPprof(pprofListenAddr(*pprofAddr))
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// The listener failed outright (bad address, port in use).
		log.Fatalf("smore-serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting on the drain
	log.Print("smore-serve: shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("smore-serve: http shutdown: %v", err)
	}
	cancel()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("smore-serve: %v", err)
	}
	st := srv.StreamStats()
	if !st.Drained() {
		log.Printf("smore-serve: draining stream queue (%d queued, %d in flight)", st.QueueDepth, st.InFlight)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := srv.Close(drainCtx)
	cancel()
	st = srv.StreamStats()
	log.Printf("smore-serve: shut down (stream: %d windows folded in %d batches, %d dropped)",
		st.WindowsFolded, st.BatchesFolded, st.Dropped)
	if drainErr != nil {
		// 202-accepted windows were discarded; make that visible to
		// supervisors instead of reporting a clean shutdown.
		log.Fatalf("smore-serve: stream drain: %v (%d windows lost)", drainErr, st.QueueDepth+st.InFlight)
	}
}
