package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: go-arxiv/smore/internal/encode
cpu: AMD EPYC
BenchmarkEncode-8   	    5476	    215867 ns/op	   74176 B/op	      75 allocs/op
PASS
ok  	go-arxiv/smore/internal/encode	1.186s
pkg: go-arxiv/smore/internal/hdc
BenchmarkBind-8     	13972986	        92.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkBind-8     	14000000	        90.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkPermute-8  	 9136392	       127.4 ns/op
PASS
ok  	go-arxiv/smore/internal/hdc	2.347s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []Benchmark{
		{Name: "BenchmarkEncode", Iterations: 5476, NsPerOp: 215867, BytesPerOp: 74176, AllocsPerOp: 75, Package: "go-arxiv/smore/internal/encode"},
		{Name: "BenchmarkBind", Iterations: 14000000, NsPerOp: 90.1, Package: "go-arxiv/smore/internal/hdc"},
		{Name: "BenchmarkPermute", Iterations: 9136392, NsPerOp: 127.4, Package: "go-arxiv/smore/internal/hdc"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("benchmark %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseBenchSeedSnapshot(t *testing.T) {
	// The committed BENCH_1.json must stay parseable as a baseline.
	buf, err := os.ReadFile(filepath.Join("..", "..", "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 || rep.Benchmarks[0].NsPerOp <= 0 {
		t.Fatalf("BENCH_1.json parsed into %+v", rep)
	}
}

func TestCompare(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, Package: "p"},
		{Name: "BenchmarkB", NsPerOp: 200, Package: "p"},
		{Name: "BenchmarkGone", NsPerOp: 50, Package: "p"},
	}
	cur := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1249, Package: "p"}, // +24.9%: within gate
		{Name: "BenchmarkB", NsPerOp: 251, Package: "p"},  // +25.5%: regression
		{Name: "BenchmarkNew", NsPerOp: 1, Package: "p"},  // new benchmarks are fine
	}
	violations := compare(base, cur, 0.25)
	if len(violations) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0], "BenchmarkB") {
		t.Errorf("first violation should flag BenchmarkB: %s", violations[0])
	}
	if !strings.Contains(violations[1], "BenchmarkGone") || !strings.Contains(violations[1], "missing") {
		t.Errorf("second violation should flag the missing benchmark: %s", violations[1])
	}
	if v := compare(base[:2], cur[:2], 0.30); len(v) != 0 {
		t.Errorf("looser gate still produced violations: %v", v)
	}
}

func TestCompareAllocsGate(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: 0, Package: "p"},
		{Name: "BenchmarkHeap", NsPerOp: 100, AllocsPerOp: 10, Package: "p"},
	}
	cur := []Benchmark{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: 1, Package: "p"},  // any alloc on a zero baseline fails
		{Name: "BenchmarkHeap", NsPerOp: 100, AllocsPerOp: 50, Package: "p"}, // non-zero baselines are not alloc-gated
	}
	violations := compare(base, cur, 0.25)
	if len(violations) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0], "BenchmarkZero") || !strings.Contains(violations[0], "allocs/op") {
		t.Errorf("violation should flag BenchmarkZero's allocation: %s", violations[0])
	}
	if v := compare(base, base, 0.25); len(v) != 0 {
		t.Errorf("identical allocs produced violations: %v", v)
	}
}

func TestWriteSummary(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 5, Package: "p"},
		{Name: "BenchmarkGone", NsPerOp: 50, Package: "p"},
	}
	cur := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 500, AllocsPerOp: 0, Package: "p"},
		{Name: "BenchmarkNew", NsPerOp: 10, AllocsPerOp: 2, Package: "p"},
	}
	var buf bytes.Buffer
	writeSummary(&buf, base, cur, "BENCH_X.json")
	out := buf.String()
	for _, want := range []string{"BENCH_X.json", "-50.0%", "5 → 0", "missing", "| new |", "BenchmarkNew"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// -summary defaults to $GITHUB_STEP_SUMMARY; blank it so test runs in
	// CI do not append fake delta tables to the real job summary.
	t.Setenv("GITHUB_STEP_SUMMARY", "")
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")

	// First run: snapshot only, no baseline.
	var stdout, stderr bytes.Buffer
	code := run(strings.NewReader(sampleOutput), &stdout, &stderr, []string{"-out", outPath})
	if code != 0 {
		t.Fatalf("snapshot run exited %d: %s", code, stderr.String())
	}
	buf, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 3 || rep.Go == "" || rep.Command == "" {
		t.Fatalf("unexpected snapshot: %+v", rep)
	}

	// Second run against that baseline with identical numbers: passes.
	stderr.Reset()
	if code := run(strings.NewReader(sampleOutput), &stdout, &stderr, []string{"-baseline", outPath}); code != 0 {
		t.Fatalf("identical run failed the gate: %s", stderr.String())
	}

	// Third run with a large regression: fails.
	regressed := strings.ReplaceAll(sampleOutput, "215867 ns/op", "515867 ns/op")
	stderr.Reset()
	if code := run(strings.NewReader(regressed), &stdout, &stderr, []string{"-baseline", outPath}); code != 1 {
		t.Fatalf("regressed run exited %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "BenchmarkEncode") {
		t.Fatalf("regression report does not name the benchmark: %s", stderr.String())
	}

	// Empty input is an error, not an empty snapshot.
	if code := run(strings.NewReader("PASS\n"), &stdout, &stderr, nil); code != 1 {
		t.Fatalf("empty input exited %d, want 1", code)
	}

	// A -summary file accumulates the markdown delta table (append mode,
	// like $GITHUB_STEP_SUMMARY).
	sumPath := filepath.Join(dir, "summary.md")
	stderr.Reset()
	if code := run(strings.NewReader(sampleOutput), &stdout, &stderr,
		[]string{"-baseline", outPath, "-summary", sumPath}); code != 0 {
		t.Fatalf("summary run exited %d: %s", code, stderr.String())
	}
	sum, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), "BenchmarkEncode") || !strings.Contains(string(sum), "Δ ns/op") {
		t.Fatalf("summary file missing the delta table:\n%s", sum)
	}
}
