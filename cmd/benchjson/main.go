// Command benchjson converts `go test -bench` output into the repo's
// BENCH_N.json snapshot schema and, when given a committed baseline,
// enforces the benchmark-regression gate: any benchmark whose ns/op grows
// by more than -max-regress (default 25%) fails the run, and any benchmark
// the baseline pins at 0 allocs/op fails on any allocation at all. With
// -summary (defaulting to $GITHUB_STEP_SUMMARY) it also appends a markdown
// delta table, so the CI job summary shows every benchmark's movement. It
// is the tool behind `make bench-json` and the CI bench job.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -out BENCH_new.json -baseline BENCH_2.json
//
// Repeated runs of the same benchmark (e.g. -count=3) keep the fastest
// ns/op, which damps scheduler noise on shared CI runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result in the BENCH_N.json schema.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Package     string  `json:"package"`
}

// Report is the top-level BENCH_N.json schema.
type Report struct {
	Command    string      `json:"command"`
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches a benchmark result row, e.g.
//
//	BenchmarkEncode-8   78   14168573 ns/op   102656 B/op   71 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the recorded name and the
// memory columns are optional (absent without -benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench reads `go test -bench` output, attributing each benchmark to
// the most recent `pkg:` header line. Repeats keep the fastest ns/op.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	index := map[string]int{} // package + name -> position in out
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", line, err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns, Package: pkg}
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		key := pkg + "." + b.Name
		if i, ok := index[key]; ok {
			if b.NsPerOp < out[i].NsPerOp {
				out[i] = b
			}
			continue
		}
		index[key] = len(out)
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// compare checks current against baseline and returns one violation string
// per gate failure: a benchmark regressing by more than maxRegress, a
// zero-alloc baseline benchmark that now allocates (any increase fails —
// the zero-allocation hot paths are pinned exactly), or a baseline
// benchmark missing from the current run (so a speedup cannot be
// "protected" by silently deleting its benchmark).
func compare(baseline, current []Benchmark, maxRegress float64) []string {
	byKey := map[string]Benchmark{}
	for _, b := range current {
		byKey[b.Package+"."+b.Name] = b
	}
	var violations []string
	for _, base := range baseline {
		cur, ok := byKey[base.Package+"."+base.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s (%s): present in baseline but missing from this run", base.Name, base.Package))
			continue
		}
		limit := base.NsPerOp * (1 + maxRegress)
		if cur.NsPerOp > limit {
			violations = append(violations,
				fmt.Sprintf("%s (%s): %.0f ns/op exceeds baseline %.0f ns/op by %+.1f%% (limit %+.0f%%)",
					base.Name, base.Package, cur.NsPerOp, base.NsPerOp,
					100*(cur.NsPerOp/base.NsPerOp-1), 100*maxRegress))
		}
		if base.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			violations = append(violations,
				fmt.Sprintf("%s (%s): %d allocs/op regresses the zero-allocation baseline",
					base.Name, base.Package, cur.AllocsPerOp))
		}
	}
	return violations
}

// writeSummary renders a GitHub-flavored markdown delta table of the
// current run against the baseline — ns/op with percentage change and
// allocs/op movement — for the CI job summary. Benchmarks new in this run
// are listed after the baseline rows.
func writeSummary(w io.Writer, baseline, current []Benchmark, baselineName string) {
	byKey := map[string]Benchmark{}
	for _, b := range current {
		byKey[b.Package+"."+b.Name] = b
	}
	fmt.Fprintf(w, "### Benchmark deltas vs %s\n\n", baselineName)
	fmt.Fprintln(w, "| Benchmark | Package | baseline ns/op | current ns/op | Δ ns/op | allocs/op |")
	fmt.Fprintln(w, "| --- | --- | ---: | ---: | ---: | ---: |")
	seen := map[string]bool{}
	for _, base := range baseline {
		key := base.Package + "." + base.Name
		seen[key] = true
		cur, ok := byKey[key]
		if !ok {
			fmt.Fprintf(w, "| %s | %s | %.1f | — | missing | — |\n", base.Name, base.Package, base.NsPerOp)
			continue
		}
		fmt.Fprintf(w, "| %s | %s | %.1f | %.1f | %+.1f%% | %d → %d |\n",
			base.Name, base.Package, base.NsPerOp, cur.NsPerOp,
			100*(cur.NsPerOp/base.NsPerOp-1), base.AllocsPerOp, cur.AllocsPerOp)
	}
	for _, cur := range current {
		if seen[cur.Package+"."+cur.Name] {
			continue
		}
		fmt.Fprintf(w, "| %s | %s | — | %.1f | new | %d |\n", cur.Name, cur.Package, cur.NsPerOp, cur.AllocsPerOp)
	}
	fmt.Fprintln(w)
}

func run(in io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "", "write the JSON snapshot to this file (default stdout)")
		baseline   = fs.String("baseline", "", "BENCH_N.json to gate against; omit to skip the gate")
		maxRegress = fs.Float64("max-regress", 0.25, "maximum tolerated ns/op regression as a fraction")
		command    = fs.String("command", "go test -bench . -benchmem -run ^$ ./...", "command string recorded in the snapshot")
		summary    = fs.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"),
			"append a markdown delta table to this file (defaults to $GITHUB_STEP_SUMMARY, so CI job summaries fill in automatically)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	benches, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 1
	}
	rep := Report{
		Command:    *command,
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: benches,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	buf = append(buf, '\n')
	if *out == "" || *out == "-" {
		if _, err := stdout.Write(buf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *baseline == "" {
		return 0
	}
	baseBuf, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson: read baseline:", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(baseBuf, &base); err != nil {
		fmt.Fprintln(stderr, "benchjson: parse baseline:", err)
		return 1
	}
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson: open summary:", err)
			return 1
		}
		writeSummary(f, base.Benchmarks, benches, *baseline)
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "benchjson: write summary:", err)
			return 1
		}
	}
	violations := compare(base.Benchmarks, benches, *maxRegress)
	if len(violations) == 0 {
		fmt.Fprintf(stderr, "benchjson: %d benchmarks within %+.0f%% of %s\n",
			len(base.Benchmarks), 100**maxRegress, *baseline)
		return 0
	}
	fmt.Fprintf(stderr, "benchjson: %d benchmark regression(s) against %s:\n", len(violations), *baseline)
	for _, v := range violations {
		fmt.Fprintln(stderr, "  "+v)
	}
	return 1
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:]))
}
