// Command smorevet is the repo's project-specific vet tool: four analyzers
// that mechanically enforce the serving invariants the reviews keep
// re-litigating — lock discipline around the model/registry/stream
// mutexes, the //smore:hotpath zero-allocation contract, the serve error
// envelope, and atomic.Pointer snapshot immutability.
//
// Run it through the go command, which feeds it one compilation unit at a
// time with full type information:
//
//	make vet-smore
//	# equivalently
//	go build -o bin/smorevet ./cmd/smorevet
//	go vet -vettool=$PWD/bin/smorevet ./...
//
// Pass -<analyzer> flags to narrow the run (e.g. `go vet
// -vettool=$PWD/bin/smorevet -hotpath ./internal/model`), and suppress an
// individual finding with a justified
// `//smorevet:allow <analyzer> -- <reason>` comment on or above the line.
package main

import (
	"go-arxiv/smore/internal/lint/atomicsnap"
	"go-arxiv/smore/internal/lint/errenvelope"
	"go-arxiv/smore/internal/lint/hotpath"
	"go-arxiv/smore/internal/lint/lockdiscipline"
	"go-arxiv/smore/internal/lint/unit"
)

func main() {
	unit.Main(
		lockdiscipline.Analyzer,
		hotpath.Analyzer,
		errenvelope.Analyzer,
		atomicsnap.Analyzer,
	)
}
