// Command smore runs the full SMORE pipeline end to end on a seeded
// synthetic multi-sensor dataset: encode the source domains, train the
// associative memory, evaluate the no-adapt baseline on a shifted target
// domain, run similarity-based adaptation on the unlabeled target windows,
// and report the accuracy delta.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
)

func main() {
	var (
		dim        = flag.Int("dim", 4096, "hypervector dimension (multiple of 64)")
		levels     = flag.Int("levels", 32, "quantization levels")
		ngram      = flag.Int("ngram", 3, "temporal n-gram length")
		sensors    = flag.Int("sensors", 4, "sensor channels")
		classes    = flag.Int("classes", 5, "classes")
		window     = flag.Int("window", 64, "window length in timesteps")
		perClass   = flag.Int("per-class", 40, "samples per class per domain")
		sources    = flag.Int("sources", 2, "source domains")
		epochs     = flag.Int("retrain", 3, "retrain epochs")
		adaptEp    = flag.Int("adapt-epochs", 10, "adaptation epochs")
		confidence = flag.Float64("confidence", 0.005, "pseudo-label similarity margin")
		rate       = flag.Float64("rate", 2.0, "adaptation learning rate")
		seed       = flag.Uint64("seed", 42, "master RNG seed")
		workers    = flag.Int("workers", 0, "worker-pool size for batch stages (0 = all cores)")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON")
		save       = flag.String("save", "", "write the trained+adapted model bundle to this file")
		load       = flag.String("load", "", "load a model bundle instead of training (its encoder/model config overrides the flags; data flags must stay compatible)")
	)
	flag.Parse()

	cfg := pipeline.Config{
		Encoder: encode.Config{
			Dim: *dim, Sensors: *sensors, Levels: *levels, NGram: *ngram,
			Min: -3, Max: 3, Seed: *seed,
		},
		Model: model.Config{
			Dim: *dim, Classes: *classes,
			RetrainEpochs: *epochs, AdaptEpochs: *adaptEp,
			Confidence: *confidence, AdaptRate: *rate,
		},
		Data: data.Config{
			Sensors: *sensors, Classes: *classes, WindowLen: *window,
			PerClass: *perClass, Seed: *seed,
			Domains: pipeline.DefaultDomains(*sources),
		},
		TrainFrac: 0.75,
		Workers:   *workers,
	}

	start := time.Now()
	var art *pipeline.Artifacts
	var err error
	if *load != "" {
		b, lerr := pipeline.LoadBundleFile(*load)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "smore:", lerr)
			os.Exit(1)
		}
		cfg.Encoder = b.Encoder
		cfg.Model = b.Model.Config()
		art, err = pipeline.WithModel(cfg, b.Model)
	} else {
		art, err = pipeline.Train(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smore:", err)
		os.Exit(1)
	}
	res, err := art.Evaluate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "smore:", err)
		os.Exit(1)
	}
	res.Elapsed = time.Since(start).Round(time.Millisecond).String()
	if *save != "" {
		if err := art.Bundle().SaveFile(*save); err != nil {
			fmt.Fprintln(os.Stderr, "smore:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "smore: saved model bundle to %s\n", *save)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "smore:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("SMORE demo — dim=%d levels=%d ngram=%d sensors=%d classes=%d domains=%d+1\n",
		cfg.Encoder.Dim, cfg.Encoder.Levels, cfg.Encoder.NGram, cfg.Encoder.Sensors,
		cfg.Model.Classes, len(cfg.Data.Domains)-1)
	fmt.Printf("  source-domain test accuracy:   %.3f\n", res.SourceAccuracy)
	fmt.Printf("  target baseline (no adapt):    %.3f\n", res.TargetBaseline)
	fmt.Printf("  target after SMORE adaptation: %.3f\n", res.TargetAdapted)
	fmt.Printf("  accuracy delta:                %+.3f\n", res.TargetAdapted-res.TargetBaseline)
	fmt.Printf("  pseudo-labels applied: %d (skipped %d)  elapsed: %s\n",
		res.Adapt.PseudoLabels, res.Adapt.Skipped, res.Elapsed)
}
