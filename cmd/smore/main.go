// Command smore runs the full SMORE pipeline end to end on a seeded
// synthetic multi-sensor dataset: encode the source domains, train the
// associative memory, evaluate the no-adapt baseline on a shifted target
// domain, run similarity-based adaptation on the unlabeled target windows,
// and report the accuracy delta.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
)

// fatal reports an error and exits non-zero, first flushing any in-flight
// CPU profile so a failed run still leaves a readable profile file.
// (StopCPUProfile is a no-op when profiling never started.)
func fatal(v ...any) {
	pprof.StopCPUProfile()
	fmt.Fprintln(os.Stderr, append([]any{"smore:"}, v...)...)
	os.Exit(1)
}

// writeHeapProfile snapshots the heap to path after a GC, so the profile
// reflects live objects rather than garbage awaiting collection.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "smore: wrote heap profile to %s\n", path)
}

func main() {
	var (
		dim        = flag.Int("dim", 4096, "hypervector dimension (multiple of 64)")
		levels     = flag.Int("levels", 32, "quantization levels")
		ngram      = flag.Int("ngram", 3, "temporal n-gram length")
		sensors    = flag.Int("sensors", 4, "sensor channels")
		classes    = flag.Int("classes", 5, "classes")
		window     = flag.Int("window", 64, "window length in timesteps")
		perClass   = flag.Int("per-class", 40, "samples per class per domain")
		sources    = flag.Int("sources", 2, "source domains")
		epochs     = flag.Int("retrain", 3, "retrain epochs")
		adaptEp    = flag.Int("adapt-epochs", 10, "adaptation epochs")
		confidence = flag.Float64("confidence", 0.005, "pseudo-label similarity margin")
		rate       = flag.Float64("rate", 2.0, "adaptation learning rate")
		seed       = flag.Uint64("seed", 42, "master RNG seed")
		workers    = flag.Int("workers", 0, "worker-pool size for batch stages (0 = all cores)")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON")
		save       = flag.String("save", "", "write the trained+adapted model bundle to this file")
		load       = flag.String("load", "", "load a model bundle instead of training (its encoder/model config overrides the flags; data flags must stay compatible)")
		noAdapt    = flag.Bool("no-adapt", false, "skip adaptation: evaluate and save the source-only model (the starting point for streaming adaptation)")
		streamN    = flag.Int("stream", 0, "replay the target split as an arriving stream with this micro-batch size instead of one-shot adaptation")
		dumpTarget = flag.String("dump-target", "", "write the raw target windows and labels to PREFIX.windows.json / PREFIX.labels.json")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file before a clean exit")
	)
	flag.Parse()
	if *noAdapt && *streamN > 0 {
		fmt.Fprintln(os.Stderr, "smore: -no-adapt and -stream are mutually exclusive")
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	cfg := pipeline.Config{
		Encoder: encode.Config{
			Dim: *dim, Sensors: *sensors, Levels: *levels, NGram: *ngram,
			Min: -3, Max: 3, Seed: *seed,
		},
		Model: model.Config{
			Dim: *dim, Classes: *classes,
			RetrainEpochs: *epochs, AdaptEpochs: *adaptEp,
			Confidence: *confidence, AdaptRate: *rate,
		},
		Data: data.Config{
			Sensors: *sensors, Classes: *classes, WindowLen: *window,
			PerClass: *perClass, Seed: *seed,
			Domains: pipeline.DefaultDomains(*sources),
		},
		TrainFrac: 0.75,
		Workers:   *workers,
	}

	start := time.Now()
	var art *pipeline.Artifacts
	var err error
	if *load != "" {
		b, lerr := pipeline.LoadBundleFile(*load)
		if lerr != nil {
			fatal(lerr)
		}
		cfg.Encoder = b.Encoder
		cfg.Model = b.Model.Config()
		art, err = pipeline.WithModel(cfg, b.Model)
	} else {
		art, err = pipeline.Train(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if *dumpTarget != "" {
		if err := writeTargetDump(art, *dumpTarget); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smore: dumped target split to %s.windows.json / %s.labels.json\n", *dumpTarget, *dumpTarget)
	}

	var res *pipeline.Result
	var streamRes *pipeline.StreamResult
	switch {
	case *noAdapt:
		res, err = art.EvaluateBaseline()
	case *streamN > 0:
		streamRes, err = art.StreamEvaluate(*streamN)
	default:
		res, err = art.Evaluate()
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Round(time.Millisecond).String()
	if *save != "" {
		if err := art.Bundle().SaveFile(*save); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smore: saved model bundle to %s\n", *save)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var out any = streamRes
		if res != nil {
			res.Elapsed = elapsed
			out = res
		} else {
			streamRes.Elapsed = elapsed
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("SMORE demo — dim=%d levels=%d ngram=%d sensors=%d classes=%d domains=%d+1\n",
		cfg.Encoder.Dim, cfg.Encoder.Levels, cfg.Encoder.NGram, cfg.Encoder.Sensors,
		cfg.Model.Classes, len(cfg.Data.Domains)-1)
	if streamRes != nil {
		fmt.Printf("  target baseline (no adapt):      %.3f\n", streamRes.TargetBaseline)
		fmt.Printf("  streamed adaptation trajectory (%d batches of ≤%d):\n", streamRes.Batches, streamRes.BatchSize)
		for i, acc := range streamRes.Trajectory {
			fmt.Printf("    after batch %2d: %.3f\n", i+1, acc)
		}
		fmt.Printf("  target after streamed adaptation: %.3f (%+.3f)\n",
			streamRes.TargetAdapted, streamRes.TargetAdapted-streamRes.TargetBaseline)
		fmt.Printf("  pseudo-labels applied: %d (skipped %d)  elapsed: %s\n",
			streamRes.Adapt.PseudoLabels, streamRes.Adapt.Skipped, elapsed)
		return
	}
	fmt.Printf("  source-domain test accuracy:   %.3f\n", res.SourceAccuracy)
	fmt.Printf("  target baseline (no adapt):    %.3f\n", res.TargetBaseline)
	if *noAdapt {
		fmt.Printf("  adaptation skipped (-no-adapt)  elapsed: %s\n", elapsed)
		return
	}
	fmt.Printf("  target after SMORE adaptation: %.3f\n", res.TargetAdapted)
	fmt.Printf("  accuracy delta:                %+.3f\n", res.TargetAdapted-res.TargetBaseline)
	fmt.Printf("  pseudo-labels applied: %d (skipped %d)  elapsed: %s\n",
		res.Adapt.PseudoLabels, res.Adapt.Skipped, elapsed)
}

// writeTargetDump writes the artifacts' raw target windows — as a
// ready-to-POST /v1/predict body — and the aligned labels to
// prefix.windows.json / prefix.labels.json, for driving the serving
// surface from scripts.
func writeTargetDump(art *pipeline.Artifacts, prefix string) error {
	windows, err := json.Marshal(map[string]any{"windows": art.TargetWindows})
	if err != nil {
		return err
	}
	if err := os.WriteFile(prefix+".windows.json", windows, 0o644); err != nil {
		return err
	}
	labels := make([]int, len(art.Target))
	for i, s := range art.Target {
		labels[i] = s.Class
	}
	raw, err := json.Marshal(labels)
	if err != nil {
		return err
	}
	return os.WriteFile(prefix+".labels.json", raw, 0o644)
}
