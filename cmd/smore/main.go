// Command smore runs the SMORE pipeline on a seeded synthetic multi-sensor
// dataset. It exposes subcommands with shared flag groups:
//
//	smore train   generate → encode → train → adapt → eval (optionally save)
//	smore eval    load a saved bundle and evaluate it on regenerated splits
//	smore stream  replay the target split as an arriving stream of micro-batches
//	smore ablate  sweep an adaptation-strategy grid × seeds, emit JSON + markdown
//
// Invoking smore without a subcommand keeps the historical flat-flag CLI
// working (train/eval/stream selected by -load/-no-adapt/-stream/-ablate)
// with a deprecation notice on stderr, so existing scripts don't break.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/stream"
)

// fatal reports an error and exits non-zero, first flushing any in-flight
// CPU profile so a failed run still leaves a readable profile file.
// (StopCPUProfile is a no-op when profiling never started.)
func fatal(v ...any) {
	pprof.StopCPUProfile()
	fmt.Fprintln(os.Stderr, append([]any{"smore:"}, v...)...)
	os.Exit(1)
}

// writeHeapProfile snapshots the heap to path after a GC, so the profile
// reflects live objects rather than garbage awaiting collection.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "smore: wrote heap profile to %s\n", path)
}

// cliFlags holds every flag value; each subcommand registers only the
// groups it needs, so `smore <cmd> -h` lists exactly that command's knobs.
type cliFlags struct {
	// data group: the synthetic dataset and encoder shape.
	dim, levels, ngram, sensors, classes, window, perClass, sources int
	seed                                                            uint64
	// model group: training and adaptation knobs.
	epochs, adaptEp  int
	confidence, rate float64
	strategy         string
	// run group: execution and output knobs.
	workers                int
	jsonOut                bool
	cpuprofile, memprofile string
	// bundle group: persistence.
	save, load string
	// mode-specific.
	noAdapt    bool
	streamN    int
	dumpTarget string
	dumpDrift  string
	// stream drift group.
	driftPolicy  string
	maxTargets   int
	requireDrift bool
	// ablate group.
	strategies string
	seeds      string
	outJSON    string
	outMD      string
	// legacy only.
	ablate bool
}

// dataFlags registers the shared dataset/encoder flag group.
func (c *cliFlags) dataFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.dim, "dim", 4096, "hypervector dimension (multiple of 64)")
	fs.IntVar(&c.levels, "levels", 32, "quantization levels")
	fs.IntVar(&c.ngram, "ngram", 3, "temporal n-gram length")
	fs.IntVar(&c.sensors, "sensors", 4, "sensor channels")
	fs.IntVar(&c.classes, "classes", 5, "classes")
	fs.IntVar(&c.window, "window", 64, "window length in timesteps")
	fs.IntVar(&c.perClass, "per-class", 40, "samples per class per domain")
	fs.IntVar(&c.sources, "sources", 2, "source domains")
	fs.Uint64Var(&c.seed, "seed", 42, "master RNG seed")
}

// modelFlags registers the shared training/adaptation flag group.
func (c *cliFlags) modelFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.epochs, "retrain", 3, "retrain epochs")
	fs.IntVar(&c.adaptEp, "adapt-epochs", 10, "adaptation epochs")
	fs.Float64Var(&c.confidence, "confidence", 0.005, "pseudo-label similarity margin")
	fs.Float64Var(&c.rate, "rate", 2.0, "adaptation learning rate")
	fs.StringVar(&c.strategy, "strategy", "", "adaptation strategy as confidence+schedule+update (empty = margin+constant+bundle)")
}

// runFlags registers the shared execution/output flag group.
func (c *cliFlags) runFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.workers, "workers", 0, "worker-pool size for batch stages (0 = all cores)")
	fs.BoolVar(&c.jsonOut, "json", false, "emit the result as JSON")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&c.memprofile, "memprofile", "", "write a heap profile to this file before a clean exit")
}

// pipelineConfig assembles the pipeline configuration from the flag values,
// resolving the strategy spec.
func (c *cliFlags) pipelineConfig() pipeline.Config {
	strat, err := model.ParseStrategySpec(c.strategy)
	if err != nil {
		fatal(err)
	}
	return pipeline.Config{
		Encoder: encode.Config{
			Dim: c.dim, Sensors: c.sensors, Levels: c.levels, NGram: c.ngram,
			Min: -3, Max: 3, Seed: c.seed,
		},
		Model: model.Config{
			Dim: c.dim, Classes: c.classes,
			RetrainEpochs: c.epochs, AdaptEpochs: c.adaptEp,
			Confidence: c.confidence, AdaptRate: c.rate,
		},
		Data: data.Config{
			Sensors: c.sensors, Classes: c.classes, WindowLen: c.window,
			PerClass: c.perClass, Seed: c.seed,
			Domains: pipeline.DefaultDomains(c.sources),
		},
		Strategy:  strat,
		TrainFrac: 0.75,
		Workers:   c.workers,
	}
}

// startProfiles begins CPU profiling and returns a deferred-cleanup func
// that stops it and writes the heap profile.
func (c *cliFlags) startProfiles() func() {
	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	return func() {
		pprof.StopCPUProfile()
		if c.memprofile != "" {
			writeHeapProfile(c.memprofile)
		}
	}
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "train", "eval", "stream", "ablate":
			runSubcommand(args[0], args[1:])
			return
		case "help", "-help", "--help", "-h":
			usage()
			return
		}
	}
	runLegacy(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: smore <command> [flags]

Commands:
  train    generate → encode → train → adapt → eval (optionally -save)
  eval     load a bundle (-load) and evaluate it on regenerated splits
  stream   replay the target split as an arriving stream of micro-batches
  ablate   sweep an adaptation-strategy grid × seeds, emit JSON + markdown

Run 'smore <command> -h' for that command's flags. Invoking smore with
top-level flags (no command) keeps the historical flat CLI working.
`)
}

// runSubcommand parses the named command's flag groups and executes it.
func runSubcommand(name string, args []string) {
	c := &cliFlags{}
	fs := flag.NewFlagSet("smore "+name, flag.ExitOnError)
	c.dataFlags(fs)
	c.runFlags(fs)
	switch name {
	case "train":
		c.modelFlags(fs)
		fs.StringVar(&c.save, "save", "", "write the trained+adapted model bundle to this file")
		fs.BoolVar(&c.noAdapt, "no-adapt", false, "skip adaptation: evaluate and save the source-only model")
		fs.StringVar(&c.dumpTarget, "dump-target", "", "write the raw target windows and labels to PREFIX.windows.json / PREFIX.labels.json")
		fs.StringVar(&c.dumpDrift, "dump-drift", "", "write a harsh second-shift drift split (detector-grade; same class signatures) to PREFIX.windows.json / PREFIX.labels.json")
	case "eval":
		c.modelFlags(fs)
		fs.StringVar(&c.load, "load", "", "model bundle to evaluate (required; its encoder/model config overrides the flags)")
		fs.BoolVar(&c.noAdapt, "no-adapt", false, "baseline only: do not adapt the loaded model")
	case "stream":
		c.modelFlags(fs)
		fs.IntVar(&c.streamN, "batch", 16, "micro-batch size for the streamed replay")
		fs.StringVar(&c.load, "load", "", "start from this bundle instead of training (typically a -no-adapt source model)")
		fs.StringVar(&c.save, "save", "", "write the post-stream model bundle to this file")
		fs.StringVar(&c.driftPolicy, "drift-policy", "",
			"run the two-shift drift replay under this policy: none | spawn[:threshold] | spawn+retire[:threshold] (empty = plain single-shift replay)")
		fs.IntVar(&c.maxTargets, "max-targets", 0, "live-target cap for a retiring drift policy (0 = default)")
		fs.BoolVar(&c.requireDrift, "require-drift", false,
			"exit non-zero unless the drift replay spawned a second target and beat the frozen single-target baseline")
	case "ablate":
		c.modelFlags(fs)
		fs.StringVar(&c.strategies, "strategies", strings.Join(pipeline.DefaultAblateStrategies(), ","),
			"comma-separated confidence+schedule+update specs to sweep")
		fs.StringVar(&c.seeds, "seeds", "42,43", "comma-separated master seeds to sweep per strategy")
		fs.StringVar(&c.outJSON, "out-json", "", "also write the full sweep result as JSON to this file")
		fs.StringVar(&c.outMD, "out-md", "", "also write the markdown comparison table to this file")
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	stop := c.startProfiles()
	defer stop()
	switch name {
	case "train":
		if c.noAdapt {
			runPipeline(c, modeBaseline)
		} else {
			runPipeline(c, modeAdapt)
		}
	case "eval":
		if c.load == "" {
			fatal("eval requires -load (use 'smore train' to produce a bundle)")
		}
		if c.noAdapt {
			runPipeline(c, modeBaseline)
		} else {
			runPipeline(c, modeAdapt)
		}
	case "stream":
		if c.streamN <= 0 {
			fatal("stream requires -batch >= 1")
		}
		runPipeline(c, modeStream)
	case "ablate":
		runAblate(c)
	}
}

// runLegacy is the historical flat-flag CLI: every knob on the top level,
// the mode selected by -no-adapt/-stream/-ablate. Kept working (with a
// stderr deprecation notice) so existing scripts and Makefile targets
// survive the subcommand restructure.
func runLegacy(args []string) {
	c := &cliFlags{}
	fs := flag.NewFlagSet("smore", flag.ExitOnError)
	c.dataFlags(fs)
	c.modelFlags(fs)
	c.runFlags(fs)
	fs.StringVar(&c.save, "save", "", "write the trained+adapted model bundle to this file")
	fs.StringVar(&c.load, "load", "", "load a model bundle instead of training (its encoder/model config overrides the flags; data flags must stay compatible)")
	fs.BoolVar(&c.noAdapt, "no-adapt", false, "skip adaptation: evaluate and save the source-only model (the starting point for streaming adaptation)")
	fs.IntVar(&c.streamN, "stream", 0, "replay the target split as an arriving stream with this micro-batch size instead of one-shot adaptation")
	fs.StringVar(&c.dumpTarget, "dump-target", "", "write the raw target windows and labels to PREFIX.windows.json / PREFIX.labels.json")
	fs.StringVar(&c.dumpDrift, "dump-drift", "", "write a harsh second-shift drift split (detector-grade; same class signatures) to PREFIX.windows.json / PREFIX.labels.json")
	fs.BoolVar(&c.ablate, "ablate", false, "run the adaptation-strategy ablation sweep (see 'smore ablate -h' for its dedicated flags)")
	fs.StringVar(&c.strategies, "strategies", strings.Join(pipeline.DefaultAblateStrategies(), ","),
		"comma-separated strategy specs for -ablate")
	fs.StringVar(&c.seeds, "seeds", "42,43", "comma-separated master seeds for -ablate")
	fs.StringVar(&c.outJSON, "out-json", "", "with -ablate, also write the sweep JSON to this file")
	fs.StringVar(&c.outMD, "out-md", "", "with -ablate, also write the markdown table to this file")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	fmt.Fprintln(os.Stderr, "smore: note: the flat CLI is deprecated; prefer 'smore train|eval|stream|ablate' (same flags, grouped per command)")
	if c.noAdapt && c.streamN > 0 {
		fmt.Fprintln(os.Stderr, "smore: -no-adapt and -stream are mutually exclusive")
		os.Exit(2)
	}
	stop := c.startProfiles()
	defer stop()
	switch {
	case c.ablate:
		runAblate(c)
	case c.noAdapt:
		runPipeline(c, modeBaseline)
	case c.streamN > 0:
		runPipeline(c, modeStream)
	default:
		runPipeline(c, modeAdapt)
	}
}

// Pipeline run modes shared by the subcommands and the legacy CLI.
const (
	modeAdapt    = "adapt"    // train/load → baseline eval → adapt → eval
	modeBaseline = "baseline" // train/load → baseline eval only
	modeStream   = "stream"   // train/load → streamed micro-batch adaptation
)

// runPipeline executes one train-or-load pipeline run in the given mode and
// renders the result (JSON or the human-readable summary).
func runPipeline(c *cliFlags, mode string) {
	cfg := c.pipelineConfig()
	start := time.Now()
	var art *pipeline.Artifacts
	var err error
	if c.load != "" {
		b, lerr := pipeline.LoadBundleFile(c.load)
		if lerr != nil {
			fatal(lerr)
		}
		cfg.Encoder = b.Encoder
		cfg.Model = b.Model.Config()
		if c.strategy != "" {
			b.Model.SetStrategy(cfg.Strategy)
		}
		art, err = pipeline.WithModel(cfg, b.Model)
	} else {
		art, err = pipeline.Train(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if c.dumpTarget != "" {
		labels := make([]int, len(art.Target))
		for i, s := range art.Target {
			labels[i] = s.Class
		}
		if err := writeSplitDump(art.TargetWindows, labels, c.dumpTarget); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smore: dumped target split to %s.windows.json / %s.labels.json\n", c.dumpTarget, c.dumpTarget)
	}
	if c.dumpDrift != "" {
		// The detector-grade shift trips the serving layer's default 0.1
		// drift threshold, so scripts can drive the spawn/rollback loop
		// without tuning (post-spawn accuracy on it is near chance; use the
		// stream subcommand's -drift-policy replay for quality numbers).
		bs, err := art.DriftSplit(pipeline.DriftConfig{Shift: pipeline.DetectorDriftShift()})
		if err != nil {
			fatal(err)
		}
		labels := make([]int, len(bs))
		for i, s := range bs {
			labels[i] = s.Class
		}
		if err := writeSplitDump(data.Windows(bs), labels, c.dumpDrift); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smore: dumped drift split to %s.windows.json / %s.labels.json\n", c.dumpDrift, c.dumpDrift)
	}

	var res *pipeline.Result
	var streamRes *pipeline.StreamResult
	var driftRes *pipeline.DriftResult
	switch mode {
	case modeBaseline:
		res, err = art.EvaluateBaseline()
	case modeStream:
		if c.driftPolicy != "" {
			var pol stream.DriftPolicy
			pol, err = stream.ParseDriftPolicy(c.driftPolicy)
			if err != nil {
				fatal(err)
			}
			driftRes, err = art.StreamEvaluateDrift(c.streamN, pipeline.DriftConfig{
				Policy: pol, MaxTargets: c.maxTargets,
			})
		} else {
			streamRes, err = art.StreamEvaluate(c.streamN)
		}
	default:
		res, err = art.Evaluate()
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Round(time.Millisecond).String()
	if c.save != "" {
		if err := art.Bundle().SaveFile(c.save); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smore: saved model bundle to %s\n", c.save)
	}

	// requireDrift turns the replay into an assertion the drift-smoke CI
	// target can run without JSON parsing: the process exit code is the
	// verdict.
	checkDrift := func() {
		if driftRes == nil || !c.requireDrift {
			return
		}
		if !driftRes.SpawnedSecondTarget {
			fatal("require-drift: no second target spawned over the second shift")
		}
		if !driftRes.BeatsBaseline {
			fatal(fmt.Sprintf("require-drift: final second-shift accuracy %.3f does not beat the frozen single-target baseline %.3f",
				driftRes.FinalB, driftRes.FrozenBaselineB))
		}
	}

	if c.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var out any
		switch {
		case res != nil:
			res.Elapsed = elapsed
			out = res
		case driftRes != nil:
			driftRes.Elapsed = elapsed
			out = driftRes
		default:
			streamRes.Elapsed = elapsed
			out = streamRes
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		checkDrift()
		return
	}
	fmt.Printf("SMORE demo — dim=%d levels=%d ngram=%d sensors=%d classes=%d domains=%d+1\n",
		cfg.Encoder.Dim, cfg.Encoder.Levels, cfg.Encoder.NGram, cfg.Encoder.Sensors,
		cfg.Model.Classes, len(cfg.Data.Domains)-1)
	if driftRes != nil {
		fmt.Printf("  two-shift drift replay (policy %s, batches of ≤%d):\n", driftRes.DriftPolicy, c.streamN)
		fmt.Printf("  phase A: baseline %.3f → adapted %.3f over %d batches\n",
			driftRes.PhaseA.TargetBaseline, driftRes.PhaseA.TargetAdapted, driftRes.PhaseA.Batches)
		fmt.Printf("  phase B (%s): frozen single-target baseline %.3f\n", driftRes.ShiftB, driftRes.FrozenBaselineB)
		for i, acc := range driftRes.TrajectoryB {
			fmt.Printf("    after batch %2d: B=%.3f A=%.3f\n", i+1, acc, driftRes.TrajectoryA[i])
		}
		fmt.Printf("  final: B=%.3f (%+.3f vs frozen) A=%.3f  spawned=%d retired=%d  elapsed: %s\n",
			driftRes.FinalB, driftRes.FinalB-driftRes.FrozenBaselineB, driftRes.FinalA,
			driftRes.TargetsSpawned, driftRes.TargetsRetired, elapsed)
		for _, ti := range driftRes.Targets {
			marker := ""
			if ti.Active {
				marker = " (active)"
			}
			fmt.Printf("    target %s: %d folds%s\n", ti.Name, ti.Folds, marker)
		}
		checkDrift()
		return
	}
	if streamRes != nil {
		fmt.Printf("  target baseline (no adapt):      %.3f\n", streamRes.TargetBaseline)
		fmt.Printf("  streamed adaptation trajectory (%d batches of ≤%d):\n", streamRes.Batches, streamRes.BatchSize)
		for i, acc := range streamRes.Trajectory {
			fmt.Printf("    after batch %2d: %.3f\n", i+1, acc)
		}
		fmt.Printf("  target after streamed adaptation: %.3f (%+.3f)\n",
			streamRes.TargetAdapted, streamRes.TargetAdapted-streamRes.TargetBaseline)
		fmt.Printf("  pseudo-labels applied: %d (skipped %d)  elapsed: %s\n",
			streamRes.Adapt.PseudoLabels, streamRes.Adapt.Skipped, elapsed)
		return
	}
	fmt.Printf("  source-domain test accuracy:   %.3f\n", res.SourceAccuracy)
	fmt.Printf("  target baseline (no adapt):    %.3f\n", res.TargetBaseline)
	if mode == modeBaseline {
		fmt.Printf("  adaptation skipped (-no-adapt)  elapsed: %s\n", elapsed)
		return
	}
	fmt.Printf("  target after SMORE adaptation: %.3f\n", res.TargetAdapted)
	fmt.Printf("  accuracy delta:                %+.3f\n", res.TargetAdapted-res.TargetBaseline)
	fmt.Printf("  pseudo-labels applied: %d (skipped %d)  elapsed: %s\n",
		res.Adapt.PseudoLabels, res.Adapt.Skipped, elapsed)
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runAblate executes the strategy × seed sweep and emits the comparison:
// the markdown table on stdout (or the full JSON with -json), plus optional
// -out-json / -out-md files for CI artifacts.
func runAblate(c *cliFlags) {
	var seeds []uint64
	for _, s := range splitList(c.seeds) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fatal("bad -seeds entry:", err)
		}
		seeds = append(seeds, v)
	}
	res, err := pipeline.Ablate(pipeline.AblateSpec{
		Base:       c.pipelineConfig(),
		Strategies: splitList(c.strategies),
		Seeds:      seeds,
	})
	if err != nil {
		fatal(err)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	md := res.Markdown()
	if c.outJSON != "" {
		if err := os.WriteFile(c.outJSON, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smore: wrote ablation JSON to %s\n", c.outJSON)
	}
	if c.outMD != "" {
		if err := os.WriteFile(c.outMD, []byte(md), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smore: wrote ablation markdown to %s\n", c.outMD)
	}
	if c.jsonOut {
		fmt.Println(string(raw))
		return
	}
	fmt.Print(md)
}

// writeSplitDump writes a split's raw windows — as a ready-to-POST
// /v1/predict body — and the aligned labels to prefix.windows.json /
// prefix.labels.json, for driving the serving surface from scripts.
func writeSplitDump(windows [][][]float64, labels []int, prefix string) error {
	raw, err := json.Marshal(map[string]any{"windows": windows})
	if err != nil {
		return err
	}
	if err := os.WriteFile(prefix+".windows.json", raw, 0o644); err != nil {
		return err
	}
	raw, err = json.Marshal(labels)
	if err != nil {
		return err
	}
	return os.WriteFile(prefix+".labels.json", raw, 0o644)
}
