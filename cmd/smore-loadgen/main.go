// Command smore-loadgen drives a running smore-serve with a deterministic
// mixed workload — predict, adapt, streaming adaptation, and drift-shifted
// streaming traffic — at a target QPS, then judges the run:
//
//   - hard failures: any 5xx in clean mode (with -expect-backpressure, 503s
//     carrying Retry-After are admissible backpressure, not failures)
//   - every 429/503 must carry a Retry-After header
//   - predict p99 latency must stay under -p99-max (0 skips the gate)
//   - the streaming queue must reconcile exactly: the windows this process
//     got 202s for equal the server-side enqueued delta, and after the final
//     drain enqueued == folded + lost (+ 0 queued + 0 in flight)
//
// It exits 0 only when every gate passes and writes a JSON report (request
// counts, status breakdown, latency quantiles and histogram, reconciliation)
// to -out for CI artifacts.
//
//	smore-loadgen -addr http://127.0.0.1:8080 -duration 10s -qps 200 -out report.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type route struct {
	name   string // report key and mix-spec name
	path   string
	weight int
	drift  bool // shift the window distribution to provoke drift detection
}

// mixSpec parses "predict=70,stream=20,drift=5,adapt=5" onto the route set.
func parseMix(spec string, routes []*route) error {
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for _, r := range routes {
			if r.name == name {
				r.weight, found = w, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown mix route %q", name)
		}
	}
	return nil
}

// streamStats mirrors the /v1/stream/stats counters the reconciliation uses.
type streamStats struct {
	QueueDepth    int   `json:"queue_depth"`
	InFlight      int   `json:"in_flight"`
	Enqueued      int64 `json:"enqueued_total"`
	WindowsFolded int64 `json:"windows_folded_total"`
	WindowsLost   int64 `json:"windows_lost_total"`
}

func (s streamStats) drained() bool { return s.QueueDepth == 0 && s.InFlight == 0 }

// sample is one finished request, recorded by a worker.
type sample struct {
	route   string
	status  int
	millis  float64
	dropped bool // 429/503 without a Retry-After header
	netErr  bool
}

type quantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// report is the JSON artifact the run writes for CI.
type report struct {
	Config         map[string]any       `json:"config"`
	Requests       int                  `json:"requests"`
	ByStatus       map[string]int       `json:"by_status"`
	ByRoute        map[string]quantiles `json:"by_route"`
	Histogram      map[string]int       `json:"latency_histogram_ms"`
	Hard5xx        int                  `json:"hard_5xx"`
	NetErrors      int                  `json:"net_errors"`
	NoRetryAfter   int                  `json:"backpressure_without_retry_after"`
	Reconciliation map[string]int64     `json:"reconciliation"`
	Failures       []string             `json:"failures"`
	Passed         bool                 `json:"passed"`
}

func getStats(client *http.Client, addr string) (streamStats, error) {
	resp, err := client.Get(addr + "/v1/stream/stats")
	if err != nil {
		return streamStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return streamStats{}, fmt.Errorf("stream stats: status %d", resp.StatusCode)
	}
	var st streamStats
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// sensorsFromRegistry asks /v1/models for the default model's sensor count so
// generated windows match the served encoder.
func sensorsFromRegistry(client *http.Client, addr string) (int, error) {
	resp, err := client.Get(addr + "/v1/models")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Models []struct {
			Name    string `json:"name"`
			Sensors int    `json:"sensors"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	for _, m := range body.Models {
		if m.Name == "default" {
			return m.Sensors, nil
		}
	}
	return 0, fmt.Errorf("no default model in registry listing")
}

// makeWindows builds a deterministic batch; drift traffic shifts the value
// distribution so the server's similarity EMA actually moves.
func makeWindows(rng *rand.Rand, n, winLen, sensors int, drift bool) [][][]float64 {
	shift := 0.0
	if drift {
		shift = 1.5
	}
	ws := make([][][]float64, n)
	for i := range ws {
		win := make([][]float64, winLen)
		for t := range win {
			row := make([]float64, sensors)
			for s := range row {
				row[s] = rng.NormFloat64()*0.7 + shift
			}
			win[t] = row
		}
		ws[i] = win
	}
	return ws
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "base URL of the smore-serve instance")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		qps       = flag.Float64("qps", 100, "target aggregate requests per second")
		workers   = flag.Int("workers", 8, "concurrent request workers")
		perReq    = flag.Int("windows", 4, "windows per request body")
		winLen    = flag.Int("window-len", 16, "timesteps per generated window")
		sensors   = flag.Int("sensors", 0, "sensors per timestep (0 = read from /v1/models)")
		seed      = flag.Uint64("seed", 1, "deterministic traffic seed")
		mix       = flag.String("mix", "predict=60,stream=25,drift=10,adapt=5", "route weights")
		p99Max    = flag.Duration("p99-max", 0, "fail if predict p99 exceeds this (0 skips the latency gate)")
		expectBP  = flag.Bool("expect-backpressure", false, "treat Retry-After-carrying 503s as admissible backpressure, not failures")
		drainWait = flag.Duration("drain-wait", 30*time.Second, "how long to wait for the stream queue to drain before reconciling")
		out       = flag.String("out", "", "write the JSON report here (empty: stdout only)")
	)
	flag.Parse()
	routes := []*route{
		{name: "predict", path: "/v1/predict"},
		{name: "stream", path: "/v1/stream/adapt"},
		{name: "drift", path: "/v1/stream/adapt", drift: true},
		{name: "adapt", path: "/v1/adapt"},
	}
	if err := parseMix(*mix, routes); err != nil {
		log.Fatalf("smore-loadgen: %v", err)
	}
	total := 0
	for _, r := range routes {
		total += r.weight
	}
	if total <= 0 {
		log.Fatal("smore-loadgen: mix has zero total weight")
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if *sensors == 0 {
		n, err := sensorsFromRegistry(client, *addr)
		if err != nil {
			log.Fatalf("smore-loadgen: discovering sensor count: %v", err)
		}
		*sensors = n
	}
	startStats, err := getStats(client, *addr)
	if err != nil {
		log.Fatalf("smore-loadgen: %v", err)
	}

	// The pacer drips one token per 1/qps; workers block on the channel so
	// aggregate throughput tracks -qps regardless of worker count.
	tokens := make(chan struct{}, *workers)
	stopPacer := make(chan struct{})
	go func() {
		interval := time.Duration(float64(time.Second) / *qps)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stopPacer:
				close(tokens)
				return
			case <-tick.C:
				select {
				case tokens <- struct{}{}:
				default: // workers saturated; shed the token rather than queue a backlog
				}
			}
		}
	}()

	var (
		mu       sync.Mutex
		samples  []sample
		accepted int64 // windows this process got 202s for
	)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(id)))
			for range tokens {
				pick := rng.IntN(total)
				var rt *route
				for _, r := range routes {
					if pick -= r.weight; pick < 0 {
						rt = r
						break
					}
				}
				body, _ := json.Marshal(map[string]any{
					"windows": makeWindows(rng, *perReq, *winLen, *sensors, rt.drift),
				})
				start := time.Now()
				resp, err := client.Post(*addr+rt.path, "application/json", bytes.NewReader(body))
				el := float64(time.Since(start)) / float64(time.Millisecond)
				if err != nil {
					mu.Lock()
					samples = append(samples, sample{route: rt.name, millis: el, netErr: true})
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				s := sample{route: rt.name, status: resp.StatusCode, millis: el}
				if (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) &&
					resp.Header.Get("Retry-After") == "" {
					s.dropped = true
				}
				mu.Lock()
				samples = append(samples, s)
				if resp.StatusCode == http.StatusAccepted {
					accepted += int64(*perReq)
				}
				mu.Unlock()
			}
		}(w)
	}
	log.Printf("smore-loadgen: %v of %s traffic at %.0f qps against %s (%d workers, %d sensors)",
		*duration, *mix, *qps, *addr, *workers, *sensors)
	time.Sleep(*duration)
	close(stopPacer)
	wg.Wait()

	// Let the background adapter finish everything it accepted, then check
	// the books balance.
	var endStats streamStats
	deadline := time.Now().Add(*drainWait)
	for {
		endStats, err = getStats(client, *addr)
		if err != nil {
			log.Fatalf("smore-loadgen: %v", err)
		}
		if endStats.drained() || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	rep := report{
		Config: map[string]any{
			"addr": *addr, "duration": duration.String(), "qps": *qps, "workers": *workers,
			"windows_per_request": *perReq, "mix": *mix, "seed": *seed,
			"expect_backpressure": *expectBP,
		},
		ByStatus:  map[string]int{},
		ByRoute:   map[string]quantiles{},
		Histogram: map[string]int{},
	}
	perRoute := map[string][]float64{}
	for _, s := range samples {
		rep.Requests++
		if s.netErr {
			rep.NetErrors++
			continue
		}
		rep.ByStatus[fmt.Sprint(s.status)]++
		if s.dropped {
			rep.NoRetryAfter++
		}
		if s.status >= 500 && !(*expectBP && s.status == http.StatusServiceUnavailable && !s.dropped) {
			rep.Hard5xx++
		}
		perRoute[s.route] = append(perRoute[s.route], s.millis)
		bucket := 1
		for float64(bucket) < s.millis {
			bucket *= 2
		}
		rep.Histogram[fmt.Sprintf("le_%d", bucket)]++
	}
	for name, ms := range perRoute {
		sort.Float64s(ms)
		rep.ByRoute[name] = quantiles{
			Count: len(ms), P50: quantile(ms, 0.50), P95: quantile(ms, 0.95),
			P99: quantile(ms, 0.99), Max: ms[len(ms)-1],
		}
	}
	rep.Reconciliation = map[string]int64{
		"windows_accepted_by_client": accepted,
		"enqueued_delta":             endStats.Enqueued - startStats.Enqueued,
		"folded_delta":               endStats.WindowsFolded - startStats.WindowsFolded,
		"lost_delta":                 endStats.WindowsLost - startStats.WindowsLost,
		"queue_depth_final":          int64(endStats.QueueDepth),
		"in_flight_final":            int64(endStats.InFlight),
	}

	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	if rep.Requests == 0 {
		fail("no requests completed")
	}
	if rep.Hard5xx > 0 {
		fail("%d hard 5xx responses", rep.Hard5xx)
	}
	if rep.NetErrors > 0 {
		fail("%d transport errors", rep.NetErrors)
	}
	if rep.NoRetryAfter > 0 {
		fail("%d backpressure responses without a Retry-After header", rep.NoRetryAfter)
	}
	if !endStats.drained() {
		fail("stream queue never drained (%d queued, %d in flight after %v)",
			endStats.QueueDepth, endStats.InFlight, *drainWait)
	}
	r := rep.Reconciliation
	if r["enqueued_delta"] != r["windows_accepted_by_client"] {
		fail("server enqueued %d windows, client got 202s for %d", r["enqueued_delta"], r["windows_accepted_by_client"])
	}
	if want := r["folded_delta"] + r["lost_delta"] + r["queue_depth_final"] + r["in_flight_final"]; r["enqueued_delta"] != want {
		fail("queue invariant violated: enqueued %d != folded %d + lost %d + depth %d + in-flight %d",
			r["enqueued_delta"], r["folded_delta"], r["lost_delta"], r["queue_depth_final"], r["in_flight_final"])
	}
	if *p99Max > 0 {
		if q, ok := rep.ByRoute["predict"]; ok && q.P99 > float64(*p99Max)/float64(time.Millisecond) {
			fail("predict p99 %.1fms exceeds gate %v", q.P99, *p99Max)
		}
	}
	rep.Passed = len(rep.Failures) == 0

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("smore-loadgen: %v", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("smore-loadgen: %v", err)
		}
	}
	fmt.Println(string(raw))
	if !rep.Passed {
		for _, f := range rep.Failures {
			log.Printf("smore-loadgen: FAIL: %s", f)
		}
		os.Exit(1)
	}
	log.Printf("smore-loadgen: PASS: %d requests, 0 hard failures, queue reconciled", rep.Requests)
}
