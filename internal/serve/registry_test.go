package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
)

// altArtifacts trains a second, deliberately different pipeline (3 sensors,
// dim 1024) so registry tests exercise heterogeneous bundles side by side.
func altArtifacts(t *testing.T, seed uint64) (*pipeline.Artifacts, [][][]float64) {
	t.Helper()
	cfg := pipeline.Config{
		Encoder: encode.Config{
			Dim: 1024, Sensors: 3, Levels: 8, NGram: 2, Min: -3, Max: 3, Seed: seed,
		},
		Model: model.Config{
			Dim: 1024, Classes: 3, RetrainEpochs: 1, AdaptEpochs: 3,
			Confidence: 0.005, AdaptRate: 2,
		},
		Data: data.Config{
			Sensors: 3, Classes: 3, WindowLen: 16, PerClass: 8, Seed: seed,
			Domains: pipeline.DefaultDomains(1),
		},
		TrainFrac: 0.75,
		Workers:   2,
	}
	art, err := pipeline.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.Generate(cfg.Data)
	if err != nil {
		t.Fatal(err)
	}
	return art, data.Windows(ds.Domains[len(ds.Domains)-1])
}

// bundleBytes canonically serializes an artifact's bundle.
func bundleBytes(t *testing.T, art *pipeline.Artifacts) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := art.Bundle().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func uploadBundle(t *testing.T, url, name string, raw []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/models/"+name, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestRegistryUploadRoundTripsAndServes is the multi-model acceptance test:
// a second named bundle with a different shape uploads (201), round-trips
// byte-identically through GET, serves per-model predictions matching a
// direct evaluation, and shows up in the listing and labeled metrics.
func TestRegistryUploadRoundTripsAndServes(t *testing.T) {
	_, ts, _, defWindows := testServer(t)
	alt, altWindows := altArtifacts(t, 11)
	raw := bundleBytes(t, alt)

	resp := uploadBundle(t, ts.URL, "alt", raw)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d, want 201", resp.StatusCode)
	}
	up := decodeBody[uploadModelResponse](t, resp)
	if up.Name != "alt" || up.Swapped || up.Evicted != "" {
		t.Fatalf("upload response %+v: want a fresh install", up)
	}

	status, exported := getBody(t, ts.URL+"/v1/models/alt")
	if status != http.StatusOK {
		t.Fatalf("named export status %d", status)
	}
	if !bytes.Equal(raw, exported) {
		t.Fatal("named export is not byte-identical to the uploaded bundle")
	}

	// Per-model predict against the 3-sensor model matches direct scoring.
	resp = postJSON(t, ts.URL+"/v1/models/alt/predict", predictRequest{Windows: altWindows[:6]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("named predict status %d", resp.StatusCode)
	}
	got := decodeBody[predictResponse](t, resp)
	hvs, err := alt.Encoder.EncodeBatch(altWindows[:6], 1)
	if err != nil {
		t.Fatal(err)
	}
	want := alt.Model.PredictBatch(hvs, 1)
	for i := range want {
		if got.Predictions[i] != want[i] {
			t.Fatalf("named prediction %d: served %d, direct %d", i, got.Predictions[i], want[i])
		}
	}

	// The default model still answers its own (2-sensor) traffic.
	resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: defWindows[:2]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default predict status %d after alt upload", resp.StatusCode)
	}
	// And the alt model rejects 2-sensor windows (separate encoders).
	resp = postJSON(t, ts.URL+"/v1/models/alt/predict", predictRequest{Windows: defWindows[:2]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-shape predict status %d, want 400", resp.StatusCode)
	}

	status, listing := getBody(t, ts.URL+"/v1/models")
	if status != http.StatusOK {
		t.Fatalf("listing status %d", status)
	}
	for _, wantFrag := range []string{`"name":"alt"`, `"name":"default"`, `"dim":1024`, `"dim":512`} {
		if !strings.Contains(string(listing), wantFrag) {
			t.Errorf("listing %s missing %s", listing, wantFrag)
		}
	}
	status, metricsText := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	for _, wantLine := range []string{
		"smore_models 2",
		"smore_model_uploads_total 1",
		`smore_model_dim{model="alt"} 1024`,
		`smore_model_dim{model="default"} 512`,
		`smore_stream_queue_depth{model="alt"} 0`,
	} {
		if !strings.Contains(string(metricsText), wantLine) {
			t.Errorf("metrics output missing %q", wantLine)
		}
	}
}

// TestRegistryHotSwap pins the atomic-swap contract: uploading to an
// existing name answers 200, subsequent requests serve the new bundle, and
// the old instance's state (an adapted fold) is gone.
func TestRegistryHotSwap(t *testing.T) {
	_, ts, _, _ := testServer(t)
	first, firstWindows := altArtifacts(t, 11)
	if _, err := first.Model.Adapt(mustEncode(t, first, firstWindows[:8])); err != nil {
		t.Fatal(err)
	}
	resp := uploadBundle(t, ts.URL, "swap-me", bundleBytes(t, first))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first upload status %d, want 201", resp.StatusCode)
	}

	second, _ := altArtifacts(t, 23) // same shape, different seed → different model
	secondRaw := bundleBytes(t, second)
	resp = uploadBundle(t, ts.URL, "swap-me", secondRaw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap upload status %d, want 200", resp.StatusCode)
	}
	up := decodeBody[uploadModelResponse](t, resp)
	if !up.Swapped {
		t.Fatalf("swap response %+v: want swapped=true", up)
	}
	status, exported := getBody(t, ts.URL+"/v1/models/swap-me")
	if status != http.StatusOK {
		t.Fatalf("post-swap export status %d", status)
	}
	if !bytes.Equal(secondRaw, exported) {
		t.Fatal("post-swap export does not match the swapped-in bundle")
	}
	if bytes.Equal(bundleBytes(t, first), exported) {
		t.Fatal("post-swap export still matches the replaced bundle")
	}
}

// TestRegistryDefaultHotSwap pins that uploading to "default" repoints
// every unnamed route at the new instance: /v1/predict runs the new
// encoder, /v1/model exports the new bytes, /healthz reports the new shape,
// and /v1/stream/adapt keeps accepting (a stale default pointer would keep
// serving the retired instance and answer 503 once its queue closed).
func TestRegistryDefaultHotSwap(t *testing.T) {
	srv, ts, _, defWindows := testServer(t)
	alt, altWindows := altArtifacts(t, 11)
	altRaw := bundleBytes(t, alt)

	resp := uploadBundle(t, ts.URL, DefaultModel, altRaw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default swap status %d, want 200", resp.StatusCode)
	}
	up := decodeBody[uploadModelResponse](t, resp)
	if !up.Swapped || up.Evicted != "" {
		t.Fatalf("default swap response %+v: want swapped=true and no eviction", up)
	}

	status, exported := getBody(t, ts.URL+"/v1/model")
	if status != http.StatusOK {
		t.Fatalf("post-swap default export status %d", status)
	}
	if !bytes.Equal(altRaw, exported) {
		t.Fatal("post-swap /v1/model does not match the swapped-in bundle")
	}

	// The unnamed predict route now runs the new 3-sensor encoder.
	resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: altWindows[:2]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap default predict status %d, want 200", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: defWindows[:2]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("old-shape predict after default swap status %d, want 400", resp.StatusCode)
	}

	status, health := getBody(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("post-swap healthz status %d", status)
	}
	if !strings.Contains(string(health), `"dim":1024`) {
		t.Fatalf("post-swap healthz %s: want the swapped-in dim 1024", health)
	}

	// The unnamed streaming surface is wired to the live instance, not the
	// retired one whose queue is closing in the background.
	resp = postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: altWindows[:2]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-swap stream adapt status %d, want 202", resp.StatusCode)
	}
	if st := srv.StreamStats(); st.Enqueued < 2 {
		t.Fatalf("StreamStats %+v: want the post-swap enqueue visible on the new default", st)
	}
}

// TestRegistryLRUEviction pins the cap behavior: the least-recently-used
// non-default model is displaced, the default model is never a victim, and
// the evicted name 404s afterwards.
func TestRegistryLRUEviction(t *testing.T) {
	_, ts, _, _ := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, MaxModels: 3})
	art, _ := altArtifacts(t, 11)
	raw := bundleBytes(t, art)

	for _, name := range []string{"a", "b"} { // registry now at cap: default, a, b
		resp := uploadBundle(t, ts.URL, name, raw)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %q status %d, want 201", name, resp.StatusCode)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	status, _ := getBody(t, ts.URL+"/v1/models/a")
	if status != http.StatusOK {
		t.Fatalf("touch of a: status %d", status)
	}
	resp := uploadBundle(t, ts.URL, "c", raw)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload c status %d, want 201", resp.StatusCode)
	}
	up := decodeBody[uploadModelResponse](t, resp)
	if up.Evicted != "b" {
		t.Fatalf("upload c evicted %q, want the LRU victim \"b\"", up.Evicted)
	}
	if status, _ := getBody(t, ts.URL+"/v1/models/b"); status != http.StatusNotFound {
		t.Fatalf("evicted model answers %d, want 404", status)
	}
	for _, name := range []string{"a", "c", DefaultModel} {
		if status, _ := getBody(t, ts.URL+"/v1/models/"+name); status != http.StatusOK {
			t.Fatalf("surviving model %q answers %d, want 200", name, status)
		}
	}
}

// TestRegistryDeleteAndValidation pins the control-plane edges: deleting a
// named model works and frees its slot, the default model is pinned (409),
// unknown names 404, and malformed names or bundles 400.
func TestRegistryDeleteAndValidation(t *testing.T) {
	_, ts, _, _ := testServer(t)
	art, _ := altArtifacts(t, 11)
	raw := bundleBytes(t, art)
	resp := uploadBundle(t, ts.URL, "doomed", raw)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	del := func(name string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := del("doomed"); status != http.StatusOK {
		t.Fatalf("delete status %d, want 200", status)
	}
	if status, _ := getBody(t, ts.URL+"/v1/models/doomed"); status != http.StatusNotFound {
		t.Fatalf("deleted model answers %d, want 404", status)
	}
	if status := del("doomed"); status != http.StatusNotFound {
		t.Fatalf("double delete status %d, want 404", status)
	}
	if status := del(DefaultModel); status != http.StatusConflict {
		t.Fatalf("default delete status %d, want 409", status)
	}

	resp = uploadBundle(t, ts.URL, "bad|name", raw)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid name upload status %d, want 400", resp.StatusCode)
	}
	resp = uploadBundle(t, ts.URL, "garbage", []byte("not a bundle"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage bundle upload status %d, want 400", resp.StatusCode)
	}
	resp = uploadBundle(t, ts.URL, "trailing", append(bytes.Clone(raw), 0x00))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing-bytes upload status %d, want 400", resp.StatusCode)
	}
}

func mustEncode(t *testing.T, art *pipeline.Artifacts, windows [][][]float64) []hdc.Vector {
	t.Helper()
	hvs, err := art.Encoder.EncodeBatch(windows, 1)
	if err != nil {
		t.Fatal(err)
	}
	return hvs
}

// TestRegistryConcurrentSwapPredict hammers hot swaps against per-model
// predictions; under -race it proves registry lookups and instance handoff
// are safe, and every response is either the old or new model's (never an
// error).
func TestRegistryConcurrentSwapPredict(t *testing.T) {
	_, ts, _, _ := testServer(t)
	a, windows := altArtifacts(t, 11)
	b, _ := altArtifacts(t, 23)
	rawA, rawB := bundleBytes(t, a), bundleBytes(t, b)
	resp := uploadBundle(t, ts.URL, "hot", rawA)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("seed upload status %d", resp.StatusCode)
	}
	done := make(chan error, 5)
	for w := range 4 {
		go func(w int) {
			for range 8 {
				resp := postJSON(t, ts.URL+"/v1/models/hot/predict", predictRequest{Windows: windows[:2]})
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("worker %d: predict during swap returned %d", w, resp.StatusCode)
					return
				}
			}
			done <- nil
		}(w)
	}
	go func() {
		for i := range 6 {
			raw := rawA
			if i%2 == 0 {
				raw = rawB
			}
			resp := uploadBundle(t, ts.URL, "hot", raw)
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("swap %d returned %d", i, resp.StatusCode)
				return
			}
		}
		done <- nil
	}()
	for range 5 {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
