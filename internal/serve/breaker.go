package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed admits traffic,
// open rejects it for a cooldown, half-open admits exactly one probe batch
// whose fold outcome decides between closing and re-opening.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker is a per-instance circuit breaker over streaming fold outcomes. A
// poisoned stream (encoder faults, a fold that always fails) would otherwise
// burn the queue: every accepted batch is paid for — encoded, locked, folded
// — only to be discarded and counted as lost. After threshold consecutive
// fold failures the circuit opens and stream/adapt answers 503 adapter_open
// (with a Retry-After hint) until the cooldown elapses; then one probe batch
// is admitted, and its fold outcome closes or re-opens the circuit.
//
// The outcome feed is asynchronous by nature: admission happens at enqueue
// time, the verdict at fold time. record therefore also accepts outcomes for
// batches admitted before the circuit opened; a failure while open simply
// refreshes the cooldown.
type breaker struct {
	threshold int           // consecutive fold failures that open the circuit; <= 0 disables
	cooldown  time.Duration // open duration before a half-open probe

	mu      sync.Mutex
	state   breakerState
	fails   int       // consecutive fold failures while closed
	until   time.Time // open: earliest half-open probe time
	probing bool      // half-open: the single probe is outstanding
	opens   int64     // cumulative closed/half-open → open transitions
}

// allow reports whether a new streaming batch may be admitted, and — when it
// may not — how long the caller should wait before retrying.
func (b *breaker) allow() (ok bool, retryAfter time.Duration) {
	if b == nil || b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := time.Until(b.until); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// record feeds one fold outcome back into the circuit.
func (b *breaker) record(folded bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if folded {
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		if b.state != breakerOpen {
			b.opens++
		}
		b.state = breakerOpen
		b.until = time.Now().Add(b.cooldown)
		b.fails = 0
		b.probing = false
	}
}

// snapshot returns the current state name and cumulative open count for
// stats and metrics surfaces.
func (b *breaker) snapshot() (state string, opens int64) {
	if b == nil || b.threshold <= 0 {
		return breakerClosed.String(), 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens
}
