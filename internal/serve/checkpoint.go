package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"go-arxiv/smore/internal/fault"
	"go-arxiv/smore/internal/pipeline"
)

// Durable checkpointing. Layout under Options.StateDir:
//
//	<state-dir>/<model>/MANIFEST.json           last-good generations, newest first
//	<state-dir>/<model>/gen-<seq>.smore         canonical bundle bytes (SMB1)
//	<state-dir>/<model>/gen-<seq>.rollback      drift-rollback checkpoint (SME*), optional
//
// Every file lands via temp-file + fsync + atomic rename (plus a directory
// fsync), so a crash at any instant leaves either the old or the new
// generation intact — never a half-written one under its final name. The
// manifest keeps keepGenerations entries; recovery walks them newest-first
// and serves the first generation whose bundle passes the full SMB1/SME1/2/3
// validation, so a torn or bit-flipped newest generation falls back to the
// previous good one. A manifest that is itself torn degrades to a directory
// scan.

const (
	manifestName = "MANIFEST.json"
	// keepGenerations is how many checkpoint generations survive pruning:
	// the latest plus one fallback.
	keepGenerations = 2
)

// manifest records a model's last-good checkpoint generations, newest first.
type manifest struct {
	Model       string          `json:"model"`
	Generations []manifestEntry `json:"generations"`
}

// manifestEntry names one generation's files and their SHA-256 digests. The
// bundle format has no internal checksum — a bit flip in hypervector payload
// is structurally valid — so the digest is what lets recovery reject silent
// corruption, not just truncation. Scan-path entries (manifest lost) carry no
// digest and get structural validation only.
type manifestEntry struct {
	Gen            int64  `json:"gen"`
	Bundle         string `json:"bundle"`
	BundleSHA256   string `json:"sha256,omitempty"`
	Rollback       string `json:"rollback,omitempty"`
	RollbackSHA256 string `json:"rollback_sha256,omitempty"`
}

func sha256hex(b []byte) string { return fmt.Sprintf("%x", sha256.Sum256(b)) }

// verifyFile reads path and checks it against the manifest digest; an empty
// digest (scan fallback) skips the check.
func verifyFile(path, wantSHA string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if wantSHA != "" && sha256hex(raw) != wantSHA {
		return nil, fmt.Errorf("%s: SHA-256 mismatch (corrupt checkpoint file)", path)
	}
	return raw, nil
}

func genFile(gen int64) string      { return fmt.Sprintf("gen-%08d.smore", gen) }
func rollbackFile(gen int64) string { return fmt.Sprintf("gen-%08d.rollback", gen) }

// recoveredModel is one model successfully recovered from the state dir: its
// validated bundle (with the rollback checkpoint already restored into the
// model, when one survived) and the generation it came from.
type recoveredModel struct {
	name   string
	bundle *pipeline.Bundle
	gen    int64
	mtime  time.Time
}

// stateStore persists and recovers instance checkpoints under one root dir.
type stateStore struct {
	dir       string
	interval  time.Duration
	foldEvery int
	logf      func(format string, args ...any)

	// kick carries fold-count trigger requests from fold closures to the
	// checkpointer goroutine; sends are non-blocking (a full channel means a
	// checkpoint is already pending).
	kick     chan *instance
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu   sync.Mutex
	gens map[string]int64 // highest generation ever used per model
}

func newStateStore(opt Options, logf func(string, ...any)) (*stateStore, error) {
	if err := os.MkdirAll(opt.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating state dir: %w", err)
	}
	return &stateStore{
		dir:       opt.StateDir,
		interval:  opt.CheckpointInterval,
		foldEvery: opt.CheckpointFolds,
		logf:      logf,
		kick:      make(chan *instance, 16),
		stop:      make(chan struct{}),
		gens:      map[string]int64{},
	}, nil
}

// kickInstance requests an asynchronous checkpoint of inst (fold-count
// trigger). Never blocks: with the channel full a checkpoint pass is already
// queued and will observe the folds.
func (st *stateStore) kickInstance(inst *instance) {
	select {
	case st.kick <- inst:
	default:
	}
}

// nextGen reserves the next generation number for a model. Numbers are
// monotonic across restarts (recovery seeds gens with the highest number
// found on disk, valid or torn) so a new save can never collide with — or
// sort below — a leftover file.
func (st *stateStore) nextGen(name string) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gens[name]++
	return st.gens[name]
}

// save durably persists one checkpoint generation: bundle bytes, the
// optional rollback checkpoint, then the manifest naming them — in that
// order, so the manifest never references files that might not exist. Old
// generations past keepGenerations are pruned only after the new manifest is
// durable.
func (st *stateStore) save(name string, bundle, rollback []byte) (int64, error) {
	dir := filepath.Join(st.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	gen := st.nextGen(name)
	entry := manifestEntry{Gen: gen, Bundle: genFile(gen), BundleSHA256: sha256hex(bundle)}
	if err := writeFileAtomic(filepath.Join(dir, entry.Bundle), bundle); err != nil {
		return 0, err
	}
	if rollback != nil {
		entry.Rollback = rollbackFile(gen)
		entry.RollbackSHA256 = sha256hex(rollback)
		if err := writeFileAtomic(filepath.Join(dir, entry.Rollback), rollback); err != nil {
			return 0, err
		}
	}
	man := st.readManifest(name)
	entries := append([]manifestEntry{entry}, man.Generations...)
	var prune []manifestEntry
	if len(entries) > keepGenerations {
		prune = entries[keepGenerations:]
		entries = entries[:keepGenerations]
	}
	data, err := json.MarshalIndent(manifest{Model: name, Generations: entries}, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), data); err != nil {
		return 0, err
	}
	for _, e := range prune {
		// Best-effort: a leftover pruned file is garbage, not corruption —
		// recovery only trusts the manifest (or, scanning, validates bytes).
		os.Remove(filepath.Join(dir, e.Bundle))
		if e.Rollback != "" {
			os.Remove(filepath.Join(dir, e.Rollback))
		}
	}
	return gen, nil
}

// forget removes a model's durable state (DELETE /v1/models/{name}).
func (st *stateStore) forget(name string) {
	st.mu.Lock()
	delete(st.gens, name)
	st.mu.Unlock()
	if err := os.RemoveAll(filepath.Join(st.dir, name)); err != nil {
		st.logf("serve: removing state of deleted model %q: %v", name, err)
	}
}

// readManifest parses a model's manifest; a missing or torn manifest yields
// an empty one (recovery then falls back to scanning the directory).
func (st *stateStore) readManifest(name string) manifest {
	var man manifest
	data, err := os.ReadFile(filepath.Join(st.dir, name, manifestName))
	if err != nil {
		return man
	}
	if err := json.Unmarshal(data, &man); err != nil {
		st.logf("serve: state: model %q manifest unreadable (%v); falling back to directory scan", name, err)
		return manifest{}
	}
	return man
}

// scanGenerations lists a model dir's gen-*.smore files as manifest entries,
// newest first — the recovery path when the manifest itself was lost.
func (st *stateStore) scanGenerations(name string) []manifestEntry {
	dir := filepath.Join(st.dir, name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []manifestEntry
	for _, ent := range ents {
		var gen int64
		if n, err := fmt.Sscanf(ent.Name(), "gen-%d.smore", &gen); n != 1 || err != nil {
			continue
		}
		e := manifestEntry{Gen: gen, Bundle: ent.Name()}
		if _, err := os.Stat(filepath.Join(dir, rollbackFile(gen))); err == nil {
			e.Rollback = rollbackFile(gen)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gen > out[j].Gen })
	return out
}

// recoverAll scans the state dir and recovers the last good generation of
// every model found there. Unrecoverable models (every generation torn) are
// logged and skipped — serving starts from the boot bundle instead of
// refusing to start. The result is sorted most-recently-checkpointed first
// so registry slots under MaxModels go to the freshest models.
func (st *stateStore) recoverAll() []recoveredModel {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		st.logf("serve: state: reading %s: %v", st.dir, err)
		return nil
	}
	var out []recoveredModel
	for _, ent := range ents {
		if !ent.IsDir() || !modelName.MatchString(ent.Name()) {
			continue
		}
		name := ent.Name()
		// Seed the generation counter from everything on disk — including
		// torn files — before any new save can hand out a colliding number.
		maxGen := int64(0)
		for _, e := range st.scanGenerations(name) {
			maxGen = max(maxGen, e.Gen)
		}
		if man := st.readManifest(name); len(man.Generations) > 0 {
			maxGen = max(maxGen, man.Generations[0].Gen)
		}
		st.mu.Lock()
		st.gens[name] = max(st.gens[name], maxGen)
		st.mu.Unlock()
		if rec, ok := st.recoverModel(name); ok {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].mtime.After(out[j].mtime) })
	return out
}

// recoverModel walks a model's generations newest-first and returns the
// first one whose bundle survives full validation. The rollback checkpoint
// rides along when it validates too; a torn rollback degrades to "no
// checkpoint" (rollback answers 409) rather than rejecting the bundle.
func (st *stateStore) recoverModel(name string) (recoveredModel, bool) {
	dir := filepath.Join(st.dir, name)
	candidates := st.readManifest(name).Generations
	if len(candidates) == 0 {
		candidates = st.scanGenerations(name)
	}
	for _, c := range candidates {
		path := filepath.Join(dir, c.Bundle)
		b, err := func() (*pipeline.Bundle, error) {
			if _, err := verifyFile(path, c.BundleSHA256); err != nil {
				return nil, err
			}
			return pipeline.LoadBundleFile(path)
		}()
		if err != nil {
			st.logf("serve: state: model %q generation %d rejected: %v", name, c.Gen, err)
			continue
		}
		if c.Rollback != "" {
			rb, err := verifyFile(filepath.Join(dir, c.Rollback), c.RollbackSHA256)
			if err == nil {
				err = b.Model.RestoreCheckpoint(rb)
			}
			if err != nil {
				st.logf("serve: state: model %q generation %d rollback checkpoint dropped: %v", name, c.Gen, err)
			}
		}
		info, err := os.Stat(path)
		mtime := time.Time{}
		if err == nil {
			mtime = info.ModTime()
		}
		return recoveredModel{name: name, bundle: b, gen: c.Gen, mtime: mtime}, true
	}
	if len(candidates) > 0 {
		st.logf("serve: state: model %q has no recoverable generation; starting clean", name)
	}
	return recoveredModel{}, false
}

// writeFileAtomic lands data under path crash-safely: temp file in the same
// directory, full write, fsync, atomic rename, directory fsync. The
// persist.* fault points hook each step so chaos tests can exercise every
// failure mode (including a torn write the kernel claimed succeeded).
func writeFileAtomic(path string, data []byte) error {
	if err := fault.Maybe("persist.write"); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := fault.Writer("persist.torn", f).Write(data); err != nil {
		return cleanup(err)
	}
	if err := fault.Maybe("persist.sync"); err != nil {
		return cleanup(fmt.Errorf("syncing %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fault.Maybe("persist.rename"); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("renaming %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Best-effort: some filesystems reject
	// directory fsync, and the data file is already synced.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// runCheckpointer is the background checkpoint loop: a periodic pass over
// dirty instances (CheckpointInterval) plus on-demand fold-count kicks. It
// exits on Close, which then takes the final full checkpoint itself.
func (s *Server) runCheckpointer() {
	defer s.store.wg.Done()
	var tick <-chan time.Time
	if s.store.interval > 0 {
		t := time.NewTicker(s.store.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.store.stop:
			return
		case <-tick:
			s.checkpointAll(false)
		case inst := <-s.store.kick:
			s.checkpointInstance(inst)
		}
	}
}

// checkpointAll checkpoints registered instances — all of them when force is
// set (shutdown), otherwise only those with folds since their last
// checkpoint. Returns the first failure.
func (s *Server) checkpointAll(force bool) error {
	s.reg.mu.Lock()
	insts := make([]*instance, 0, len(s.reg.models))
	for _, inst := range s.reg.models {
		insts = append(insts, inst)
	}
	s.reg.mu.Unlock()
	var first error
	for _, inst := range insts {
		if !force && inst.foldsSinceCkpt.Load() == 0 {
			continue
		}
		if _, err := s.checkpointInstance(inst); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// checkpointInstance persists one instance's current bundle (and rollback
// checkpoint) as a new durable generation. The marshal happens under the
// instance mutex — exactly like export — and all file I/O strictly outside
// it, which the lockdiscipline analyzer now enforces.
func (s *Server) checkpointInstance(inst *instance) (int64, error) {
	done := s.met.stage("checkpoint")
	defer done()
	folds := inst.foldsSinceCkpt.Load()
	var buf bytes.Buffer
	inst.mu.Lock()
	b := pipeline.Bundle{Encoder: inst.encfg, Model: inst.model}
	_, werr := b.WriteTo(&buf)
	var rollback []byte
	if werr == nil {
		rollback = inst.model.CheckpointBytes()
	}
	inst.mu.Unlock()
	if werr == nil {
		var gen int64
		gen, werr = s.store.save(inst.name, buf.Bytes(), rollback)
		if werr == nil {
			inst.foldsSinceCkpt.Add(-folds)
			inst.ckptGen.Store(gen)
			inst.ckptSaves.Add(1)
			s.reg.logf("serve: model %q checkpointed (generation %d)", inst.name, gen)
			return gen, nil
		}
	}
	inst.ckptFailures.Add(1)
	s.reg.logf("serve: checkpointing model %q: %v", inst.name, werr)
	return 0, werr
}

// checkpoint is POST /v1/checkpoint and /v1/models/{name}/checkpoint: an
// explicit durable checkpoint of the resolved instance. 409 no_state_dir
// when durability is disabled, 500 checkpoint_failed when persistence fails
// (the previous good generation is untouched either way).
func (s *Server) checkpoint(inst *instance, w *responseRecorder, r *http.Request) error {
	if s.store == nil {
		return &httpError{http.StatusConflict, codeNoStateDir, "durable checkpoints are disabled; start the server with -state-dir"}
	}
	gen, err := s.checkpointInstance(inst)
	if err != nil {
		return &httpError{http.StatusInternalServerError, codeCheckpointFailed, err.Error()}
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"model":      inst.name,
		"generation": gen,
	})
}
