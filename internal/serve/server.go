// Package serve is the long-running HTTP surface around a trained SMORE
// bundle: batched encode→predict, incremental adaptation on submitted
// unlabeled batches, model export, and health/metrics endpoints. Prediction
// requests share the ensemble under a read lock; adaptation and model
// export (which flushes accumulator staging state) take the write lock, so
// the served model is always internally consistent.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
)

// Options tunes the server; the zero value picks sane defaults.
type Options struct {
	Workers  int   // worker-pool size for encode/predict batches; <= 0 means GOMAXPROCS
	MaxBatch int   // maximum windows per request; <= 0 means 1024
	MaxBody  int64 // request body cap in bytes; <= 0 means 32 MiB
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 32 << 20
	}
	return o
}

// Server serves one bundle. The encoder is immutable and shared freely; the
// ensemble is guarded by mu (RLock for predictions, Lock for adaptation and
// export).
type Server struct {
	opt Options
	enc *encode.Encoder
	met *metrics

	mu    sync.RWMutex
	model *model.Ensemble
	encfg encode.Config
}

// New builds a server around a loaded bundle, reconstructing the encoder's
// item memories deterministically from the bundle's encoder config.
func New(b *pipeline.Bundle, opt Options) (*Server, error) {
	enc, err := encode.New(b.Encoder)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding encoder: %w", err)
	}
	if b.Model == nil {
		return nil, fmt.Errorf("serve: bundle has no model")
	}
	return &Server{
		opt:   opt.withDefaults(),
		enc:   enc,
		met:   newMetrics(),
		model: b.Model,
		encfg: b.Encoder,
	}, nil
}

// Handler returns the HTTP routes:
//
//	POST /v1/predict  {"windows": [[[...]]]} → {"predictions": [...]}
//	POST /v1/adapt    {"windows": [[[...]]]} → {"stats": {...}}
//	GET  /v1/model    canonical bundle bytes (save/export)
//	GET  /healthz     liveness + model summary
//	GET  /metrics     Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type predictRequest struct {
	// Windows[i][t][s] is sensor s at timestep t of window i.
	Windows [][][]float64 `json:"windows"`
	// SourceOnly predicts with the source ensemble even when an adapted
	// target model exists (the no-adapt baseline).
	SourceOnly bool `json:"source_only,omitempty"`
}

type predictResponse struct {
	Predictions []int `json:"predictions"`
	Adapted     bool  `json:"adapted"`
}

type adaptResponse struct {
	Stats   model.AdaptStats `json:"stats"`
	Adapted bool             `json:"adapted"`
}

// httpError carries a status code out of a handler stage.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

// decodeWindows parses and bounds a JSON windows request.
func (s *Server) decodeWindows(w http.ResponseWriter, r *http.Request, req *predictRequest) error {
	defer s.met.stage("decode")()
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBody)
	if err := json.NewDecoder(body).Decode(req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.opt.MaxBody)}
		}
		return &httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()}
	}
	if len(req.Windows) == 0 {
		return &httpError{http.StatusBadRequest, "no windows in request"}
	}
	if len(req.Windows) > s.opt.MaxBatch {
		return &httpError{http.StatusRequestEntityTooLarge, fmt.Sprintf("batch of %d windows exceeds maximum %d", len(req.Windows), s.opt.MaxBatch)}
	}
	return nil
}

// responseRecorder tracks whether a handler has committed a response, so an
// error surfaced after the 200 header went out (e.g. the client hung up
// mid-body) is only counted, never rendered on top of the partial response.
type responseRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (r *responseRecorder) WriteHeader(code int) {
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

func (s *Server) encodeWindows(ws [][][]float64) ([]hdc.Vector, error) {
	defer s.met.stage("encode")()
	hvs, err := s.enc.EncodeBatch(ws, s.opt.Workers)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	return hvs, nil
}

func (s *Server) handlePredict(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := func() error {
		var req predictRequest
		if err := s.decodeWindows(w, r, &req); err != nil {
			return err
		}
		hvs, err := s.encodeWindows(req.Windows)
		if err != nil {
			return err
		}
		done := s.met.stage("infer")
		s.mu.RLock()
		var preds []int
		if req.SourceOnly {
			preds = s.model.PredictSourceBatch(hvs, s.opt.Workers)
		} else {
			preds = s.model.PredictBatch(hvs, s.opt.Workers)
		}
		adapted := s.model.Adapted()
		s.mu.RUnlock()
		done()
		return writeJSON(w, http.StatusOK, predictResponse{Predictions: preds, Adapted: adapted})
	}()
	s.finish(w, "predict", start, err)
}

func (s *Server) handleAdapt(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := func() error {
		var req predictRequest
		if err := s.decodeWindows(w, r, &req); err != nil {
			return err
		}
		hvs, err := s.encodeWindows(req.Windows)
		if err != nil {
			return err
		}
		done := s.met.stage("adapt")
		s.mu.Lock()
		stats, aerr := s.model.AdaptIncremental(hvs, s.opt.Workers)
		adapted := s.model.Adapted()
		s.mu.Unlock()
		done()
		if aerr != nil {
			return &httpError{http.StatusConflict, aerr.Error()}
		}
		return writeJSON(w, http.StatusOK, adaptResponse{Stats: stats, Adapted: adapted})
	}()
	s.finish(w, "adapt", start, err)
}

func (s *Server) handleModel(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := func() error {
		done := s.met.stage("export")
		var buf bytes.Buffer
		// Write lock: serializing flushes accumulator staging state.
		s.mu.Lock()
		b := pipeline.Bundle{Encoder: s.encfg, Model: s.model}
		_, werr := b.WriteTo(&buf)
		s.mu.Unlock()
		done()
		if werr != nil {
			return werr
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
		_, werr = w.Write(buf.Bytes())
		return werr
	}()
	s.finish(w, "model", start, err)
}

func (s *Server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	s.mu.RLock()
	adapted := s.model.Adapted()
	cfg := s.model.Config()
	s.mu.RUnlock()
	err := writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"adapted": adapted,
		"dim":     cfg.Dim,
		"classes": cfg.Classes,
	})
	s.finish(w, "healthz", start, err)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	adapted := s.model.Adapted()
	cfg := s.model.Config()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, adapted, cfg.Dim, cfg.Classes)
}

// finish records metrics for a request and renders the error — unless a
// response was already committed (then the error, typically a failed body
// write to a gone client, is only counted).
func (s *Server) finish(w *responseRecorder, endpoint string, start time.Time, err error) {
	s.met.observeRequest(endpoint, start, err != nil)
	if err == nil || w.wrote {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(errStatus(err))
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // nothing left to do on a failed error write
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}
