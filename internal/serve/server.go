// Package serve is the long-running HTTP surface around trained SMORE
// bundles: batched encode→predict, incremental adaptation on submitted
// unlabeled batches, a streaming adaptation queue, model export, a named
// multi-model registry with LRU eviction, and health/metrics endpoints.
//
// Prediction is completely lock-free: each ensemble publishes an immutable
// snapshot after every fold, and a predict request scores its whole batch
// against one atomically-loaded snapshot, so heavy prediction traffic never
// stalls behind adaptation or export. Adaptation folds and model export
// (which flushes accumulator staging state) serialize on a short per-model
// mutex. The streaming path encodes on the worker pool with no lock held
// and only takes that per-model mutex for the fold step.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/stream"
)

// Options tunes the server; the zero value picks sane defaults.
type Options struct {
	Workers  int   // worker-pool size for encode/predict batches; <= 0 means GOMAXPROCS
	MaxBatch int   // maximum windows per request; <= 0 means 1024
	MaxBody  int64 // request body cap in bytes; <= 0 means 32 MiB

	// StreamQueue caps how many windows a model's streaming adaptation queue
	// may hold before POST .../stream/adapt returns 429; <= 0 means 4096.
	StreamQueue int
	// StreamBatch caps how many queued windows a background adapter folds
	// per AdaptIncremental call; <= 0 means 256.
	StreamBatch int

	// DriftPolicy decides when a model's streaming adapter spawns a fresh
	// target domain on a similarity cliff (see stream.ParseDriftPolicy for
	// the spec grammar). Nil means "none": the similarity EMA is still
	// tracked for observability, but no targets are ever spawned.
	DriftPolicy stream.DriftPolicy
	// MaxTargets bounds the live target set under a retiring drift policy;
	// <= 0 means stream.DefaultMaxTargets.
	MaxTargets int

	// MaxModels caps how many named bundles the registry holds at once;
	// uploading past the cap LRU-evicts the least-recently-used non-default
	// model. <= 0 means 8. The default model is pinned and does not count
	// toward evictability (a cap of 1 leaves room for nothing else).
	MaxModels int

	// StateDir, when set, enables durable checkpointing: every instance's
	// bundle (and its drift-rollback checkpoint) is persisted under
	// StateDir/<model>/ via temp-file + fsync + atomic rename, and New
	// recovers the last good generation of every model found there.
	StateDir string
	// CheckpointInterval is the periodic checkpoint cadence for instances
	// with unpersisted folds; <= 0 disables the ticker (checkpoints still
	// happen on the fold trigger, the checkpoint routes, and shutdown).
	CheckpointInterval time.Duration
	// CheckpointFolds checkpoints an instance after that many successful
	// stream folds since its last checkpoint; <= 0 disables the trigger.
	CheckpointFolds int

	// RequestTimeout bounds each model-route request's handler work; past
	// the deadline the request fails 503 deadline_exceeded instead of
	// holding a worker-pool slot. The deadline propagates into batch
	// encoding, which runs in bounded chunks so an oversized batch cannot
	// overshoot it by more than one chunk. <= 0 disables.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently admitted requests across the model
	// routes (predict/adapt/stream-adapt/export/rollback/checkpoint); the
	// request past the cap is rejected 429 overloaded with a Retry-After
	// hint instead of queueing unboundedly. Health, metrics, stats, and
	// registry administration are exempt. <= 0 disables.
	MaxInFlight int

	// BreakerThreshold opens a model's stream-fold circuit after that many
	// consecutive fold failures: stream/adapt answers 503 adapter_open until
	// BreakerCooldown elapses, then one probe batch decides. <= 0 disables.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects before the
	// half-open probe; <= 0 means 5s.
	BreakerCooldown time.Duration

	// Logf, when set, receives registry lifecycle events (uploads, swaps,
	// evictions, deletions). Nil means silent.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 32 << 20
	}
	if o.StreamQueue <= 0 {
		o.StreamQueue = 4096
	}
	if o.StreamBatch <= 0 {
		o.StreamBatch = 256
	}
	if o.MaxModels <= 0 {
		o.MaxModels = 8
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	return o
}

// Server serves a registry of named bundles. The bundle it booted with is
// registered as DefaultModel and backs the unnamed routes; uploading to
// "default" hot-swaps what those routes serve.
type Server struct {
	opt   Options
	met   *metrics
	reg   *registry
	store *stateStore // durable checkpoint store; nil without StateDir

	// inFlight counts requests currently admitted on the gated model
	// routes, against Options.MaxInFlight.
	inFlight atomic.Int64
}

// New builds a server around a loaded bundle, registering it as the default
// model, and starts its streaming adaptation worker. With Options.StateDir
// set, New first recovers the last good checkpoint generation of every model
// persisted there — a recovered default takes precedence over b — and starts
// the background checkpointer. Call Close to drain and stop every registered
// model.
func New(b *pipeline.Bundle, opt Options) (*Server, error) {
	s := &Server{opt: opt.withDefaults(), met: newMetrics()}
	s.reg = newRegistry(s.opt, s.met, s.opt.Logf)
	var recovered []recoveredModel
	if s.opt.StateDir != "" {
		store, err := newStateStore(s.opt, s.reg.logf)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.reg.store = store
		recovered = store.recoverAll()
	}
	for _, rec := range recovered {
		if rec.name == DefaultModel {
			s.reg.logf("serve: model %q recovered from state dir (generation %d)", rec.name, rec.gen)
			b = rec.bundle
		}
	}
	def, err := s.reg.newInstance(DefaultModel, b)
	if err != nil {
		return nil, err
	}
	s.reg.mu.Lock()
	s.reg.models[DefaultModel] = def
	s.reg.def.Store(def)
	s.reg.mu.Unlock()
	for _, rec := range recovered {
		if rec.name == DefaultModel {
			def.ckptGen.Store(rec.gen)
			continue
		}
		if err := s.reg.restore(rec); err != nil {
			s.reg.logf("serve: not restoring recovered model %q: %v", rec.name, err)
		}
	}
	if s.store != nil {
		s.store.wg.Add(1)
		go s.runCheckpointer()
	}
	return s, nil
}

// Close stops accepting streamed windows on every registered model, drains
// everything already queued into the models, and stops the background
// adapters. With a state dir it then takes a final checkpoint of every
// instance so the drained folds are durable before the process exits. It is
// the graceful-shutdown half of New; ctx bounds the drain.
func (s *Server) Close(ctx context.Context) error {
	err := s.reg.closeAll(ctx)
	if s.store != nil {
		s.store.stopOnce.Do(func() { close(s.store.stop) })
		s.store.wg.Wait()
		if cerr := s.checkpointAll(true); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// StreamStats snapshots the current default model's streaming queue
// counters (the hot-swapped-in instance after an upload to "default").
func (s *Server) StreamStats() stream.Stats { return s.reg.def.Load().stream.Stats() }

// Handler returns the HTTP routes:
//
//	POST   /v1/predict                    {"windows": [[[...]]]} → {"predictions": [...]}
//	POST   /v1/adapt                      {"windows": [[[...]]]} → {"stats": {...}}
//	POST   /v1/stream/adapt               enqueue windows for background adaptation → 202 (429 when full)
//	GET    /v1/stream/stats               streaming queue depth, folds, drift trajectory, target set
//	POST   /v1/stream/rollback            restore the pre-drift checkpoint (409 no_checkpoint without one)
//	POST   /v1/checkpoint                 persist the default model to the state dir (409 no_state_dir without one)
//	GET    /v1/model                      canonical default bundle bytes (save/export)
//	GET    /v1/models                     registry listing
//	POST   /v1/models/{name}              upload a bundle (create or atomic hot swap)
//	GET    /v1/models/{name}              canonical named bundle bytes
//	DELETE /v1/models/{name}              remove a named model (default is pinned)
//	POST   /v1/models/{name}/predict      per-model predict
//	POST   /v1/models/{name}/adapt        per-model incremental adaptation
//	POST   /v1/models/{name}/stream/adapt per-model streaming enqueue
//	GET    /v1/models/{name}/stream/stats per-model streaming counters
//	POST   /v1/models/{name}/stream/rollback per-model checkpoint restore
//	POST   /v1/models/{name}/checkpoint   per-model durable checkpoint
//	GET    /healthz                       liveness + default model summary
//	GET    /metrics                       Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.onDefault("predict", s.predict))
	mux.HandleFunc("POST /v1/adapt", s.onDefault("adapt", s.adapt))
	mux.HandleFunc("POST /v1/stream/adapt", s.onDefault("stream_adapt", s.streamAdapt))
	mux.HandleFunc("GET /v1/stream/stats", s.onDefault("stream_stats", s.streamStats))
	mux.HandleFunc("POST /v1/stream/rollback", s.onDefault("stream_rollback", s.streamRollback))
	mux.HandleFunc("POST /v1/checkpoint", s.onDefault("checkpoint", s.checkpoint))
	mux.HandleFunc("GET /v1/model", s.onDefault("model", s.export))
	mux.HandleFunc("GET /v1/models", s.plain("models", s.listModels))
	mux.HandleFunc("POST /v1/models/{name}", s.plain("model_upload", s.uploadModel))
	mux.HandleFunc("GET /v1/models/{name}", s.onNamed("model", s.export))
	mux.HandleFunc("DELETE /v1/models/{name}", s.plain("model_delete", s.deleteModel))
	mux.HandleFunc("POST /v1/models/{name}/predict", s.onNamed("predict", s.predict))
	mux.HandleFunc("POST /v1/models/{name}/adapt", s.onNamed("adapt", s.adapt))
	mux.HandleFunc("POST /v1/models/{name}/stream/adapt", s.onNamed("stream_adapt", s.streamAdapt))
	mux.HandleFunc("GET /v1/models/{name}/stream/stats", s.onNamed("stream_stats", s.streamStats))
	mux.HandleFunc("POST /v1/models/{name}/stream/rollback", s.onNamed("stream_rollback", s.streamRollback))
	mux.HandleFunc("POST /v1/models/{name}/checkpoint", s.onNamed("checkpoint", s.checkpoint))
	mux.HandleFunc("GET /healthz", s.plain("healthz", s.healthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// instanceHandler is one route's logic against a resolved model instance.
type instanceHandler func(inst *instance, w *responseRecorder, r *http.Request) error

// admit reserves an in-flight admission slot for a gated model route,
// returning the release func, or an overload rejection once MaxInFlight
// slots are taken. Stats stay exempt so overloaded servers remain
// observable (loadgen reconciles queue counters through them mid-storm).
func (s *Server) admit(endpoint string) (release func(), err error) {
	if s.opt.MaxInFlight <= 0 || endpoint == "stream_stats" {
		return func() {}, nil
	}
	if n := s.inFlight.Add(1); n > int64(s.opt.MaxInFlight) {
		s.inFlight.Add(-1)
		s.met.overloadRejects.Add(1)
		return nil, withRetryAfter(&httpError{http.StatusTooManyRequests, codeOverloaded,
			fmt.Sprintf("server at its in-flight request cap (%d); retry later", s.opt.MaxInFlight)}, time.Second)
	}
	return func() { s.inFlight.Add(-1) }, nil
}

// withDeadline applies the per-request deadline to the request context.
func (s *Server) withDeadline(r *http.Request) (*http.Request, context.CancelFunc) {
	if s.opt.RequestTimeout <= 0 {
		return r, func() {}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
	return r.WithContext(ctx), cancel
}

// onDefault wires an instance handler to whatever instance is currently
// registered as the default — one atomic load, no registry lock, and always
// the live instance even after a hot swap of "default" (a cached pointer
// would keep serving, and stream-enqueueing into, the retired model). The
// wrapper also applies the overload-protection envelope: the in-flight
// admission cap and the per-request deadline.
func (s *Server) onDefault(endpoint string, h instanceHandler) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		w := &responseRecorder{ResponseWriter: rw}
		release, err := s.admit(endpoint)
		if err != nil {
			s.finish(w, endpoint, start, err)
			return
		}
		defer release()
		r, cancel := s.withDeadline(r)
		defer cancel()
		s.finish(w, endpoint, start, h(s.reg.def.Load(), w, r))
	}
}

// onNamed resolves {name} through the registry (touching its LRU slot)
// before running the handler. Requests share the same endpoint counters —
// and the same admission/deadline envelope — as their default-route twins.
func (s *Server) onNamed(endpoint string, h instanceHandler) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		w := &responseRecorder{ResponseWriter: rw}
		release, aerr := s.admit(endpoint)
		if aerr != nil {
			s.finish(w, endpoint, start, aerr)
			return
		}
		defer release()
		r, cancel := s.withDeadline(r)
		defer cancel()
		err := func() error {
			inst, err := s.reg.get(r.PathValue("name"))
			if err != nil {
				return err
			}
			return h(inst, w, r)
		}()
		s.finish(w, endpoint, start, err)
	}
}

// plain wires a handler that needs no instance resolution.
func (s *Server) plain(endpoint string, h func(w *responseRecorder, r *http.Request) error) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		w := &responseRecorder{ResponseWriter: rw}
		s.finish(w, endpoint, start, h(w, r))
	}
}

type predictRequest struct {
	// Windows[i][t][s] is sensor s at timestep t of window i.
	Windows [][][]float64 `json:"windows"`
	// SourceOnly predicts with the source ensemble even when an adapted
	// target model exists (the no-adapt baseline).
	SourceOnly bool `json:"source_only,omitempty"`
	// Strategy selects the adaptation recipe for this request as a
	// "confidence+schedule+update" spec (adapt and stream/adapt routes
	// only; prediction doesn't adapt, so predict rejects it). Empty keeps
	// the model's current strategy.
	Strategy string `json:"strategy,omitempty"`
}

type predictResponse struct {
	Predictions []int `json:"predictions"`
	Adapted     bool  `json:"adapted"`
}

type adaptResponse struct {
	Stats    model.AdaptStats `json:"stats"`
	Adapted  bool             `json:"adapted"`
	Strategy string           `json:"strategy"`
}

// httpError carries a status code and a stable machine-readable error code
// out of a handler stage.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// retryAfterError decorates an httpError with a Retry-After hint for
// backpressure responses. It wraps rather than extends httpError so the
// dozens of positional httpError literals (and the errenvelope analyzer's
// view of them) stay three fields.
type retryAfterError struct {
	*httpError
	after time.Duration
}

func (e *retryAfterError) Unwrap() error { return e.httpError }

// withRetryAfter attaches a retry hint to a backpressure error; finish
// renders it as a Retry-After header (all 429/503 responses carry one — a
// wrapped hint overrides the 1s default).
func withRetryAfter(he *httpError, after time.Duration) error {
	return &retryAfterError{httpError: he, after: after}
}

// errorEnvelope is the uniform error body every route renders:
// {"error":{"code":"...","message":"..."}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func errStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

func errCode(err error) string {
	var he *httpError
	if errors.As(err, &he) && he.code != "" {
		return he.code
	}
	return codeInternal
}

// decodeWindows parses and bounds a JSON windows request. The body must be
// exactly one JSON value: trailing non-whitespace bytes (a concatenated
// second object, truncation garbage) fail the request instead of being
// silently ignored.
func (s *Server) decodeWindows(w http.ResponseWriter, r *http.Request, req *predictRequest) error {
	defer s.met.stage("decode")()
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBody)
	dec := json.NewDecoder(body)
	if err := dec.Decode(req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{http.StatusRequestEntityTooLarge, codeBodyTooLarge, fmt.Sprintf("body exceeds %d bytes", s.opt.MaxBody)}
		}
		return &httpError{http.StatusBadRequest, codeInvalidJSON, "invalid JSON: " + err.Error()}
	}
	if _, err := dec.Token(); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{http.StatusRequestEntityTooLarge, codeBodyTooLarge, fmt.Sprintf("body exceeds %d bytes", s.opt.MaxBody)}
		}
		return &httpError{http.StatusBadRequest, codeTrailingData, "trailing data after JSON body"}
	}
	if len(req.Windows) == 0 {
		return &httpError{http.StatusBadRequest, codeEmptyBatch, "no windows in request"}
	}
	if len(req.Windows) > s.opt.MaxBatch {
		return &httpError{http.StatusRequestEntityTooLarge, codeBatchTooLarge, fmt.Sprintf("batch of %d windows exceeds maximum %d", len(req.Windows), s.opt.MaxBatch)}
	}
	return nil
}

// responseRecorder tracks whether a handler has committed a response, so an
// error surfaced after the 200 header went out (e.g. the client hung up
// mid-body) is only counted, never rendered on top of the partial response.
type responseRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (r *responseRecorder) WriteHeader(code int) {
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// deadlineError maps an expired request context to the 503 the client sees.
// A cancelled context (client hung up) takes the same shape; the envelope
// write will fail and be counted rather than rendered.
func deadlineError(err error) error {
	return withRetryAfter(&httpError{http.StatusServiceUnavailable, codeDeadlineExceeded,
		"request deadline exceeded: " + err.Error()}, time.Second)
}

// encodeChunk is the batch-encode granularity at which an active request
// deadline is re-checked, bounding how far one oversized batch can overshoot
// its deadline inside the worker pool.
const encodeChunk = 64

func (s *Server) encodeWindows(ctx context.Context, inst *instance, ws [][][]float64) ([]hdc.Vector, error) {
	defer s.met.stage("encode")()
	if _, ok := ctx.Deadline(); !ok {
		hvs, err := inst.enc.EncodeBatch(ws, s.opt.Workers)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, codeBadWindow, err.Error()}
		}
		return hvs, nil
	}
	// Under a deadline, encode in chunks and re-check the context between
	// them. Window encodings are independent and deterministic, so the
	// chunked result is byte-identical to the one-shot path.
	out := make([]hdc.Vector, 0, len(ws))
	for start := 0; start < len(ws); start += encodeChunk {
		if err := ctx.Err(); err != nil {
			return nil, deadlineError(err)
		}
		hvs, err := inst.enc.EncodeBatch(ws[start:min(start+encodeChunk, len(ws))], s.opt.Workers)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, codeBadWindow, err.Error()}
		}
		out = append(out, hvs...)
	}
	if err := ctx.Err(); err != nil {
		return nil, deadlineError(err)
	}
	return out, nil
}

// predict scores the request's windows against one atomically-loaded model
// snapshot — no lock is acquired anywhere on this path, and the whole batch
// sees one consistent model state even while folds land concurrently.
func (s *Server) predict(inst *instance, w *responseRecorder, r *http.Request) error {
	var req predictRequest
	if err := s.decodeWindows(w, r, &req); err != nil {
		return err
	}
	if req.Strategy != "" {
		return &httpError{http.StatusBadRequest, codeUnknownStrategy,
			"prediction does not adapt; \"strategy\" is only accepted on the adapt and stream/adapt routes"}
	}
	hvs, err := s.encodeWindows(r.Context(), inst, req.Windows)
	if err != nil {
		return err
	}
	done := s.met.stage("infer")
	snap := inst.model.Snapshot()
	var preds []int
	if req.SourceOnly {
		preds = snap.PredictSourceBatch(hvs, s.opt.Workers)
	} else {
		preds = snap.PredictBatch(hvs, s.opt.Workers)
	}
	adapted := snap.Adapted()
	done()
	return writeJSON(w, http.StatusOK, predictResponse{Predictions: preds, Adapted: adapted})
}

// parseStrategy resolves a request's optional strategy spec, mapping an
// unregistered name to a 400. ok reports whether the request selected one.
func parseStrategy(spec string) (strat model.Strategy, ok bool, err error) {
	if spec == "" {
		return model.Strategy{}, false, nil
	}
	strat, perr := model.ParseStrategySpec(spec)
	if perr != nil {
		return model.Strategy{}, false, &httpError{http.StatusBadRequest, codeUnknownStrategy, perr.Error()}
	}
	return strat, true, nil
}

func (s *Server) adapt(inst *instance, w *responseRecorder, r *http.Request) error {
	var req predictRequest
	if err := s.decodeWindows(w, r, &req); err != nil {
		return err
	}
	strat, setStrat, err := parseStrategy(req.Strategy)
	if err != nil {
		return err
	}
	hvs, err := s.encodeWindows(r.Context(), inst, req.Windows)
	if err != nil {
		return err
	}
	done := s.met.stage("adapt")
	inst.mu.Lock()
	// Installing the strategy inside the same critical section as the fold
	// pairs them atomically: concurrent adapts with different strategies
	// each fold under their own.
	if setStrat {
		inst.model.SetStrategy(strat)
	}
	stats, aerr := inst.model.AdaptIncremental(hvs, s.opt.Workers)
	adapted := inst.model.Adapted()
	used := inst.model.Strategy().String()
	inst.mu.Unlock()
	done()
	if aerr != nil {
		return adaptError(aerr)
	}
	return writeJSON(w, http.StatusOK, adaptResponse{Stats: stats, Adapted: adapted, Strategy: used})
}

// adaptError maps an adaptation failure to the right HTTP status: inputs
// that can never succeed (dimension mismatch, empty batch) are the caller's
// fault (400), an untrained model is a state conflict (409), anything else
// is a server fault (500).
func adaptError(err error) *httpError {
	switch {
	case errors.Is(err, model.ErrInvalidTargets):
		return &httpError{http.StatusBadRequest, codeInvalidTargets, err.Error()}
	case errors.Is(err, model.ErrNotTrained):
		return &httpError{http.StatusConflict, codeNotTrained, err.Error()}
	default:
		return &httpError{http.StatusInternalServerError, codeInternal, err.Error()}
	}
}

// streamAdaptResponse acknowledges an accepted streaming batch.
type streamAdaptResponse struct {
	Accepted   int `json:"accepted"`
	QueueDepth int `json:"queue_depth"`
}

// validateWindows rejects windows the instance's encoder would fail on —
// fewer timesteps than the n-gram length, rows with the wrong sensor count
// — before they reach the streaming queue. The background worker coalesces
// windows from many requests into one encode batch, and EncodeBatch fails
// wholesale, so an unvalidated bad window would silently destroy other
// clients' already-accepted data.
func (inst *instance) validateWindows(ws [][][]float64) error {
	for i, win := range ws {
		if len(win) < inst.encfg.NGram {
			return &httpError{http.StatusBadRequest, codeBadWindow,
				fmt.Sprintf("window %d has %d timesteps, need at least %d (the n-gram length)", i, len(win), inst.encfg.NGram)}
		}
		for t, row := range win {
			if len(row) != inst.encfg.Sensors {
				return &httpError{http.StatusBadRequest, codeBadWindow,
					fmt.Sprintf("window %d timestep %d has %d sensors, want %d", i, t, len(row), inst.encfg.Sensors)}
			}
		}
	}
	return nil
}

// streamAdapt enqueues the request's windows on the instance's streaming
// adaptation queue and returns immediately: 202 with the queue depth on
// success, 413 for a batch that could never fit, 429 when the queue is
// currently too full to hold the whole batch (backpressure — nothing is
// partially enqueued), 503 once shutdown has begun.
func (s *Server) streamAdapt(inst *instance, w *responseRecorder, r *http.Request) error {
	var req predictRequest
	if err := s.decodeWindows(w, r, &req); err != nil {
		return err
	}
	strat, setStrat, err := parseStrategy(req.Strategy)
	if err != nil {
		return err
	}
	if err := inst.validateWindows(req.Windows); err != nil {
		return err
	}
	// A tripped circuit rejects before the queue: every admitted batch on a
	// poisoned stream is paid for (encoded, locked, folded) only to be
	// discarded, so backpressure here is cheaper for everyone.
	if ok, wait := inst.breaker.allow(); !ok {
		return withRetryAfter(&httpError{http.StatusServiceUnavailable, codeAdapterOpen,
			"stream adapter circuit open after repeated fold failures; retry later"}, wait)
	}
	// A batch larger than the whole queue can never succeed, so a 429
	// ("retry later") would send a well-behaved client into an infinite
	// retry loop; reject it terminally instead.
	if len(req.Windows) > s.opt.StreamQueue {
		return &httpError{http.StatusRequestEntityTooLarge, codeBatchTooLarge,
			fmt.Sprintf("batch of %d windows exceeds stream queue capacity %d", len(req.Windows), s.opt.StreamQueue)}
	}
	// The background worker folds coalesced batches under the model's
	// current strategy, so a request's strategy takes effect for its own
	// windows and everything folded after them — until another request
	// selects a different one.
	if setStrat {
		inst.model.SetStrategy(strat)
	}
	depth, err := inst.stream.Enqueue(req.Windows)
	switch {
	case errors.Is(err, stream.ErrQueueFull):
		return &httpError{http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("stream queue full (%d of %d windows queued); retry later", depth, s.opt.StreamQueue)}
	case errors.Is(err, stream.ErrClosed):
		return &httpError{http.StatusServiceUnavailable, codeDraining, "server is draining; stream ingest closed"}
	case err != nil:
		return &httpError{http.StatusBadRequest, codeBadWindow, err.Error()}
	}
	return writeJSON(w, http.StatusAccepted, streamAdaptResponse{Accepted: len(req.Windows), QueueDepth: depth})
}

// streamStatsResponse is the /v1/stream/stats body: the adapter's queue and
// drift-trajectory counters plus the model's current target set and rollback
// availability.
type streamStatsResponse struct {
	stream.Stats
	Targets       []model.TargetInfo `json:"targets"`
	TargetsLive   int                `json:"targets_live"`
	Rollbacks     int64              `json:"rollbacks_total"`
	HasCheckpoint bool               `json:"has_checkpoint"`
}

// streamStats reports the instance's streaming queue counters and the target
// set the drift policy has grown on its model.
func (s *Server) streamStats(inst *instance, w *responseRecorder, r *http.Request) error {
	infos := inst.model.TargetInfos()
	return writeJSON(w, http.StatusOK, streamStatsResponse{
		Stats:         inst.stream.Stats(),
		Targets:       infos,
		TargetsLive:   len(infos),
		Rollbacks:     inst.rollbacks.Load(),
		HasCheckpoint: inst.model.HasCheckpoint(),
	})
}

// streamRollback restores the model's pre-drift checkpoint — the exact state
// captured by the last spawn or retire — and resets the adapter's similarity
// trajectory so the drift detector starts measuring the restored target
// fresh. Without a checkpoint (no spawn happened, or adaptation was reset)
// it answers 409 no_checkpoint.
func (s *Server) streamRollback(inst *instance, w *responseRecorder, r *http.Request) error {
	done := s.met.stage("rollback")
	inst.mu.Lock()
	err := inst.model.Rollback()
	inst.mu.Unlock()
	done()
	if err != nil {
		if errors.Is(err, model.ErrNoCheckpoint) {
			return &httpError{http.StatusConflict, codeNoCheckpoint, err.Error()}
		}
		return err
	}
	inst.stream.ResetDrift()
	inst.rollbacks.Add(1)
	infos := inst.model.TargetInfos()
	return writeJSON(w, http.StatusOK, map[string]any{
		"rolled_back":  true,
		"targets":      infos,
		"targets_live": len(infos),
	})
}

// export writes the instance's canonical bundle bytes. Serialization
// flushes accumulator staging state, so it takes the per-model mutex;
// predictions keep flowing off the published snapshot meanwhile.
func (s *Server) export(inst *instance, w *responseRecorder, r *http.Request) error {
	done := s.met.stage("export")
	var buf bytes.Buffer
	inst.mu.Lock()
	b := pipeline.Bundle{Encoder: inst.encfg, Model: inst.model}
	_, werr := b.WriteTo(&buf)
	inst.mu.Unlock()
	done()
	if werr != nil {
		return werr
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	_, werr = w.Write(buf.Bytes())
	return werr
}

// listModels reports every registry entry's identity, state, and streaming
// counters.
func (s *Server) listModels(w *responseRecorder, r *http.Request) error {
	return writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.infos()})
}

// uploadModelResponse acknowledges an installed bundle.
type uploadModelResponse struct {
	Name    string `json:"name"`
	Swapped bool   `json:"swapped"`           // an existing entry was hot-swapped
	Evicted string `json:"evicted,omitempty"` // LRU victim displaced by this upload
}

// uploadModel installs the request body (canonical bundle bytes, as written
// by /v1/model or smore -save) under {name}: 201 for a new entry, 200 for
// an atomic hot swap of an existing one. In-flight requests against a
// swapped model finish against the old instance; its stream queue is
// drained into the discarded model in the background.
func (s *Server) uploadModel(w *responseRecorder, r *http.Request) error {
	name := r.PathValue("name")
	b, err := func() (*pipeline.Bundle, error) {
		defer s.met.stage("decode")()
		body := http.MaxBytesReader(w, r.Body, s.opt.MaxBody)
		b, err := pipeline.ReadBundle(body)
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				return nil, &httpError{http.StatusRequestEntityTooLarge, codeBodyTooLarge, fmt.Sprintf("body exceeds %d bytes", s.opt.MaxBody)}
			}
			// Typed model errors pick the precise code; no string matching.
			code := codeInvalidBundle
			switch {
			case errors.Is(err, model.ErrInvalidConfig):
				code = codeInvalidConfig
			case errors.Is(err, model.ErrUnknownStrategy):
				code = codeUnknownStrategy
			}
			return nil, &httpError{http.StatusBadRequest, code, err.Error()}
		}
		if n, _ := io.Copy(io.Discard, body); n != 0 {
			return nil, &httpError{http.StatusBadRequest, codeTrailingData, "trailing bytes after bundle payload"}
		}
		return b, nil
	}()
	if err != nil {
		return err
	}
	swapped, evicted, err := s.reg.upsert(name, b)
	if err != nil {
		return err
	}
	status := http.StatusCreated
	if swapped {
		status = http.StatusOK
	}
	return writeJSON(w, status, uploadModelResponse{Name: name, Swapped: swapped, Evicted: evicted})
}

// deleteModel removes a named model from the registry; the default model is
// pinned and answers 409.
func (s *Server) deleteModel(w *responseRecorder, r *http.Request) error {
	if err := s.reg.remove(r.PathValue("name")); err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
}

func (s *Server) healthz(w *responseRecorder, r *http.Request) error {
	def := s.reg.def.Load()
	snap := def.model.Snapshot()
	cfg := snap.Config()
	return writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"adapted":  snap.Adapted(),
		"dim":      cfg.Dim,
		"classes":  cfg.Classes,
		"strategy": def.model.Strategy().String(),
		"models":   len(s.reg.infos()),
	})
}

// errWriter forwards writes and remembers the first failure, so a scrape
// whose response write fails is counted as an error by finish.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	n, err := ew.w.Write(p)
	if err != nil && ew.err == nil {
		ew.err = err
	}
	return n, err
}

// handleMetrics renders the Prometheus exposition. It goes through the same
// responseRecorder/finish accounting as every other endpoint — including
// write failures, which finish counts as errors — so scrapes show up in the
// per-endpoint request counters (the scrape in progress is counted by the
// *next* one: finish runs after render).
func (s *Server) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	ew := &errWriter{w: w}
	s.met.render(ew, s.reg.infos())
	s.finish(w, "metrics", start, ew.err)
}

// finish records metrics for a request and renders the error in the
// uniform envelope — unless a response was already committed (then the
// error, typically a failed body write to a gone client, is only counted).
//
// errenvelope analyzer (cmd/smorevet) flags envelope literals and bare
// error statuses everywhere else.
//
//smore:envelope-helper — the single function that renders error bodies; the
func (s *Server) finish(w *responseRecorder, endpoint string, start time.Time, err error) {
	s.met.observeRequest(endpoint, start, err != nil)
	if err == nil {
		return
	}
	if w.wrote {
		// A handler only surfaces an error after committing a status when the
		// body write itself failed; nothing can be rendered on top of the
		// partial response, so the failure is counted instead.
		s.met.observeWriteError(endpoint)
		return
	}
	status := errStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// Every backpressure response tells the client when to come back:
		// a wrapped retryAfterError carries the precise hint (e.g. the
		// breaker's remaining cooldown); everything else gets 1 second.
		secs := 1
		var ra *retryAfterError
		if errors.As(err, &ra) && ra.after > 0 {
			secs = max(1, int(math.Ceil(ra.after.Seconds())))
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	ew := &errWriter{w: w}
	// Best-effort by design: the error status line is already committed, so
	// if the envelope body fails to reach the client there is nothing left
	// to answer with — the failure lands in writeErrors below.
	//smorevet:allow errenvelope -- the sanctioned raw envelope write; failures counted via observeWriteError
	_ = json.NewEncoder(ew).Encode(errorEnvelope{Error: errorBody{Code: errCode(err), Message: err.Error()}})
	if ew.err != nil {
		s.met.observeWriteError(endpoint)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}
