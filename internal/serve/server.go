// Package serve is the long-running HTTP surface around a trained SMORE
// bundle: batched encode→predict, incremental adaptation on submitted
// unlabeled batches, a streaming adaptation queue, model export, and
// health/metrics endpoints. Prediction requests share the ensemble under a
// read lock; adaptation folds and model export (which flushes accumulator
// staging state) take the write lock, so the served model is always
// internally consistent. The streaming path encodes on the worker pool with
// no lock held and only takes the write lock for the short fold step.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/stream"
)

// Options tunes the server; the zero value picks sane defaults.
type Options struct {
	Workers  int   // worker-pool size for encode/predict batches; <= 0 means GOMAXPROCS
	MaxBatch int   // maximum windows per request; <= 0 means 1024
	MaxBody  int64 // request body cap in bytes; <= 0 means 32 MiB

	// StreamQueue caps how many windows the streaming adaptation queue may
	// hold before POST /v1/stream/adapt returns 429; <= 0 means 4096.
	StreamQueue int
	// StreamBatch caps how many queued windows the background adapter folds
	// per AdaptIncremental call; <= 0 means 256.
	StreamBatch int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 32 << 20
	}
	if o.StreamQueue <= 0 {
		o.StreamQueue = 4096
	}
	if o.StreamBatch <= 0 {
		o.StreamBatch = 256
	}
	return o
}

// Server serves one bundle. The encoder is immutable and shared freely; the
// ensemble is guarded by mu (RLock for predictions, Lock for adaptation
// folds and export).
type Server struct {
	opt    Options
	enc    *encode.Encoder
	met    *metrics
	stream *stream.Adapter

	mu    sync.RWMutex
	model *model.Ensemble
	encfg encode.Config
}

// New builds a server around a loaded bundle, reconstructing the encoder's
// item memories deterministically from the bundle's encoder config, and
// starts the streaming adaptation worker. Call Close to drain and stop it.
func New(b *pipeline.Bundle, opt Options) (*Server, error) {
	enc, err := encode.New(b.Encoder)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding encoder: %w", err)
	}
	if b.Model == nil {
		return nil, fmt.Errorf("serve: bundle has no model")
	}
	s := &Server{
		opt:   opt.withDefaults(),
		enc:   enc,
		met:   newMetrics(),
		model: b.Model,
		encfg: b.Encoder,
	}
	s.stream = stream.New(
		stream.Config{QueueCap: s.opt.StreamQueue, MaxBatch: s.opt.StreamBatch},
		func(windows [][][]float64) ([]hdc.Vector, error) {
			defer s.met.stage("stream_encode")()
			return s.enc.EncodeBatch(windows, s.opt.Workers)
		},
		func(hvs []hdc.Vector) (model.AdaptStats, error) {
			defer s.met.stage("fold")()
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.model.AdaptIncremental(hvs, s.opt.Workers)
		},
	)
	s.stream.Start()
	return s, nil
}

// Close stops accepting streamed windows, drains everything already queued
// into the model, and stops the background adapter. It is the graceful-
// shutdown half of New; ctx bounds how long the drain may take.
func (s *Server) Close(ctx context.Context) error {
	return s.stream.Close(ctx)
}

// StreamStats snapshots the streaming adaptation queue's counters.
func (s *Server) StreamStats() stream.Stats { return s.stream.Stats() }

// Handler returns the HTTP routes:
//
//	POST /v1/predict       {"windows": [[[...]]]} → {"predictions": [...]}
//	POST /v1/adapt         {"windows": [[[...]]]} → {"stats": {...}}
//	POST /v1/stream/adapt  enqueue windows for background adaptation → 202 (429 when full)
//	GET  /v1/stream/stats  streaming queue depth, folds, cumulative adapt stats
//	GET  /v1/model         canonical bundle bytes (save/export)
//	GET  /healthz          liveness + model summary
//	GET  /metrics          Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	mux.HandleFunc("POST /v1/stream/adapt", s.handleStreamAdapt)
	mux.HandleFunc("GET /v1/stream/stats", s.handleStreamStats)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type predictRequest struct {
	// Windows[i][t][s] is sensor s at timestep t of window i.
	Windows [][][]float64 `json:"windows"`
	// SourceOnly predicts with the source ensemble even when an adapted
	// target model exists (the no-adapt baseline).
	SourceOnly bool `json:"source_only,omitempty"`
}

type predictResponse struct {
	Predictions []int `json:"predictions"`
	Adapted     bool  `json:"adapted"`
}

type adaptResponse struct {
	Stats   model.AdaptStats `json:"stats"`
	Adapted bool             `json:"adapted"`
}

// httpError carries a status code out of a handler stage.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

// decodeWindows parses and bounds a JSON windows request. The body must be
// exactly one JSON value: trailing non-whitespace bytes (a concatenated
// second object, truncation garbage) fail the request instead of being
// silently ignored.
func (s *Server) decodeWindows(w http.ResponseWriter, r *http.Request, req *predictRequest) error {
	defer s.met.stage("decode")()
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBody)
	dec := json.NewDecoder(body)
	if err := dec.Decode(req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.opt.MaxBody)}
		}
		return &httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()}
	}
	if _, err := dec.Token(); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.opt.MaxBody)}
		}
		return &httpError{http.StatusBadRequest, "trailing data after JSON body"}
	}
	if len(req.Windows) == 0 {
		return &httpError{http.StatusBadRequest, "no windows in request"}
	}
	if len(req.Windows) > s.opt.MaxBatch {
		return &httpError{http.StatusRequestEntityTooLarge, fmt.Sprintf("batch of %d windows exceeds maximum %d", len(req.Windows), s.opt.MaxBatch)}
	}
	return nil
}

// responseRecorder tracks whether a handler has committed a response, so an
// error surfaced after the 200 header went out (e.g. the client hung up
// mid-body) is only counted, never rendered on top of the partial response.
type responseRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (r *responseRecorder) WriteHeader(code int) {
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

func (s *Server) encodeWindows(ws [][][]float64) ([]hdc.Vector, error) {
	defer s.met.stage("encode")()
	hvs, err := s.enc.EncodeBatch(ws, s.opt.Workers)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	return hvs, nil
}

func (s *Server) handlePredict(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := func() error {
		var req predictRequest
		if err := s.decodeWindows(w, r, &req); err != nil {
			return err
		}
		hvs, err := s.encodeWindows(req.Windows)
		if err != nil {
			return err
		}
		done := s.met.stage("infer")
		s.mu.RLock()
		var preds []int
		if req.SourceOnly {
			preds = s.model.PredictSourceBatch(hvs, s.opt.Workers)
		} else {
			preds = s.model.PredictBatch(hvs, s.opt.Workers)
		}
		adapted := s.model.Adapted()
		s.mu.RUnlock()
		done()
		return writeJSON(w, http.StatusOK, predictResponse{Predictions: preds, Adapted: adapted})
	}()
	s.finish(w, "predict", start, err)
}

func (s *Server) handleAdapt(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := func() error {
		var req predictRequest
		if err := s.decodeWindows(w, r, &req); err != nil {
			return err
		}
		hvs, err := s.encodeWindows(req.Windows)
		if err != nil {
			return err
		}
		done := s.met.stage("adapt")
		s.mu.Lock()
		stats, aerr := s.model.AdaptIncremental(hvs, s.opt.Workers)
		adapted := s.model.Adapted()
		s.mu.Unlock()
		done()
		if aerr != nil {
			return adaptError(aerr)
		}
		return writeJSON(w, http.StatusOK, adaptResponse{Stats: stats, Adapted: adapted})
	}()
	s.finish(w, "adapt", start, err)
}

// adaptError maps an adaptation failure to the right HTTP status: inputs
// that can never succeed (dimension mismatch, empty batch) are the caller's
// fault (400), an untrained model is a state conflict (409), anything else
// is a server fault (500).
func adaptError(err error) *httpError {
	switch {
	case errors.Is(err, model.ErrInvalidTargets):
		return &httpError{http.StatusBadRequest, err.Error()}
	case errors.Is(err, model.ErrNotTrained):
		return &httpError{http.StatusConflict, err.Error()}
	default:
		return &httpError{http.StatusInternalServerError, err.Error()}
	}
}

// streamAdaptResponse acknowledges an accepted streaming batch.
type streamAdaptResponse struct {
	Accepted   int `json:"accepted"`
	QueueDepth int `json:"queue_depth"`
}

// validateWindows rejects windows the encoder would fail on — fewer
// timesteps than the n-gram length, rows with the wrong sensor count —
// before they reach the streaming queue. The background worker coalesces
// windows from many requests into one encode batch, and EncodeBatch fails
// wholesale, so an unvalidated bad window would silently destroy other
// clients' already-accepted data.
func (s *Server) validateWindows(ws [][][]float64) error {
	for i, win := range ws {
		if len(win) < s.encfg.NGram {
			return &httpError{http.StatusBadRequest,
				fmt.Sprintf("window %d has %d timesteps, need at least %d (the n-gram length)", i, len(win), s.encfg.NGram)}
		}
		for t, row := range win {
			if len(row) != s.encfg.Sensors {
				return &httpError{http.StatusBadRequest,
					fmt.Sprintf("window %d timestep %d has %d sensors, want %d", i, t, len(row), s.encfg.Sensors)}
			}
		}
	}
	return nil
}

// handleStreamAdapt enqueues the request's windows on the streaming
// adaptation queue and returns immediately: 202 with the queue depth on
// success, 413 for a batch that could never fit, 429 when the queue is
// currently too full to hold the whole batch (backpressure — nothing is
// partially enqueued), 503 once shutdown has begun.
func (s *Server) handleStreamAdapt(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := func() error {
		var req predictRequest
		if err := s.decodeWindows(w, r, &req); err != nil {
			return err
		}
		if err := s.validateWindows(req.Windows); err != nil {
			return err
		}
		// A batch larger than the whole queue can never succeed, so a 429
		// ("retry later") would send a well-behaved client into an infinite
		// retry loop; reject it terminally instead.
		if len(req.Windows) > s.opt.StreamQueue {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch of %d windows exceeds stream queue capacity %d", len(req.Windows), s.opt.StreamQueue)}
		}
		depth, err := s.stream.Enqueue(req.Windows)
		switch {
		case errors.Is(err, stream.ErrQueueFull):
			return &httpError{http.StatusTooManyRequests,
				fmt.Sprintf("stream queue full (%d of %d windows queued); retry later", depth, s.opt.StreamQueue)}
		case errors.Is(err, stream.ErrClosed):
			return &httpError{http.StatusServiceUnavailable, "server is draining; stream ingest closed"}
		case err != nil:
			return &httpError{http.StatusBadRequest, err.Error()}
		}
		return writeJSON(w, http.StatusAccepted, streamAdaptResponse{Accepted: len(req.Windows), QueueDepth: depth})
	}()
	s.finish(w, "stream_adapt", start, err)
}

// handleStreamStats reports the streaming queue's counters.
func (s *Server) handleStreamStats(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := writeJSON(w, http.StatusOK, s.stream.Stats())
	s.finish(w, "stream_stats", start, err)
}

func (s *Server) handleModel(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	err := func() error {
		done := s.met.stage("export")
		var buf bytes.Buffer
		// Write lock: serializing flushes accumulator staging state.
		s.mu.Lock()
		b := pipeline.Bundle{Encoder: s.encfg, Model: s.model}
		_, werr := b.WriteTo(&buf)
		s.mu.Unlock()
		done()
		if werr != nil {
			return werr
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
		_, werr = w.Write(buf.Bytes())
		return werr
	}()
	s.finish(w, "model", start, err)
}

func (s *Server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	s.mu.RLock()
	adapted := s.model.Adapted()
	cfg := s.model.Config()
	s.mu.RUnlock()
	err := writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"adapted": adapted,
		"dim":     cfg.Dim,
		"classes": cfg.Classes,
	})
	s.finish(w, "healthz", start, err)
}

// handleMetrics renders the Prometheus exposition. It goes through the same
// responseRecorder/finish accounting as every other endpoint, so scrapes
// show up in the per-endpoint request counters (the scrape in progress is
// counted by the *next* one: finish runs after render).
func (s *Server) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &responseRecorder{ResponseWriter: rw}
	s.mu.RLock()
	adapted := s.model.Adapted()
	cfg := s.model.Config()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, adapted, cfg.Dim, cfg.Classes, s.stream.Stats())
	s.finish(w, "metrics", start, nil)
}

// finish records metrics for a request and renders the error — unless a
// response was already committed (then the error, typically a failed body
// write to a gone client, is only counted).
func (s *Server) finish(w *responseRecorder, endpoint string, start time.Time, err error) {
	s.met.observeRequest(endpoint, start, err != nil)
	if err == nil || w.wrote {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(errStatus(err))
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // nothing left to do on a failed error write
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}
