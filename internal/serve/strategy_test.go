package serve

import (
	"net/http"
	"strings"
	"testing"

	"go-arxiv/smore/internal/model"
)

// errEnvelope mirrors the wire shape of the uniform error body, decoded
// independently of the server-side structs so the JSON contract itself is
// what's pinned.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// wantError asserts status plus the envelope's machine code.
func wantError(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d", resp.StatusCode, status)
	}
	env := decodeBody[errEnvelope](t, resp)
	if env.Error.Code != code {
		t.Fatalf("error code %q, want %q (message: %q)", env.Error.Code, code, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Fatalf("error envelope for %q has an empty message", code)
	}
}

// TestErrorEnvelope walks one representative failure per error family and
// asserts every route renders the same {"error":{"code","message"}} body
// with the documented status and stable code.
func TestErrorEnvelope(t *testing.T) {
	_, ts, _, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 4, StreamQueue: 8})
	get := func(path string) *http.Response {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("invalid_json", func(t *testing.T) {
		wantError(t, post("/v1/predict", "{nope"), http.StatusBadRequest, codeInvalidJSON)
	})
	t.Run("trailing_data", func(t *testing.T) {
		wantError(t, post("/v1/adapt", `{"windows":[[[0,0]]]}{"again":1}`), http.StatusBadRequest, codeTrailingData)
	})
	t.Run("empty_batch", func(t *testing.T) {
		wantError(t, post("/v1/predict", `{"windows":[]}`), http.StatusBadRequest, codeEmptyBatch)
	})
	t.Run("batch_too_large", func(t *testing.T) {
		wantError(t, postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:5]}),
			http.StatusRequestEntityTooLarge, codeBatchTooLarge)
	})
	t.Run("bad_window", func(t *testing.T) {
		wantError(t, post("/v1/stream/adapt", `{"windows":[[[1,2,3]]]}`), http.StatusBadRequest, codeBadWindow)
	})
	t.Run("unknown_strategy", func(t *testing.T) {
		wantError(t, postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows[:2], Strategy: "margin+constant+nope"}),
			http.StatusBadRequest, codeUnknownStrategy)
	})
	t.Run("strategy_rejected_on_predict", func(t *testing.T) {
		wantError(t, postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:2], Strategy: "margin+constant+ema"}),
			http.StatusBadRequest, codeUnknownStrategy)
	})
	t.Run("model_not_found", func(t *testing.T) {
		wantError(t, get("/v1/models/ghost/stream/stats"), http.StatusNotFound, codeModelNotFound)
	})
	t.Run("invalid_model_name", func(t *testing.T) {
		wantError(t, get("/v1/models/.hidden"), http.StatusBadRequest, codeInvalidModelName)
	})
	t.Run("default_pinned", func(t *testing.T) {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/default", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusConflict, codeDefaultPinned)
	})
	t.Run("invalid_bundle", func(t *testing.T) {
		wantError(t, post("/v1/models/junk", "not a bundle"), http.StatusBadRequest, codeInvalidBundle)
	})
}

// TestAdaptStrategySelection pins the per-request strategy surface: the
// adapt route folds under the requested strategy, reports it in the
// response, the model keeps it for later requests, and /v1/models lists it.
func TestAdaptStrategySelection(t *testing.T) {
	_, ts, art, windows := testServer(t)

	// Default strategy is reported when none is requested.
	resp := postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows[:4]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt status %d", resp.StatusCode)
	}
	if got := decodeBody[adaptResponse](t, resp).Strategy; got != "margin+constant+bundle" {
		t.Fatalf("default adapt strategy %q", got)
	}

	// A requested strategy is applied, reported, and sticks on the model.
	resp = postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows[:4], Strategy: "entropy+anneal+ema"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt status %d", resp.StatusCode)
	}
	if got := decodeBody[adaptResponse](t, resp).Strategy; got != "entropy+anneal+ema" {
		t.Fatalf("adapt strategy %q, want entropy+anneal+ema", got)
	}
	if got := art.Model.Strategy().String(); got != "entropy+anneal+ema" {
		t.Fatalf("model strategy after adapt %q", got)
	}

	// The registry listing reports the per-model strategy.
	listResp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Models []modelInfo `json:"models"`
	}](t, listResp)
	if len(list.Models) != 1 || list.Models[0].Strategy != "entropy+anneal+ema" {
		t.Fatalf("models listing = %+v, want one entry with strategy entropy+anneal+ema", list.Models)
	}
}

// TestStreamAdaptStrategySelection pins that a stream request's strategy is
// installed before its windows are folded by the background worker.
func TestStreamAdaptStrategySelection(t *testing.T) {
	_, ts, art, windows := testServer(t)
	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:6], Strategy: "margin+constant+ema"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream adapt status %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitStreamDrained(t, ts.URL, 6)
	if got := art.Model.Strategy().String(); got != "margin+constant+ema" {
		t.Fatalf("model strategy after streamed fold %q, want margin+constant+ema", got)
	}
	if !art.Model.Adapted() {
		t.Fatal("streamed windows did not fold into an adapted model")
	}
	// A bad spec is rejected before anything is enqueued.
	wantError(t, postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:2], Strategy: "nope"}),
		http.StatusBadRequest, codeUnknownStrategy)
}

// TestUploadStrategyRoundTrip pins that a non-default strategy survives the
// serve-layer export/upload cycle (SME2 inside the bundle).
func TestUploadStrategyRoundTrip(t *testing.T) {
	_, ts, art, _ := testServer(t)
	strat, err := model.ParseStrategySpec("entropy+constant+bundle")
	if err != nil {
		t.Fatal(err)
	}
	art.Model.SetStrategy(strat)

	exp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Body.Close()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/clone", exp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d, want 201", resp.StatusCode)
	}
	listResp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Models []modelInfo `json:"models"`
	}](t, listResp)
	found := false
	for _, m := range list.Models {
		if m.Name == "clone" {
			found = true
			if m.Strategy != "entropy+constant+bundle" {
				t.Fatalf("uploaded clone strategy %q, want entropy+constant+bundle", m.Strategy)
			}
		}
	}
	if !found {
		t.Fatalf("uploaded model missing from listing: %+v", list.Models)
	}
}
