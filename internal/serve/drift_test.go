package serve

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/stream"
)

// shiftedWindows generates windows from a harshly distorted domain — same
// class signatures as the testArtifacts dataset (same Seed) but pushed far
// off the target distribution, so a streamed batch of them reads as drift.
func shiftedWindows(t *testing.T) [][][]float64 {
	t.Helper()
	ds, err := data.Generate(data.Config{
		Sensors: 2, Classes: 3, WindowLen: 16, PerClass: 8, Seed: 7,
		Domains: []data.Shift{{
			Name: "shifted", AmpScale: 0.2, Offset: 2.2, Phase: 1.6, NoiseStd: 0.4,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return data.Windows(ds.Domains[0])
}

// exportBytes fetches the canonical bundle bytes off the export route.
func exportBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// driftStats fetches the composite stream-stats body.
func driftStats(t *testing.T, url string) streamStatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stream/stats")
	if err != nil {
		t.Fatal(err)
	}
	return decodeBody[streamStatsResponse](t, resp)
}

// TestStreamRollbackWithoutCheckpoint pins the conflict path: before any
// drift spawn there is nothing to restore.
func TestStreamRollbackWithoutCheckpoint(t *testing.T) {
	_, ts, _, _ := testServer(t)
	resp := postJSON(t, ts.URL+"/v1/stream/rollback", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rollback without checkpoint: status %d, want 409", resp.StatusCode)
	}
	env := decodeBody[errorEnvelope](t, resp)
	if env.Error.Code != codeNoCheckpoint {
		t.Fatalf("error code %q, want %q", env.Error.Code, codeNoCheckpoint)
	}
}

// TestDriftSpawnStatsAndRollback drives the full serving-layer drift loop:
// phase-A streaming establishes the implicit first target and its similarity
// trajectory, a shifted phase-B batch spawns a second target, the stats and
// metrics surfaces report the transition, and POST /v1/stream/rollback
// restores the pre-drift model byte-identically.
func TestDriftSpawnStatsAndRollback(t *testing.T) {
	_, ts, _, windows := testServerOpts(t, Options{
		Workers: 2, MaxBatch: 64, StreamBatch: 8,
		DriftPolicy: stream.SpawnOnDrift{}, MaxTargets: 4,
	})

	// Phase A: three 8-window folds build target t0 and seed the EMA.
	phaseA := windows[:24]
	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: phaseA})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("phase A enqueue: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitStreamDrained(t, ts.URL, int64(len(phaseA)))

	st := driftStats(t, ts.URL)
	if st.TargetsSpawned != 0 || st.TargetsLive != 1 {
		t.Fatalf("phase A ended with %d spawns, %d live targets; want 0 and 1 (%+v)", st.TargetsSpawned, st.TargetsLive, st)
	}
	if !st.SimilarityValid {
		t.Fatalf("phase A left no similarity trajectory: %+v", st)
	}
	if st.HasCheckpoint {
		t.Fatal("checkpoint exists before any spawn")
	}
	preDrift := exportBytes(t, ts.URL)

	// Phase B: one strongly shifted batch. The drift check runs before the
	// fold, so the spawn checkpoint is exactly the phase-A state exported
	// above, and the shifted batch folds into the fresh target.
	phaseB := shiftedWindows(t)[:8]
	resp = postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: phaseB})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("phase B enqueue: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitStreamDrained(t, ts.URL, int64(len(phaseA)+len(phaseB)))

	st = driftStats(t, ts.URL)
	if st.TargetsSpawned != 1 || st.TargetsLive != 2 {
		t.Fatalf("phase B: %d spawns, %d live targets; want 1 and 2 (%+v)", st.TargetsSpawned, st.TargetsLive, st)
	}
	if !st.HasCheckpoint {
		t.Fatal("spawn left no checkpoint")
	}
	active := ""
	for _, ti := range st.Targets {
		if ti.Active {
			active = ti.Name
		}
	}
	if active == "t0" || active == "" {
		t.Fatalf("active target after drift = %q, want the freshly spawned one (%+v)", active, st.Targets)
	}

	// The drift transition must be visible on the Prometheus surface.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`smore_model_targets{model="default"} 2`,
		`smore_stream_targets_spawned_total{model="default"} 1`,
		`smore_stream_rollbacks_total{model="default"} 0`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Rollback restores the pre-drift bytes and resets the trajectory.
	resp = postJSON(t, ts.URL+"/v1/stream/rollback", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d", resp.StatusCode)
	}
	rb := decodeBody[map[string]any](t, resp)
	if live, _ := rb["targets_live"].(float64); live != 1 {
		t.Fatalf("rollback left %v live targets, want 1 (%v)", rb["targets_live"], rb)
	}
	if !bytes.Equal(exportBytes(t, ts.URL), preDrift) {
		t.Fatal("rollback did not restore the pre-drift bundle byte-identically")
	}
	st = driftStats(t, ts.URL)
	if st.SimilarityValid || st.FoldsOnTarget != 0 {
		t.Fatalf("rollback left trajectory state: %+v", st)
	}
	if st.Rollbacks != 1 {
		t.Fatalf("Rollbacks = %d, want 1", st.Rollbacks)
	}
	if st.TargetsSpawned != 1 {
		t.Fatalf("rollback clobbered cumulative spawn history: %+v", st)
	}
}

// TestStreamStatsKeepsDriftFieldsUnderNonePolicy pins that the default
// policy surfaces the drift fields without ever opening targets.
func TestStreamStatsKeepsDriftFieldsUnderNonePolicy(t *testing.T) {
	_, ts, _, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, StreamBatch: 4})
	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:12]})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitStreamDrained(t, ts.URL, 12)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := driftStats(t, ts.URL)
		if st.TargetsSpawned != 0 {
			t.Fatalf("none policy spawned a target: %+v", st)
		}
		if st.DriftPolicy == "none" && st.SimilarityValid && st.TargetsLive == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drift fields never settled under none policy: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
