package serve

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// metrics holds the server's request, per-stage latency, and registry
// counters. All counters are atomics so the hot handlers never contend on a
// lock, and the /metrics rendering is a consistent-enough snapshot for
// monitoring.
type metrics struct {
	endpoints map[string]*endpointMetrics
	stages    map[string]*stageMetrics

	// Registry lifecycle counters.
	uploads   atomic.Int64
	swaps     atomic.Int64
	evictions atomic.Int64
	deletes   atomic.Int64

	// overloadRejects counts requests turned away 429 by the in-flight
	// admission cap (Options.MaxInFlight).
	overloadRejects atomic.Int64
}

// endpointMetrics counts one HTTP endpoint's requests, errors, total
// wall-clock latency, and response writes that failed mid-flight (client
// gone before the body — including the error envelope itself — landed).
type endpointMetrics struct {
	requests    atomic.Int64
	errors      atomic.Int64
	nanos       atomic.Int64
	writeErrors atomic.Int64
}

// stageMetrics counts one processing stage's operations and cumulative
// latency, independent of which endpoint invoked it.
type stageMetrics struct {
	ops   atomic.Int64
	nanos atomic.Int64
}

func newMetrics() *metrics {
	m := &metrics{
		endpoints: map[string]*endpointMetrics{},
		stages:    map[string]*stageMetrics{},
	}
	for _, e := range []string{"predict", "adapt", "stream_adapt", "stream_stats", "stream_rollback",
		"checkpoint", "model", "models", "model_upload", "model_delete", "healthz", "metrics"} {
		m.endpoints[e] = &endpointMetrics{}
	}
	for _, s := range []string{"decode", "encode", "infer", "adapt", "export", "stream_encode", "fold", "rollback", "checkpoint"} {
		m.stages[s] = &stageMetrics{}
	}
	return m
}

// observeRequest records one finished request on an endpoint.
func (m *metrics) observeRequest(endpoint string, start time.Time, failed bool) {
	em := m.endpoints[endpoint]
	em.requests.Add(1)
	em.nanos.Add(int64(time.Since(start)))
	if failed {
		em.errors.Add(1)
	}
}

// observeWriteError records a response-body write that failed after the
// handler committed to a status — there is nothing left to send the client,
// so the failure is only counted.
func (m *metrics) observeWriteError(endpoint string) {
	m.endpoints[endpoint].writeErrors.Add(1)
}

// stage times one processing stage: call the returned func when the stage
// completes.
func (m *metrics) stage(name string) func() {
	start := time.Now()
	sm := m.stages[name]
	return func() {
		sm.ops.Add(1)
		sm.nanos.Add(int64(time.Since(start)))
	}
}

// render writes the counters in Prometheus text exposition format: the
// global endpoint/stage/registry counters, then one labeled series per
// registered model (infos arrives name-sorted), so the output is stable.
func (m *metrics) render(w io.Writer, infos []modelInfo) {
	fmt.Fprintf(w, "# HELP smore_requests_total Requests received per endpoint.\n")
	fmt.Fprintf(w, "# TYPE smore_requests_total counter\n")
	for _, e := range sortedKeys(m.endpoints) {
		fmt.Fprintf(w, "smore_requests_total{endpoint=%q} %d\n", e, m.endpoints[e].requests.Load())
	}
	fmt.Fprintf(w, "# HELP smore_request_errors_total Requests that returned a non-2xx status.\n")
	fmt.Fprintf(w, "# TYPE smore_request_errors_total counter\n")
	for _, e := range sortedKeys(m.endpoints) {
		fmt.Fprintf(w, "smore_request_errors_total{endpoint=%q} %d\n", e, m.endpoints[e].errors.Load())
	}
	fmt.Fprintf(w, "# HELP smore_response_write_errors_total Response writes that failed after the status was committed.\n")
	fmt.Fprintf(w, "# TYPE smore_response_write_errors_total counter\n")
	for _, e := range sortedKeys(m.endpoints) {
		fmt.Fprintf(w, "smore_response_write_errors_total{endpoint=%q} %d\n", e, m.endpoints[e].writeErrors.Load())
	}
	fmt.Fprintf(w, "# HELP smore_request_latency_seconds_total Cumulative request wall-clock time per endpoint.\n")
	fmt.Fprintf(w, "# TYPE smore_request_latency_seconds_total counter\n")
	for _, e := range sortedKeys(m.endpoints) {
		fmt.Fprintf(w, "smore_request_latency_seconds_total{endpoint=%q} %.9f\n",
			e, float64(m.endpoints[e].nanos.Load())/1e9)
	}
	fmt.Fprintf(w, "# HELP smore_stage_ops_total Completed operations per pipeline stage.\n")
	fmt.Fprintf(w, "# TYPE smore_stage_ops_total counter\n")
	for _, s := range sortedKeys(m.stages) {
		fmt.Fprintf(w, "smore_stage_ops_total{stage=%q} %d\n", s, m.stages[s].ops.Load())
	}
	fmt.Fprintf(w, "# HELP smore_stage_latency_seconds_total Cumulative time spent per pipeline stage.\n")
	fmt.Fprintf(w, "# TYPE smore_stage_latency_seconds_total counter\n")
	for _, s := range sortedKeys(m.stages) {
		fmt.Fprintf(w, "smore_stage_latency_seconds_total{stage=%q} %.9f\n",
			s, float64(m.stages[s].nanos.Load())/1e9)
	}

	fmt.Fprintf(w, "# HELP smore_models Models currently registered.\n")
	fmt.Fprintf(w, "# TYPE smore_models gauge\n")
	fmt.Fprintf(w, "smore_models %d\n", len(infos))
	fmt.Fprintf(w, "# HELP smore_model_uploads_total Bundles installed through the registry (creates plus swaps).\n")
	fmt.Fprintf(w, "# TYPE smore_model_uploads_total counter\n")
	fmt.Fprintf(w, "smore_model_uploads_total %d\n", m.uploads.Load())
	fmt.Fprintf(w, "# HELP smore_model_swaps_total Uploads that hot-swapped an existing model.\n")
	fmt.Fprintf(w, "# TYPE smore_model_swaps_total counter\n")
	fmt.Fprintf(w, "smore_model_swaps_total %d\n", m.swaps.Load())
	fmt.Fprintf(w, "# HELP smore_model_evictions_total Models displaced by LRU eviction.\n")
	fmt.Fprintf(w, "# TYPE smore_model_evictions_total counter\n")
	fmt.Fprintf(w, "smore_model_evictions_total %d\n", m.evictions.Load())
	fmt.Fprintf(w, "# HELP smore_model_deletes_total Models removed by DELETE.\n")
	fmt.Fprintf(w, "# TYPE smore_model_deletes_total counter\n")
	fmt.Fprintf(w, "smore_model_deletes_total %d\n", m.deletes.Load())
	fmt.Fprintf(w, "# HELP smore_overload_rejects_total Requests rejected 429 by the in-flight admission cap.\n")
	fmt.Fprintf(w, "# TYPE smore_overload_rejects_total counter\n")
	fmt.Fprintf(w, "smore_overload_rejects_total %d\n", m.overloadRejects.Load())

	fmt.Fprintf(w, "# HELP smore_model_adapted Whether the served ensemble has an adapted target model.\n")
	fmt.Fprintf(w, "# TYPE smore_model_adapted gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_model_adapted{model=%q} %d\n", mi.Name, b2i(mi.Adapted))
	}
	fmt.Fprintf(w, "# HELP smore_model_dim Hypervector dimension of the served model.\n")
	fmt.Fprintf(w, "# TYPE smore_model_dim gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_model_dim{model=%q} %d\n", mi.Name, mi.Dim)
	}
	fmt.Fprintf(w, "# HELP smore_model_classes Class count of the served model.\n")
	fmt.Fprintf(w, "# TYPE smore_model_classes gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_model_classes{model=%q} %d\n", mi.Name, mi.Classes)
	}

	fmt.Fprintf(w, "# HELP smore_stream_queue_depth Windows waiting in the streaming adaptation queue.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_queue_depth gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_queue_depth{model=%q} %d\n", mi.Name, mi.Stream.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP smore_stream_queue_capacity Configured streaming queue capacity.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_queue_capacity gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_queue_capacity{model=%q} %d\n", mi.Name, mi.Stream.Capacity)
	}
	fmt.Fprintf(w, "# HELP smore_stream_in_flight Windows taken by the adapter but not yet folded.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_in_flight gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_in_flight{model=%q} %d\n", mi.Name, mi.Stream.InFlight)
	}
	fmt.Fprintf(w, "# HELP smore_stream_windows_enqueued_total Windows accepted onto the streaming queue.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_windows_enqueued_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_windows_enqueued_total{model=%q} %d\n", mi.Name, mi.Stream.Enqueued)
	}
	fmt.Fprintf(w, "# HELP smore_stream_windows_dropped_total Windows rejected with queue-full backpressure.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_windows_dropped_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_windows_dropped_total{model=%q} %d\n", mi.Name, mi.Stream.Dropped)
	}
	fmt.Fprintf(w, "# HELP smore_stream_batches_folded_total Micro-batches folded into the model.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_batches_folded_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_batches_folded_total{model=%q} %d\n", mi.Name, mi.Stream.BatchesFolded)
	}
	fmt.Fprintf(w, "# HELP smore_stream_windows_folded_total Windows folded into the model.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_windows_folded_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_windows_folded_total{model=%q} %d\n", mi.Name, mi.Stream.WindowsFolded)
	}
	fmt.Fprintf(w, "# HELP smore_stream_errors_total Streaming batches dropped by a failed stage.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_errors_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_errors_total{model=%q,stage=\"encode\"} %d\n", mi.Name, mi.Stream.EncodeErrors)
		fmt.Fprintf(w, "smore_stream_errors_total{model=%q,stage=\"fold\"} %d\n", mi.Name, mi.Stream.FoldErrors)
	}
	fmt.Fprintf(w, "# HELP smore_stream_windows_lost_total Accepted windows discarded by a failed encode or fold.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_windows_lost_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_windows_lost_total{model=%q} %d\n", mi.Name, mi.Stream.WindowsLost)
	}
	fmt.Fprintf(w, "# HELP smore_stream_pseudo_labels_total Pseudo-labels applied by streamed folds.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_pseudo_labels_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_pseudo_labels_total{model=%q} %d\n", mi.Name, mi.Stream.Adapt.PseudoLabels)
	}

	fmt.Fprintf(w, "# HELP smore_model_targets Live target domains held by the served ensemble.\n")
	fmt.Fprintf(w, "# TYPE smore_model_targets gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_model_targets{model=%q} %d\n", mi.Name, len(mi.Targets))
	}
	fmt.Fprintf(w, "# HELP smore_stream_similarity_ema Batch-vs-active-target similarity EMA (0 until the first measurement).\n")
	fmt.Fprintf(w, "# TYPE smore_stream_similarity_ema gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_similarity_ema{model=%q} %.6f\n", mi.Name, mi.Stream.SimilarityEMA)
	}
	fmt.Fprintf(w, "# HELP smore_stream_folds_on_target Successful folds since the active target last changed.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_folds_on_target gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_folds_on_target{model=%q} %d\n", mi.Name, mi.Stream.FoldsOnTarget)
	}
	fmt.Fprintf(w, "# HELP smore_stream_targets_spawned_total Target domains opened by the drift policy.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_targets_spawned_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_targets_spawned_total{model=%q} %d\n", mi.Name, mi.Stream.TargetsSpawned)
	}
	fmt.Fprintf(w, "# HELP smore_stream_targets_retired_total Target domains retired past the MaxTargets bound.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_targets_retired_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_targets_retired_total{model=%q} %d\n", mi.Name, mi.Stream.TargetsRetired)
	}
	fmt.Fprintf(w, "# HELP smore_stream_rollbacks_total Checkpoint restores served on the rollback route.\n")
	fmt.Fprintf(w, "# TYPE smore_stream_rollbacks_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_stream_rollbacks_total{model=%q} %d\n", mi.Name, mi.Rollback)
	}

	fmt.Fprintf(w, "# HELP smore_checkpoint_generation Latest durable checkpoint generation persisted for the model (0 before the first).\n")
	fmt.Fprintf(w, "# TYPE smore_checkpoint_generation gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_checkpoint_generation{model=%q} %d\n", mi.Name, mi.CheckpointGen)
	}
	fmt.Fprintf(w, "# HELP smore_checkpoints_total Durable checkpoints persisted for the model.\n")
	fmt.Fprintf(w, "# TYPE smore_checkpoints_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_checkpoints_total{model=%q} %d\n", mi.Name, mi.Checkpoints)
	}
	fmt.Fprintf(w, "# HELP smore_checkpoint_failures_total Durable checkpoint attempts that failed to persist.\n")
	fmt.Fprintf(w, "# TYPE smore_checkpoint_failures_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_checkpoint_failures_total{model=%q} %d\n", mi.Name, mi.CheckpointFailures)
	}
	fmt.Fprintf(w, "# HELP smore_breaker_state Stream-fold circuit state: 0 closed, 1 half-open, 2 open.\n")
	fmt.Fprintf(w, "# TYPE smore_breaker_state gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_breaker_state{model=%q} %d\n", mi.Name, breakerStateValue(mi.Breaker))
	}
	fmt.Fprintf(w, "# HELP smore_breaker_opens_total Stream-fold circuit transitions to open.\n")
	fmt.Fprintf(w, "# TYPE smore_breaker_opens_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "smore_breaker_opens_total{model=%q} %d\n", mi.Name, mi.BreakerOpens)
	}
}

// breakerStateValue maps a breaker state name to its gauge value.
func breakerStateValue(state string) int {
	switch state {
	case "open":
		return 2
	case "half_open":
		return 1
	default:
		return 0
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
