package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
)

// testArtifacts trains a small deterministic pipeline and returns the
// artifacts plus raw target windows for request bodies.
func testArtifacts(t *testing.T) (*pipeline.Artifacts, [][][]float64) {
	t.Helper()
	cfg := pipeline.Config{
		Encoder: encode.Config{
			Dim: 512, Sensors: 2, Levels: 8, NGram: 2, Min: -3, Max: 3, Seed: 7,
		},
		Model: model.Config{
			Dim: 512, Classes: 3, RetrainEpochs: 1, AdaptEpochs: 3,
			Confidence: 0.005, AdaptRate: 2,
		},
		Data: data.Config{
			Sensors: 2, Classes: 3, WindowLen: 16, PerClass: 8, Seed: 7,
			Domains: pipeline.DefaultDomains(1),
		},
		TrainFrac: 0.75,
		Workers:   2,
	}
	art, err := pipeline.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.Generate(cfg.Data)
	if err != nil {
		t.Fatal(err)
	}
	return art, data.Windows(ds.Domains[len(ds.Domains)-1])
}

func testServer(t *testing.T) (*Server, *httptest.Server, *pipeline.Artifacts, [][][]float64) {
	t.Helper()
	art, windows := testArtifacts(t)
	srv, err := New(art.Bundle(), Options{Workers: 2, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, art, windows
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPredictMatchesDirectBatch(t *testing.T) {
	_, ts, art, windows := testServer(t)
	batch := windows[:10]
	resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	got := decodeBody[predictResponse](t, resp)
	hvs, err := art.Encoder.EncodeBatch(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := art.Model.PredictBatch(hvs, 1)
	if len(got.Predictions) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(got.Predictions), len(want))
	}
	for i := range want {
		if got.Predictions[i] != want[i] {
			t.Fatalf("prediction %d: served %d, direct %d", i, got.Predictions[i], want[i])
		}
	}
	if got.Adapted {
		t.Fatal("server reports adapted before any /v1/adapt call")
	}
}

func TestAdaptThenPredictUsesAdaptedModel(t *testing.T) {
	_, ts, art, windows := testServer(t)
	resp := postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt status %d", resp.StatusCode)
	}
	ar := decodeBody[adaptResponse](t, resp)
	if !ar.Adapted {
		t.Fatal("adapt response does not report an adapted model")
	}
	if ar.Stats.PseudoLabels == 0 {
		t.Fatal("adaptation applied no pseudo-labels")
	}

	// The served predictions must now match a direct AdaptIncremental on an
	// identical copy of the model.
	ref, refWindows := testArtifacts(t)
	hvs, err := ref.Encoder.EncodeBatch(refWindows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Model.AdaptIncremental(hvs, 1); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:8]})
	got := decodeBody[predictResponse](t, resp)
	if !got.Adapted {
		t.Fatal("predict response does not report the adapted model")
	}
	queryHVs, err := art.Encoder.EncodeBatch(windows[:8], 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Model.PredictBatch(queryHVs, 1)
	for i := range want {
		if got.Predictions[i] != want[i] {
			t.Fatalf("post-adapt prediction %d: served %d, direct %d", i, got.Predictions[i], want[i])
		}
	}

	// A second incremental batch must keep working.
	resp = postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows[:8]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second adapt status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestModelExportRoundTrips checks the GET /v1/model contract: the exported
// bytes are a loadable bundle whose predictions are byte-identical to the
// served model's, and exporting is canonical (two exports are identical).
func TestModelExportRoundTrips(t *testing.T) {
	_, ts, art, windows := testServer(t)
	get := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/model")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
			t.Fatalf("model content type %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	first := get()
	if !bytes.Equal(first, get()) {
		t.Fatal("two model exports differ: export is not canonical")
	}
	b, err := pipeline.ReadBundle(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	hvs, err := art.Encoder.EncodeBatch(windows[:10], 1)
	if err != nil {
		t.Fatal(err)
	}
	want := art.Model.PredictBatch(hvs, 1)
	got := b.Model.PredictBatch(hvs, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d: exported model %d, served model %d", i, got[i], want[i])
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts, _, windows := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[map[string]any](t, resp)
	if h["status"] != "ok" {
		t.Fatalf("healthz status %v", h["status"])
	}
	if h["dim"].(float64) != 512 {
		t.Fatalf("healthz dim %v", h["dim"])
	}

	// Drive one predict so the counters move, then scrape.
	postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:2]}).Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`smore_requests_total{endpoint="predict"} 1`,
		`smore_request_errors_total{endpoint="predict"} 0`,
		`smore_stage_ops_total{stage="encode"} 1`,
		`smore_stage_ops_total{stage="infer"} 1`,
		"smore_model_adapted 0",
		"smore_model_dim 512",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if !strings.Contains(text, "smore_stage_latency_seconds_total") {
		t.Error("metrics output missing per-stage latency counters")
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts, _, windows := testServer(t)
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"bad json", "POST", "/v1/predict", "{nope", http.StatusBadRequest},
		{"empty windows", "POST", "/v1/predict", `{"windows":[]}`, http.StatusBadRequest},
		{"ragged window", "POST", "/v1/predict", `{"windows":[[[0.1],[0.2]]]}`, http.StatusBadRequest},
		{"short window", "POST", "/v1/predict", `{"windows":[[[0.1,0.2]]]}`, http.StatusBadRequest},
		{"bad json adapt", "POST", "/v1/adapt", "{nope", http.StatusBadRequest},
		{"predict wrong method", "GET", "/v1/predict", "", http.StatusMethodNotAllowed},
		{"model wrong method", "POST", "/v1/model", "{}", http.StatusMethodNotAllowed},
		{"unknown route", "GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, ts.URL+tt.path, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tt.status)
			}
		})
	}

	// Oversized batch → 413.
	big := predictRequest{Windows: make([][][]float64, 65)}
	for i := range big.Windows {
		big.Windows[i] = windows[0]
	}
	resp := postJSON(t, ts.URL+"/v1/predict", big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d, want 413", resp.StatusCode)
	}
}

// TestConcurrentPredictAndAdapt hammers the server with mixed traffic; run
// under -race it proves the lock discipline around the shared ensemble.
func TestConcurrentPredictAndAdapt(t *testing.T) {
	_, ts, _, windows := testServer(t)
	done := make(chan error, 8)
	for w := range 8 {
		go func(w int) {
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := range 6 {
				path := "/v1/predict"
				if w == 0 && i%2 == 1 {
					path = "/v1/adapt"
				}
				lo := rng.IntN(len(windows) - 2)
				raw, err := json.Marshal(predictRequest{Windows: windows[lo : lo+2]})
				if err != nil {
					done <- err
					return
				}
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("%s returned %d", path, resp.StatusCode)
					return
				}
			}
			done <- nil
		}(w)
	}
	for range 8 {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
