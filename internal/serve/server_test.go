package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/stream"
)

// testArtifacts trains a small deterministic pipeline and returns the
// artifacts plus raw target windows for request bodies.
func testArtifacts(t *testing.T) (*pipeline.Artifacts, [][][]float64) {
	t.Helper()
	cfg := pipeline.Config{
		Encoder: encode.Config{
			Dim: 512, Sensors: 2, Levels: 8, NGram: 2, Min: -3, Max: 3, Seed: 7,
		},
		Model: model.Config{
			Dim: 512, Classes: 3, RetrainEpochs: 1, AdaptEpochs: 3,
			Confidence: 0.005, AdaptRate: 2,
		},
		Data: data.Config{
			Sensors: 2, Classes: 3, WindowLen: 16, PerClass: 8, Seed: 7,
			Domains: pipeline.DefaultDomains(1),
		},
		TrainFrac: 0.75,
		Workers:   2,
	}
	art, err := pipeline.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.Generate(cfg.Data)
	if err != nil {
		t.Fatal(err)
	}
	return art, data.Windows(ds.Domains[len(ds.Domains)-1])
}

func testServer(t *testing.T) (*Server, *httptest.Server, *pipeline.Artifacts, [][][]float64) {
	return testServerOpts(t, Options{Workers: 2, MaxBatch: 64})
}

func testServerOpts(t *testing.T, opt Options) (*Server, *httptest.Server, *pipeline.Artifacts, [][][]float64) {
	t.Helper()
	art, windows := testArtifacts(t)
	srv, err := New(art.Bundle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv, ts, art, windows
}

// waitStreamDrained polls the stats endpoint until the queue is empty, no
// fold is in flight, and the given number of windows has been folded.
func waitStreamDrained(t *testing.T, url string, wantFolded int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/stream/stats")
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[stream.Stats](t, resp)
		if st.Drained() && st.WindowsFolded == wantFolded {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream never drained: %+v (want %d windows folded)", st, wantFolded)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPredictMatchesDirectBatch(t *testing.T) {
	_, ts, art, windows := testServer(t)
	batch := windows[:10]
	resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	got := decodeBody[predictResponse](t, resp)
	hvs, err := art.Encoder.EncodeBatch(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := art.Model.PredictBatch(hvs, 1)
	if len(got.Predictions) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(got.Predictions), len(want))
	}
	for i := range want {
		if got.Predictions[i] != want[i] {
			t.Fatalf("prediction %d: served %d, direct %d", i, got.Predictions[i], want[i])
		}
	}
	if got.Adapted {
		t.Fatal("server reports adapted before any /v1/adapt call")
	}
}

func TestAdaptThenPredictUsesAdaptedModel(t *testing.T) {
	_, ts, art, windows := testServer(t)
	resp := postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt status %d", resp.StatusCode)
	}
	ar := decodeBody[adaptResponse](t, resp)
	if !ar.Adapted {
		t.Fatal("adapt response does not report an adapted model")
	}
	if ar.Stats.PseudoLabels == 0 {
		t.Fatal("adaptation applied no pseudo-labels")
	}

	// The served predictions must now match a direct AdaptIncremental on an
	// identical copy of the model.
	ref, refWindows := testArtifacts(t)
	hvs, err := ref.Encoder.EncodeBatch(refWindows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Model.AdaptIncremental(hvs, 1); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:8]})
	got := decodeBody[predictResponse](t, resp)
	if !got.Adapted {
		t.Fatal("predict response does not report the adapted model")
	}
	queryHVs, err := art.Encoder.EncodeBatch(windows[:8], 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Model.PredictBatch(queryHVs, 1)
	for i := range want {
		if got.Predictions[i] != want[i] {
			t.Fatalf("post-adapt prediction %d: served %d, direct %d", i, got.Predictions[i], want[i])
		}
	}

	// A second incremental batch must keep working.
	resp = postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows[:8]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second adapt status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestModelExportRoundTrips checks the GET /v1/model contract: the exported
// bytes are a loadable bundle whose predictions are byte-identical to the
// served model's, and exporting is canonical (two exports are identical).
func TestModelExportRoundTrips(t *testing.T) {
	_, ts, art, windows := testServer(t)
	get := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/model")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
			t.Fatalf("model content type %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	first := get()
	if !bytes.Equal(first, get()) {
		t.Fatal("two model exports differ: export is not canonical")
	}
	b, err := pipeline.ReadBundle(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	hvs, err := art.Encoder.EncodeBatch(windows[:10], 1)
	if err != nil {
		t.Fatal(err)
	}
	want := art.Model.PredictBatch(hvs, 1)
	got := b.Model.PredictBatch(hvs, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d: exported model %d, served model %d", i, got[i], want[i])
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts, _, windows := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[map[string]any](t, resp)
	if h["status"] != "ok" {
		t.Fatalf("healthz status %v", h["status"])
	}
	if h["dim"].(float64) != 512 {
		t.Fatalf("healthz dim %v", h["dim"])
	}

	// Drive one predict so the counters move, then scrape.
	postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:2]}).Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`smore_requests_total{endpoint="predict"} 1`,
		`smore_request_errors_total{endpoint="predict"} 0`,
		`smore_stage_ops_total{stage="encode"} 1`,
		`smore_stage_ops_total{stage="infer"} 1`,
		`smore_model_adapted{model="default"} 0`,
		`smore_model_dim{model="default"} 512`,
		"smore_models 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if !strings.Contains(text, "smore_stage_latency_seconds_total") {
		t.Error("metrics output missing per-stage latency counters")
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts, _, windows := testServer(t)
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"bad json", "POST", "/v1/predict", "{nope", http.StatusBadRequest},
		{"empty windows", "POST", "/v1/predict", `{"windows":[]}`, http.StatusBadRequest},
		{"ragged window", "POST", "/v1/predict", `{"windows":[[[0.1],[0.2]]]}`, http.StatusBadRequest},
		{"short window", "POST", "/v1/predict", `{"windows":[[[0.1,0.2]]]}`, http.StatusBadRequest},
		{"bad json adapt", "POST", "/v1/adapt", "{nope", http.StatusBadRequest},
		{"predict wrong method", "GET", "/v1/predict", "", http.StatusMethodNotAllowed},
		{"model wrong method", "POST", "/v1/model", "{}", http.StatusMethodNotAllowed},
		{"unknown route", "GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, ts.URL+tt.path, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tt.status)
			}
		})
	}

	// Oversized batch → 413.
	big := predictRequest{Windows: make([][][]float64, 65)}
	for i := range big.Windows {
		big.Windows[i] = windows[0]
	}
	resp := postJSON(t, ts.URL+"/v1/predict", big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d, want 413", resp.StatusCode)
	}
}

// TestConcurrentPredictAndAdapt hammers the server with mixed traffic; run
// under -race it proves the lock discipline around the shared ensemble.
func TestConcurrentPredictAndAdapt(t *testing.T) {
	_, ts, _, windows := testServer(t)
	done := make(chan error, 8)
	for w := range 8 {
		go func(w int) {
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := range 6 {
				path := "/v1/predict"
				if w == 0 && i%2 == 1 {
					path = "/v1/adapt"
				}
				lo := rng.IntN(len(windows) - 2)
				raw, err := json.Marshal(predictRequest{Windows: windows[lo : lo+2]})
				if err != nil {
					done <- err
					return
				}
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("%s returned %d", path, resp.StatusCode)
					return
				}
			}
			done <- nil
		}(w)
	}
	for range 8 {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamAdaptFoldsInBackground checks the streaming happy path: enqueue
// returns 202 immediately, the background adapter folds the windows, and the
// resulting model matches a direct AdaptIncremental of the same batch.
func TestStreamAdaptFoldsInBackground(t *testing.T) {
	// StreamBatch ≥ the posted batch and a single Enqueue ⇒ exactly one
	// fold of exactly these windows, so the model is reproducible.
	_, ts, art, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, StreamBatch: 64})
	batch := windows[:12]
	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: batch})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream adapt status %d, want 202", resp.StatusCode)
	}
	ack := decodeBody[streamAdaptResponse](t, resp)
	if ack.Accepted != 12 {
		t.Fatalf("accepted %d windows, want 12", ack.Accepted)
	}
	waitStreamDrained(t, ts.URL, 12)

	resp, err := http.Get(ts.URL + "/v1/stream/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[stream.Stats](t, resp)
	if st.BatchesFolded != 1 || st.Enqueued != 12 || st.Dropped != 0 {
		t.Fatalf("stats %+v: want exactly one 12-window fold, no drops", st)
	}
	if st.Adapt.PseudoLabels == 0 {
		t.Fatal("streamed fold applied no pseudo-labels")
	}

	// Served predictions must now match a reference model folded once with
	// the identical batch.
	ref, refWindows := testArtifacts(t)
	refHVs, err := ref.Encoder.EncodeBatch(refWindows[:12], 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Model.AdaptIncremental(refHVs, 1); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:8]})
	got := decodeBody[predictResponse](t, resp)
	if !got.Adapted {
		t.Fatal("predict does not report the streamed-in adapted model")
	}
	queryHVs, err := art.Encoder.EncodeBatch(windows[:8], 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Model.PredictBatch(queryHVs, 1)
	for i := range want {
		if got.Predictions[i] != want[i] {
			t.Fatalf("post-stream prediction %d: served %d, direct %d", i, got.Predictions[i], want[i])
		}
	}
}

// TestStreamAdaptBackpressure is the acceptance test for queue-full
// behavior: a batch the queue could never hold is rejected terminally
// (413), a batch that only *currently* does not fit returns 429 immediately
// (nothing is silently dropped or blocked), and the queue keeps accepting
// once drained.
func TestStreamAdaptBackpressure(t *testing.T) {
	srv, ts, _, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, StreamQueue: 2, StreamBatch: 1})

	// Larger than the whole queue ⇒ can never fit ⇒ terminal 413, not a
	// retry-later signal, and not a counted queue drop.
	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:3]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("never-fitting stream adapt status %d, want 413", resp.StatusCode)
	}
	if st := srv.StreamStats(); st.Dropped != 0 || st.Enqueued != 0 {
		t.Fatalf("stats %+v: a 413 must not touch the queue counters", st)
	}

	// Genuine transient fullness: hold the default instance's fold mutex so
	// the worker blocks in its fold, let it take one window in-flight, fill
	// the queue to capacity, and then a batch that would fit an empty queue
	// gets 429.
	def := srv.reg.def.Load()
	def.mu.Lock()
	unlock := sync.OnceFunc(def.mu.Unlock)
	defer unlock()
	resp = postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:1]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first stream adapt status %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.StreamStats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up the gated window: %+v", srv.StreamStats())
		}
		time.Sleep(time.Millisecond)
	}
	resp = postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[1:3]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling stream adapt status %d, want 202", resp.StatusCode)
	}
	start := time.Now()
	resp = postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[3:4]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue stream adapt status %d, want 429", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("429 took %v: a full queue must reject immediately, not block", elapsed)
	}
	if st := srv.StreamStats(); st.Dropped != 1 {
		t.Fatalf("stats %+v: the rejected window must count as 1 drop", st)
	}

	// Release the fold; everything accepted must drain and fold.
	unlock()
	waitStreamDrained(t, ts.URL, 3)
}

// TestStreamAdaptRejectsMalformedWindows checks that windows the encoder
// would choke on are 400-rejected before enqueueing: the background worker
// coalesces many requests into one encode batch, so a bad window that got a
// 202 would silently destroy other clients' accepted windows.
func TestStreamAdaptRejectsMalformedWindows(t *testing.T) {
	srv, ts, _, windows := testServer(t)
	bad := [][][]float64{
		{{0.1, 0.2}},                // 1 timestep < ngram 2
		{{0.1}, {0.2}},              // wrong sensor count
		{{0.1, 0.2}, {0.3}},         // ragged
		{{0.1, 0.2}, {0.3, 0.4, 5}}, // too many sensors
	}
	for i, win := range bad {
		resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: [][][]float64{windows[0], win}})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed window %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if st := srv.StreamStats(); st.Enqueued != 0 {
		t.Fatalf("stats %+v: rejected batches must not be partially enqueued", st)
	}
}

// TestDecodeRejectsTrailingGarbage pins the fix for bodies with bytes after
// the JSON object: they must 400 instead of silently succeeding.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	_, ts, _, windows := testServer(t)
	raw, err := json.Marshal(predictRequest{Windows: windows[:1]})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/predict", "/v1/adapt", "/v1/stream/adapt"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(append(raw[:len(raw):len(raw)], "junk"...)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with trailing garbage: status %d, want 400", path, resp.StatusCode)
		}
		resp, err = http.Post(ts.URL+path, "application/json", bytes.NewReader(append(raw[:len(raw):len(raw)], " \n\t"...)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			t.Errorf("%s with trailing whitespace: status %d, want success", path, resp.StatusCode)
		}
	}
}

// TestAdaptErrorMapping pins the validation/conflict split on adaptation
// failures.
func TestAdaptErrorMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
	}{
		{fmt.Errorf("%w: target 0 has dimension 64, model wants 512", model.ErrInvalidTargets), http.StatusBadRequest},
		{fmt.Errorf("%w: no target samples", model.ErrInvalidTargets), http.StatusBadRequest},
		{fmt.Errorf("%w: Adapt before Train", model.ErrNotTrained), http.StatusConflict},
		{errors.New("disk caught fire"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := adaptError(c.err); got.status != c.status {
			t.Errorf("adaptError(%v) status %d, want %d", c.err, got.status, c.status)
		}
	}
}

// TestMetricsAndHealthzAreCounted checks that scraping and health probes go
// through the same per-endpoint accounting as the data-plane endpoints.
func TestMetricsAndHealthzAreCounted(t *testing.T) {
	_, ts, _, _ := testServer(t)
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`smore_requests_total{endpoint="healthz"} 1`,
		`smore_requests_total{endpoint="metrics"} 1`, // the first scrape; this one commits after render
		`smore_stream_queue_depth{model="default"} 0`,
		`smore_stream_queue_capacity{model="default"} 4096`,
		`smore_stream_windows_enqueued_total{model="default"} 0`,
		`smore_stream_errors_total{model="default",stage="encode"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestConcurrentStreamPredictExport hammers the server with mixed streaming,
// prediction, and export traffic. Run under -race it proves the lock
// discipline: every exported bundle must be fully decodable (never a
// half-folded model) and every prediction batch well-formed.
func TestConcurrentStreamPredictExport(t *testing.T) {
	srv, ts, _, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, StreamQueue: 256, StreamBatch: 8})
	classes := srv.reg.def.Load().model.Config().Classes
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for w := range 4 { // streaming producers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 1))
			for range 10 {
				lo := rng.IntN(len(windows) - 4)
				raw, _ := json.Marshal(predictRequest{Windows: windows[lo : lo+4]})
				resp, err := http.Post(ts.URL+"/v1/stream/adapt", "application/json", bytes.NewReader(raw))
				if err != nil {
					report(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusTooManyRequests {
					report(fmt.Errorf("stream adapt returned %d", resp.StatusCode))
					return
				}
			}
		}(w)
	}
	for w := range 4 { // prediction readers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 2))
			for range 10 {
				lo := rng.IntN(len(windows) - 3)
				raw, _ := json.Marshal(predictRequest{Windows: windows[lo : lo+3]})
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(raw))
				if err != nil {
					report(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					report(fmt.Errorf("predict returned %d", resp.StatusCode))
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					report(fmt.Errorf("predict body: %w", err))
					return
				}
				if len(pr.Predictions) != 3 {
					report(fmt.Errorf("predict returned %d predictions, want 3", len(pr.Predictions)))
					return
				}
				for _, p := range pr.Predictions {
					if p < 0 || p >= classes {
						report(fmt.Errorf("prediction %d outside [0,%d)", p, classes))
						return
					}
				}
			}
		}(w)
	}
	for range 2 { // model exporters
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 8 {
				resp, err := http.Get(ts.URL + "/v1/model")
				if err != nil {
					report(err)
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					report(fmt.Errorf("model body: %w", err))
					return
				}
				if _, err := pipeline.ReadBundle(bytes.NewReader(raw)); err != nil {
					report(fmt.Errorf("exported bundle is not decodable mid-stream: %w", err))
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Everything accepted must eventually fold, and the folded model must
	// still export cleanly after the dust settles.
	st := srv.StreamStats()
	waitStreamDrained(t, ts.URL, st.Enqueued)
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.ReadBundle(bytes.NewReader(raw)); err != nil {
		t.Fatalf("post-drain export not decodable: %v", err)
	}
}
