package serve

// Stable machine-readable error codes, one per distinct failure the API can
// render in its error envelope. Codes are part of the API contract: clients
// switch on them instead of parsing messages, so existing codes must never
// be renamed.
const (
	codeInvalidJSON      = "invalid_json"       // body is not valid JSON
	codeTrailingData     = "trailing_data"      // bytes after the JSON/bundle body
	codeBodyTooLarge     = "body_too_large"     // body exceeds MaxBody
	codeEmptyBatch       = "empty_batch"        // no windows in request
	codeBatchTooLarge    = "batch_too_large"    // more windows than MaxBatch/queue capacity
	codeBadWindow        = "bad_window"         // window shape the encoder rejects
	codeInvalidTargets   = "invalid_targets"    // adapt batch the model rejects
	codeNotTrained       = "not_trained"        // model has no trained source domains
	codeUnknownStrategy  = "unknown_strategy"   // unregistered adaptation-strategy spec
	codeInvalidConfig    = "invalid_config"     // bundle carries an invalid model config
	codeInvalidBundle    = "invalid_bundle"     // undecodable/untrained bundle payload
	codeQueueFull        = "queue_full"         // transient streaming backpressure
	codeDraining         = "draining"           // shutdown in progress
	codeInvalidModelName = "invalid_model_name" // malformed registry name
	codeModelNotFound    = "model_not_found"    // unknown registry name
	codeRegistryFull     = "registry_full"      // MaxModels reached, nothing evictable
	codeDefaultPinned    = "default_pinned"     // DELETE on the pinned default model
	codeNoCheckpoint     = "no_checkpoint"      // rollback with no drift checkpoint to restore
	codeOverloaded       = "overloaded"         // in-flight admission cap reached
	codeDeadlineExceeded = "deadline_exceeded"  // per-request deadline expired mid-handler
	codeAdapterOpen      = "adapter_open"       // stream-fold circuit breaker is open
	codeCheckpointFailed = "checkpoint_failed"  // durable checkpoint could not be persisted
	codeNoStateDir       = "no_state_dir"       // checkpoint requested without a -state-dir
	codeInternal         = "internal"           // unclassified server fault
)

// ErrorCodes is the complete registry of envelope error codes. The
// errenvelope analyzer (cmd/smorevet) loads this table via go/types and
// rejects any httpError carrying — or any codeXxx const defining — a code
// that is not listed here, so adding a code means adding it in both places
// or the lint suite fails. Exported for API clients and tests that want to
// validate against the full set.
var ErrorCodes = []string{
	codeInvalidJSON,
	codeTrailingData,
	codeBodyTooLarge,
	codeEmptyBatch,
	codeBatchTooLarge,
	codeBadWindow,
	codeInvalidTargets,
	codeNotTrained,
	codeUnknownStrategy,
	codeInvalidConfig,
	codeInvalidBundle,
	codeQueueFull,
	codeDraining,
	codeInvalidModelName,
	codeModelNotFound,
	codeRegistryFull,
	codeDefaultPinned,
	codeNoCheckpoint,
	codeOverloaded,
	codeDeadlineExceeded,
	codeAdapterOpen,
	codeCheckpointFailed,
	codeNoStateDir,
	codeInternal,
}
