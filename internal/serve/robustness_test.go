package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"go-arxiv/smore/internal/fault"
)

// enableFault arms a fault spec for one test and guarantees it is disarmed
// before the test's server shuts down (cleanups run LIFO, so register after
// building the server).
func enableFault(t *testing.T, spec string, seed uint64) {
	t.Helper()
	if err := fault.Enable(spec, seed); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)
}

// exportModel fetches the canonical default bundle bytes.
func exportModel(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, MaxBatch: 64, StreamBatch: 64, StateDir: dir}
	srv, ts, art, windows := testServerOpts(t, opts)

	// Fold some streamed windows so the served state differs from the boot
	// bundle, then spawn a target so a drift-rollback checkpoint exists.
	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:8]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream adapt: status %d", resp.StatusCode)
	}
	waitStreamDrained(t, ts.URL, 8)
	inst := srv.reg.def.Load()
	inst.mu.Lock()
	_, _, serr := inst.model.SpawnTarget("shifted", 4, false)
	inst.mu.Unlock()
	if serr != nil {
		t.Fatal(serr)
	}

	resp = postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	ck := decodeBody[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d body %v", resp.StatusCode, ck)
	}
	if gen := ck["generation"].(float64); gen != 1 {
		t.Fatalf("first checkpoint generation = %v, want 1", gen)
	}
	want := exportModel(t, ts.URL)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh server booted from the ORIGINAL artifacts must recover the
	// checkpointed state — byte-identical export — and the rollback
	// checkpoint must survive the restart.
	srv2, err := New(art.Bundle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest2(t, srv2)
	if got := exportModel(t, ts2.URL); !bytes.Equal(got, want) {
		t.Fatalf("recovered export differs from checkpointed export (%d vs %d bytes)", len(got), len(want))
	}
	resp, err = http.Get(ts2.URL + "/v1/stream/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[streamStatsResponse](t, resp)
	if !st.HasCheckpoint {
		t.Fatal("drift rollback checkpoint did not survive the restart")
	}
	resp = postJSON(t, ts2.URL+"/v1/stream/rollback", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback after recovery: status %d", resp.StatusCode)
	}
}

// httptest2 wires a second server instance into the test's cleanup stack.
func httptest2(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return ts
}

func TestCheckpointTornWriteFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, MaxBatch: 64, StateDir: dir}
	srv, ts, art, windows := testServerOpts(t, opts)

	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint 1: status %d", resp.StatusCode)
	}
	want := exportModel(t, ts.URL)

	// Mutate the model, then shut down with the torn-write injector armed:
	// the shutdown checkpoint's bundle file lands as a prefix while the
	// injector reports success — the kernel lied, and the server believes
	// generation 2 is durable.
	resp = postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows[:4]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt: status %d", resp.StatusCode)
	}
	enableFault(t, "persist.torn:times=1", 42)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	fault.Disable()
	if _, err := os.Stat(filepath.Join(dir, DefaultModel, "gen-00000002.smore")); err != nil {
		t.Fatalf("torn generation 2 never landed: %v", err)
	}

	srv2, err := New(art.Bundle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest2(t, srv2)
	if got := exportModel(t, ts2.URL); !bytes.Equal(got, want) {
		t.Fatal("recovery did not fall back to the previous good generation")
	}
	// The generation counter must have been seeded past the torn file: the
	// next checkpoint may not collide with generation 2's name.
	resp = postJSON(t, ts2.URL+"/v1/checkpoint", struct{}{})
	ck := decodeBody[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint after recovery: status %d", resp.StatusCode)
	}
	if gen := ck["generation"].(float64); gen <= 2 {
		t.Fatalf("post-recovery generation = %v, want > 2", gen)
	}
}

func TestCheckpointPersistFailureAnswers500(t *testing.T) {
	srv, ts, _, _ := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, StateDir: t.TempDir()})
	enableFault(t, "persist.write", 1)
	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	body := decodeBody[errorEnvelope](t, resp)
	if resp.StatusCode != http.StatusInternalServerError || body.Error.Code != codeCheckpointFailed {
		t.Fatalf("status %d code %q, want 500 %q", resp.StatusCode, body.Error.Code, codeCheckpointFailed)
	}
	if n := srv.reg.def.Load().ckptFailures.Load(); n != 1 {
		t.Fatalf("checkpoint failures = %d, want 1", n)
	}
	fault.Disable()
	resp = postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint after clearing fault: status %d", resp.StatusCode)
	}
}

func TestCheckpointWithoutStateDirAnswers409(t *testing.T) {
	_, ts, _, _ := testServer(t)
	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	body := decodeBody[errorEnvelope](t, resp)
	if resp.StatusCode != http.StatusConflict || body.Error.Code != codeNoStateDir {
		t.Fatalf("status %d code %q, want 409 %q", resp.StatusCode, body.Error.Code, codeNoStateDir)
	}
}

func TestBreakerOpensProbesAndCloses(t *testing.T) {
	_, ts, _, windows := testServerOpts(t, Options{
		Workers: 2, MaxBatch: 64, StreamBatch: 1,
		BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
	})
	// The first two folds fail, tripping the threshold-2 circuit; every fold
	// after that succeeds, so the half-open probe closes it again.
	enableFault(t, "stream.fold.err:times=2", 7)
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[i : i+1]})
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("enqueue %d: status %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		infos := decodeBody[map[string][]modelInfo](t, mustGet(t, ts.URL+"/v1/models"))["models"]
		if infos[0].Breaker == "open" {
			if infos[0].BreakerOpens != 1 {
				t.Fatalf("breaker opens = %d, want 1", infos[0].BreakerOpens)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", infos[0])
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:1]})
	body := decodeBody[errorEnvelope](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || body.Error.Code != codeAdapterOpen {
		t.Fatalf("open circuit: status %d code %q, want 503 %q", resp.StatusCode, body.Error.Code, codeAdapterOpen)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 adapter_open carried no Retry-After header")
	}

	// After the cooldown the next batch is the half-open probe; its fold now
	// succeeds and the circuit closes for good.
	time.Sleep(120 * time.Millisecond)
	resp = postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[2:3]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("half-open probe: status %d", resp.StatusCode)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		infos := decodeBody[map[string][]modelInfo](t, mustGet(t, ts.URL+"/v1/models"))["models"]
		if infos[0].Breaker == "closed" && infos[0].Stream.WindowsFolded == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after probe: %+v", infos[0])
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp = postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[3:4]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-close enqueue: status %d", resp.StatusCode)
	}
	waitStreamDrained(t, ts.URL, 2)
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestInFlightCapRejects429WithRetryAfter(t *testing.T) {
	srv, ts, _, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, MaxInFlight: 1})
	// Wedge the single admitted slot: hold the instance mutex so an adapt
	// request blocks inside its handler while admitted.
	inst := srv.reg.def.Load()
	inst.mu.Lock()
	unlocked := false
	defer func() {
		if !unlocked {
			inst.mu.Unlock()
		}
	}()
	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/adapt", predictRequest{Windows: windows[:2]})
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.inFlight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:1]})
	body := decodeBody[errorEnvelope](t, resp)
	if resp.StatusCode != http.StatusTooManyRequests || body.Error.Code != codeOverloaded {
		t.Fatalf("status %d code %q, want 429 %q", resp.StatusCode, body.Error.Code, codeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 overloaded carried no Retry-After header")
	}
	// Stats stay exempt so an overloaded server remains observable.
	resp = mustGet(t, ts.URL+"/v1/stream/stats")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream stats under overload: status %d", resp.StatusCode)
	}

	inst.mu.Unlock()
	unlocked = true
	if code := <-done; code != http.StatusOK {
		t.Fatalf("wedged adapt finished with status %d", code)
	}
	resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:1]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after slot freed: status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(mustGet(t, ts.URL+"/metrics").Body)
	if !strings.Contains(string(raw), "smore_overload_rejects_total 1") {
		t.Fatal("overload rejection not counted in /metrics")
	}
}

func TestRequestDeadlineAnswers503(t *testing.T) {
	_, ts, _, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, RequestTimeout: time.Nanosecond})
	resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{Windows: windows[:4]})
	body := decodeBody[errorEnvelope](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || body.Error.Code != codeDeadlineExceeded {
		t.Fatalf("status %d code %q, want 503 %q", resp.StatusCode, body.Error.Code, codeDeadlineExceeded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 deadline_exceeded carried no Retry-After header")
	}
}

func TestCloseBoundedWhenFoldWedges(t *testing.T) {
	oldTimeout := registryDrainTimeout
	registryDrainTimeout = 200 * time.Millisecond
	t.Cleanup(func() { registryDrainTimeout = oldTimeout })

	srv, ts, _, windows := testServerOpts(t, Options{Workers: 2, MaxBatch: 64, StreamBatch: 1})
	// Every fold stalls well past the (shrunken) drain budget.
	enableFault(t, "stream.fold.slow:delay=2s", 3)
	resp := postJSON(t, ts.URL+"/v1/stream/adapt", predictRequest{Windows: windows[:6]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue: status %d", resp.StatusCode)
	}

	start := time.Now()
	err := srv.Close(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Close with a wedged fold reported success")
	}
	if elapsed > time.Second {
		t.Fatalf("Close took %v with a wedged fold; drain budget is %v", elapsed, registryDrainTimeout)
	}
	st := srv.reg.def.Load().stream.Stats()
	if st.Enqueued != st.WindowsFolded+st.WindowsLost+int64(st.QueueDepth)+int64(st.InFlight) {
		t.Fatalf("queue invariant violated after bounded close: %+v", st)
	}
	if st.WindowsLost == 0 {
		t.Fatalf("bounded close abandoned no windows: %+v", st)
	}
}
