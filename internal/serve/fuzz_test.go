package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
)

// fuzzBundles builds two small, distinct, valid checkpoint generations once
// per process: the trained bundle and the same bundle after one adaptation
// fold, each with its serialized bytes for byte-identity assertions.
var fuzzBundles = sync.OnceValues(func() ([2][]byte, error) {
	cfg := pipeline.Config{
		Encoder: encode.Config{Dim: 256, Sensors: 2, Levels: 8, NGram: 2, Min: -3, Max: 3, Seed: 11},
		Model:   model.Config{Dim: 256, Classes: 2, RetrainEpochs: 1, AdaptEpochs: 1, Confidence: 0.005, AdaptRate: 2},
		Data: data.Config{Sensors: 2, Classes: 2, WindowLen: 8, PerClass: 4, Seed: 11,
			Domains: pipeline.DefaultDomains(1)},
		TrainFrac: 0.75,
		Workers:   1,
	}
	var out [2][]byte
	art, err := pipeline.Train(cfg)
	if err != nil {
		return out, err
	}
	b := art.Bundle()
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		return out, err
	}
	out[0] = bytes.Clone(buf.Bytes())
	ds, err := data.Generate(cfg.Data)
	if err != nil {
		return out, err
	}
	enc, err := encode.New(b.Encoder)
	if err != nil {
		return out, err
	}
	hvs, err := enc.EncodeBatch(data.Windows(ds.Domains[len(ds.Domains)-1])[:4], 1)
	if err != nil {
		return out, err
	}
	if _, err := b.Model.AdaptIncremental(hvs, 1); err != nil {
		return out, err
	}
	buf.Reset()
	if _, err := b.WriteTo(&buf); err != nil {
		return out, err
	}
	out[1] = bytes.Clone(buf.Bytes())
	return out, nil
})

// FuzzCheckpointRecover writes two valid checkpoint generations, lets the
// fuzzer corrupt the state directory arbitrarily — truncations, bit flips,
// deletions, across bundles, rollbacks, and the manifest — and requires
// recovery to never panic and never serve corrupt state: the recovered model
// must re-serialize byte-identical to one of the two generations, or recovery
// must cleanly report nothing usable.
func FuzzCheckpointRecover(f *testing.F) {
	f.Add([]byte{})                   // pristine state dir
	f.Add([]byte{2, 0, 128})          // truncate gen2 bundle to half
	f.Add([]byte{2, 0, 128, 0, 0, 0}) // truncate both bundles
	f.Add([]byte{2, 1, 7, 0, 1, 200}) // bit-flip both bundles
	f.Add([]byte{4, 2, 0})            // delete the manifest
	f.Add([]byte{2, 2, 0, 4, 2, 0})   // delete gen2 bundle and the manifest
	f.Add([]byte{1, 1, 3, 3, 0, 10})  // corrupt both rollback files
	f.Fuzz(func(t *testing.T, ops []byte) {
		gens, err := fuzzBundles()
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		st, err := newStateStore(Options{StateDir: dir}, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		// Both generations carry a rollback payload; reusing the bundle bytes
		// is wrong-but-irrelevant here — recovery must tolerate any rollback
		// content without rejecting a valid bundle.
		if _, err := st.save("m", gens[0], gens[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := st.save("m", gens[1], gens[1]); err != nil {
			t.Fatal(err)
		}

		files := []string{
			filepath.Join(dir, "m", genFile(1)),
			filepath.Join(dir, "m", rollbackFile(1)),
			filepath.Join(dir, "m", genFile(2)),
			filepath.Join(dir, "m", rollbackFile(2)),
			filepath.Join(dir, "m", manifestName),
		}
		for i := 0; i+2 < len(ops); i += 3 {
			path := files[int(ops[i])%len(files)]
			raw, err := os.ReadFile(path)
			if err != nil {
				continue // already deleted by an earlier op
			}
			switch ops[i+1] % 3 {
			case 0: // truncate to a fraction of the original size
				os.WriteFile(path, raw[:len(raw)*int(ops[i+2])/256], 0o644)
			case 1: // flip one bit
				if len(raw) > 0 {
					raw[int(ops[i+2])*len(raw)/256] ^= 1 << (ops[i+2] % 8)
					os.WriteFile(path, raw, 0o644)
				}
			default:
				os.Remove(path)
			}
		}

		// With a parseable manifest every candidate is SHA-256-verified, so
		// recovery must return one of the exact written generations or
		// nothing. With the manifest itself destroyed, recovery degrades to a
		// structural scan: corruption in hypervector payload is undetectable
		// by design, so only well-formedness can be required.
		strict := false
		if raw, err := os.ReadFile(files[4]); err == nil {
			var man manifest
			strict = json.Unmarshal(raw, &man) == nil
		}

		rec := st.recoverAll()
		if len(rec) > 1 {
			t.Fatalf("recovered %d models from one state dir", len(rec))
		}
		if len(rec) == 0 {
			return // clean "nothing usable" is a valid outcome
		}
		var buf bytes.Buffer
		if _, err := rec[0].bundle.WriteTo(&buf); err != nil {
			t.Fatalf("recovered bundle does not re-serialize: %v", err)
		}
		if strict && !bytes.Equal(buf.Bytes(), gens[0]) && !bytes.Equal(buf.Bytes(), gens[1]) {
			t.Fatalf("recovered bundle (%d bytes, generation %d) matches neither written generation (%d / %d bytes)",
				buf.Len(), rec[0].gen, len(gens[0]), len(gens[1]))
		}
	})
}
