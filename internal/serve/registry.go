package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/fault"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/pipeline"
	"go-arxiv/smore/internal/stream"
)

// DefaultModel is the registry name of the bundle the server booted with.
// It backs the unnamed routes (/v1/predict, /v1/model, ...), is pinned
// against LRU eviction, and cannot be deleted — only hot-swapped.
const DefaultModel = "default"

// registryDrainTimeout bounds how long a replaced or evicted instance's
// streaming adapter may spend folding its remaining queue before it is
// abandoned. Eviction must not hang the upload that triggered it, and a
// wedged fold must not hang shutdown: instance.close applies the same bound
// when the caller's context carries no deadline of its own. A var (not a
// const) so drain-robustness tests can shrink the budget.
var registryDrainTimeout = 5 * time.Second

// modelName validates registry names: one leading alphanumeric, then up to
// 63 of [A-Za-z0-9._-], so names are safe in URLs, metric labels, and logs.
var modelName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// instance is one served bundle: its own encoder (bundles may differ in
// dimension and sensor count), ensemble, and streaming adaptation worker.
// Predictions go through the ensemble's lock-free snapshot; mu serializes
// the mutating surface (adapt folds, stream folds, export) per instance so
// a fold and an export cannot interleave mid-flush.
type instance struct {
	name   string
	enc    *encode.Encoder
	encfg  encode.Config
	model  *model.Ensemble
	stream *stream.Adapter

	// breaker is the stream-fold circuit breaker (inert unless
	// Options.BreakerThreshold is set).
	breaker *breaker

	// rollbacks counts successful POST .../stream/rollback restores.
	rollbacks atomic.Int64

	// Durable-checkpoint bookkeeping: successful stream folds since the last
	// checkpoint (drives the fold-count trigger and lets the periodic
	// checkpointer skip clean instances), the last persisted generation, and
	// cumulative save/failure counts for stats and metrics.
	foldsSinceCkpt atomic.Int64
	ckptGen        atomic.Int64
	ckptSaves      atomic.Int64
	ckptFailures   atomic.Int64

	mu       sync.Mutex
	lastUsed int64 // registry LRU tick; guarded by the registry mutex
}

// close drains the instance's streaming queue into its model and stops the
// worker. A caller context without a deadline is bounded at
// registryDrainTimeout, so a wedged or fault-stalled fold can never hang a
// Background-context shutdown; an explicit caller deadline (e.g. the
// -drain-timeout SIGTERM budget) is honored as-is. Past the budget the
// adapter abandons its remaining queue (counted as lost) rather than folding
// it forever.
func (inst *instance) close(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, registryDrainTimeout)
		defer cancel()
	}
	return inst.stream.Close(ctx)
}

// modelInfo is one registry entry's identity and state, for /v1/models and
// the labeled /metrics series.
type modelInfo struct {
	Name     string             `json:"name"`
	Adapted  bool               `json:"adapted"`
	Dim      int                `json:"dim"`
	Classes  int                `json:"classes"`
	Sensors  int                `json:"sensors"`
	Strategy string             `json:"strategy"`
	Targets  []model.TargetInfo `json:"targets,omitempty"`
	Rollback int64              `json:"rollbacks_total"`
	Stream   stream.Stats       `json:"stream"`

	// Breaker is the stream-fold circuit state (closed | open | half_open);
	// BreakerOpens counts how many times it tripped.
	Breaker      string `json:"breaker"`
	BreakerOpens int64  `json:"breaker_opens_total"`

	// Durable-checkpoint state: the last persisted generation (0 when the
	// instance has never been checkpointed) and cumulative save/failure
	// counts.
	CheckpointGen      int64 `json:"checkpoint_generation"`
	Checkpoints        int64 `json:"checkpoints_total"`
	CheckpointFailures int64 `json:"checkpoint_failures_total"`
}

// bundleErrCode picks the stable error code for a rejected bundle from the
// model package's typed errors — no string matching.
func bundleErrCode(err error) string {
	switch {
	case errors.Is(err, model.ErrInvalidConfig):
		return codeInvalidConfig
	case errors.Is(err, model.ErrUnknownStrategy):
		return codeUnknownStrategy
	}
	return codeInvalidBundle
}

// registry holds the named instances. All map and LRU-clock access is under
// mu; instance creation and adapter shutdown happen outside it so a slow
// drain never blocks lookups.
type registry struct {
	opt  Options
	met  *metrics
	logf func(format string, args ...any)

	// store is the durable checkpoint store; nil when Options.StateDir is
	// unset. The fold closures use it for the fold-count trigger, and
	// remove() forgets a deleted model's state so it cannot resurrect.
	store *stateStore

	// def always points at the instance currently registered under
	// DefaultModel; upsert repoints it on a default hot swap. The unnamed
	// routes resolve through this single atomic load instead of a map
	// lookup under mu, keeping the default predict path lock-free.
	def atomic.Pointer[instance]

	mu     sync.Mutex
	models map[string]*instance
	clock  int64
}

func newRegistry(opt Options, met *metrics, logf func(string, ...any)) *registry {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &registry{opt: opt, met: met, logf: logf, models: map[string]*instance{}}
}

// newInstance builds a served instance around a loaded bundle: the encoder
// is reconstructed deterministically from the bundle's encoder config, and
// the streaming adaptation worker is started.
func (g *registry) newInstance(name string, b *pipeline.Bundle) (*instance, error) {
	if b.Model == nil {
		return nil, fmt.Errorf("serve: bundle has no model")
	}
	if b.Model.Snapshot() == nil {
		return nil, fmt.Errorf("serve: bundle model is untrained")
	}
	enc, err := encode.New(b.Encoder)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding encoder: %w", err)
	}
	inst := &instance{
		name:    name,
		enc:     enc,
		encfg:   b.Encoder,
		model:   b.Model,
		breaker: &breaker{threshold: g.opt.BreakerThreshold, cooldown: g.opt.BreakerCooldown},
	}
	inst.stream = stream.New(
		stream.Config{
			QueueCap: g.opt.StreamQueue, MaxBatch: g.opt.StreamBatch,
			Policy: g.opt.DriftPolicy, MaxTargets: g.opt.MaxTargets,
			// The drift closures mirror the fold closure's locking: take the
			// instance mutex, then call into the model (inst.mu → model.mu,
			// never the reverse). The adapter calls Sim and Spawn from its
			// worker goroutine with no adapter lock held.
			Sim: func(hvs []hdc.Vector) (float64, bool, error) {
				inst.mu.Lock()
				defer inst.mu.Unlock()
				return inst.model.BatchSimilarity(hvs)
			},
			Spawn: func(maxTargets int, retire bool) (string, string, error) {
				inst.mu.Lock()
				defer inst.mu.Unlock()
				spawned, retired, err := inst.model.SpawnTarget("", maxTargets, retire)
				if err == nil {
					g.logf("serve: model %q drift: spawned target %q (retired %q)", inst.name, spawned, retired)
				}
				return spawned, retired, err
			},
		},
		func(windows [][][]float64) ([]hdc.Vector, error) {
			defer g.met.stage("stream_encode")()
			if err := fault.Maybe("stream.encode.err"); err != nil {
				return nil, err
			}
			return inst.enc.EncodeBatch(windows, g.opt.Workers)
		},
		func(hvs []hdc.Vector) (model.AdaptStats, error) {
			defer g.met.stage("fold")()
			// Chaos hooks: a slow fold models a wedged worker (the drain
			// budget must still hold), a fold error feeds the circuit
			// breaker. Both fire before the lock so an injected stall never
			// blocks export or adapt traffic.
			fault.Sleep("stream.fold.slow")
			if err := fault.Maybe("stream.fold.err"); err != nil {
				inst.breaker.record(false)
				return model.AdaptStats{}, err
			}
			inst.mu.Lock()
			stats, err := inst.model.AdaptIncremental(hvs, g.opt.Workers)
			inst.mu.Unlock()
			inst.breaker.record(err == nil)
			if err == nil && g.store != nil {
				// Modulo, not equality: if a checkpoint fails the counter keeps
				// climbing past the trigger, and the next multiple retries.
				if n := inst.foldsSinceCkpt.Add(1); g.store.foldEvery > 0 && n%int64(g.store.foldEvery) == 0 {
					g.store.kickInstance(inst)
				}
			}
			return stats, err
		},
	)
	inst.stream.Start()
	return inst, nil
}

// get returns the named instance, touching its LRU slot. A malformed name
// is a 400, an unknown one a 404.
func (g *registry) get(name string) (*instance, error) {
	if !modelName.MatchString(name) {
		return nil, &httpError{http.StatusBadRequest, codeInvalidModelName, fmt.Sprintf("invalid model name %q", name)}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	inst, ok := g.models[name]
	if !ok {
		return nil, &httpError{http.StatusNotFound, codeModelNotFound, fmt.Sprintf("model %q not found", name)}
	}
	g.clock++
	inst.lastUsed = g.clock
	return inst, nil
}

// upsert installs a bundle under name: an existing entry is hot-swapped
// atomically (in-flight requests finish against the old instance; new
// lookups see the new one), a new entry may first LRU-evict the
// least-recently-used non-default model to stay under MaxModels. The
// replaced or evicted instances' stream queues are drained in the
// background. Reports whether the name already existed and which model, if
// any, was evicted.
func (g *registry) upsert(name string, b *pipeline.Bundle) (swapped bool, evicted string, err error) {
	if !modelName.MatchString(name) {
		return false, "", &httpError{http.StatusBadRequest, codeInvalidModelName, fmt.Sprintf("invalid model name %q", name)}
	}
	inst, err := g.newInstance(name, b)
	if err != nil {
		return false, "", &httpError{http.StatusBadRequest, bundleErrCode(err), err.Error()}
	}
	var retired []*instance
	g.mu.Lock()
	old, swapped := g.models[name]
	if swapped {
		retired = append(retired, old)
	} else if len(g.models) >= g.opt.MaxModels {
		victim := g.lruVictimLocked()
		if victim == nil {
			g.mu.Unlock()
			// The new instance never entered the registry; stop its worker.
			go g.retire([]*instance{inst})
			return false, "", &httpError{http.StatusConflict, codeRegistryFull,
				fmt.Sprintf("registry full (%d models) and nothing evictable", g.opt.MaxModels)}
		}
		evicted = victim.name
		delete(g.models, victim.name)
		retired = append(retired, victim)
	}
	g.models[name] = inst
	if name == DefaultModel {
		// Repoint the unnamed routes before the swap is visible by name, so
		// no request can resolve the retired (soon-to-close) instance as the
		// default after the upload response returns.
		g.def.Store(inst)
	}
	g.clock++
	inst.lastUsed = g.clock
	g.mu.Unlock()
	if len(retired) > 0 {
		go g.retire(retired)
	}
	g.met.uploads.Add(1)
	switch {
	case swapped:
		g.met.swaps.Add(1)
		g.logf("serve: model %q hot-swapped (dim=%d classes=%d)", name, b.Encoder.Dim, b.Model.Config().Classes)
	case evicted != "":
		g.met.evictions.Add(1)
		g.logf("serve: model %q evicted (LRU) for %q", evicted, name)
		fallthrough
	default:
		g.logf("serve: model %q installed (dim=%d classes=%d)", name, b.Encoder.Dim, b.Model.Config().Classes)
	}
	return swapped, evicted, nil
}

// lruVictimLocked picks the least-recently-used evictable instance; the
// default model is pinned. Callers hold g.mu.
func (g *registry) lruVictimLocked() *instance {
	var victim *instance
	for name, inst := range g.models {
		if name == DefaultModel {
			continue
		}
		if victim == nil || inst.lastUsed < victim.lastUsed {
			victim = inst
		}
	}
	return victim
}

// remove deletes a named model. The default model is pinned (409); its
// stream queue is drained in the background like an eviction.
func (g *registry) remove(name string) error {
	if !modelName.MatchString(name) {
		return &httpError{http.StatusBadRequest, codeInvalidModelName, fmt.Sprintf("invalid model name %q", name)}
	}
	if name == DefaultModel {
		return &httpError{http.StatusConflict, codeDefaultPinned, "the default model cannot be deleted (upload to hot-swap it)"}
	}
	g.mu.Lock()
	inst, ok := g.models[name]
	if ok {
		delete(g.models, name)
	}
	g.mu.Unlock()
	if !ok {
		return &httpError{http.StatusNotFound, codeModelNotFound, fmt.Sprintf("model %q not found", name)}
	}
	go g.retire([]*instance{inst})
	if g.store != nil {
		// Forget the durable state too, or the deleted model would
		// resurrect at the next restart.
		g.store.forget(name)
	}
	g.met.deletes.Add(1)
	g.logf("serve: model %q deleted", name)
	return nil
}

// restore registers a model recovered from the state dir at startup. It
// respects MaxModels without evicting: the default model is already
// registered, and recovery order (most recent checkpoint first) decides who
// gets the remaining slots.
func (g *registry) restore(rec recoveredModel) error {
	inst, err := g.newInstance(rec.name, rec.bundle)
	if err != nil {
		return err
	}
	inst.ckptGen.Store(rec.gen)
	g.mu.Lock()
	if _, exists := g.models[rec.name]; exists || len(g.models) >= g.opt.MaxModels {
		full := len(g.models)
		g.mu.Unlock()
		go g.retire([]*instance{inst})
		if full >= g.opt.MaxModels {
			return fmt.Errorf("registry full (%d models)", full)
		}
		return fmt.Errorf("model %q already registered", rec.name)
	}
	g.models[rec.name] = inst
	g.clock++
	inst.lastUsed = g.clock
	g.mu.Unlock()
	g.logf("serve: model %q recovered from state dir (generation %d)", rec.name, rec.gen)
	return nil
}

// retire drains and stops instances that just left the registry (replaced,
// evicted, or deleted). Callers run it on its own goroutine so the
// triggering request never waits on the drain, which is bounded by
// registryDrainTimeout per instance so an abandoned stuffed queue cannot
// pin its model forever.
func (g *registry) retire(insts []*instance) {
	for _, inst := range insts {
		ctx, cancel := context.WithTimeout(context.Background(), registryDrainTimeout)
		if err := inst.close(ctx); err != nil {
			g.logf("serve: draining retired model %q: %v", inst.name, err)
		}
		cancel()
	}
}

// infos snapshots every entry's identity and stream counters, sorted by
// name for stable rendering.
func (g *registry) infos() []modelInfo {
	g.mu.Lock()
	insts := make([]*instance, 0, len(g.models))
	for _, inst := range g.models {
		insts = append(insts, inst)
	}
	g.mu.Unlock()
	out := make([]modelInfo, 0, len(insts))
	for _, inst := range insts {
		snap := inst.model.Snapshot()
		cfg := snap.Config()
		brState, brOpens := inst.breaker.snapshot()
		out = append(out, modelInfo{
			Name:               inst.name,
			Adapted:            snap.Adapted(),
			Dim:                cfg.Dim,
			Classes:            cfg.Classes,
			Sensors:            inst.encfg.Sensors,
			Strategy:           inst.model.Strategy().String(),
			Targets:            inst.model.TargetInfos(),
			Rollback:           inst.rollbacks.Load(),
			Stream:             inst.stream.Stats(),
			Breaker:            brState,
			BreakerOpens:       brOpens,
			CheckpointGen:      inst.ckptGen.Load(),
			Checkpoints:        inst.ckptSaves.Load(),
			CheckpointFailures: inst.ckptFailures.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// closeAll shuts every instance's streaming worker down, draining queues
// into their models within ctx. Instances drain concurrently so one wedged
// fold cannot burn the whole budget and starve every other model's drain;
// the default model's error is reported first (the one the process exit code
// depends on).
func (g *registry) closeAll(ctx context.Context) error {
	g.mu.Lock()
	insts := make([]*instance, 0, len(g.models))
	if def, ok := g.models[DefaultModel]; ok {
		insts = append(insts, def)
	}
	for name, inst := range g.models {
		if name != DefaultModel {
			insts = append(insts, inst)
		}
	}
	g.mu.Unlock()
	errs := make([]error, len(insts))
	var wg sync.WaitGroup
	for i, inst := range insts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = inst.close(ctx)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
