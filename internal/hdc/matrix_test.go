package hdc

import (
	"math"
	"testing"
)

func TestMatrixRowSharesStorage(t *testing.T) {
	m := NewMatrix(3, 128)
	row := m.Row(1)
	row.SetBit(5, 1)
	if m.Row(1).Bit(5) != 1 {
		t.Fatal("write through Row view did not reach the matrix")
	}
	if m.Row(0).PopCount() != 0 || m.Row(2).PopCount() != 0 {
		t.Fatal("row write leaked into a neighboring row")
	}
}

func TestMatrixSetRow(t *testing.T) {
	rng := testRNG(21)
	m := NewMatrix(4, 256)
	v := Random(rng, 256)
	m.SetRow(2, v)
	if !m.Row(2).Equal(v) {
		t.Fatal("SetRow did not copy the vector")
	}
	v.FlipBit(0)
	if m.Row(2).Equal(v) {
		t.Fatal("SetRow aliased the source instead of copying")
	}
}

// TestMatrixCosineIntoMatchesVectorCosine is the kernel's correctness
// contract: the packed, blocked scoring pass must be bit-equal to the
// per-row Vector.Cosine it replaces, including on dimensions larger than
// one cache block.
func TestMatrixCosineIntoMatchesVectorCosine(t *testing.T) {
	rng := testRNG(22)
	for _, dim := range []int{64, 512, 4096, blockWords*WordBits + 128} {
		rows := 7
		m := NewMatrix(rows, dim)
		for r := range rows {
			m.SetRow(r, Random(rng, dim))
		}
		q := Random(rng, dim)
		got := make([]float64, rows)
		m.CosineInto(q, got)
		for r := range rows {
			if want := q.Cosine(m.Row(r)); got[r] != want {
				t.Fatalf("dim %d row %d: CosineInto %v != Cosine %v", dim, r, got[r], want)
			}
		}
	}
}

func TestMatrixCosineIntoSelfAndComplement(t *testing.T) {
	rng := testRNG(23)
	m := NewMatrix(2, 256)
	v := Random(rng, 256)
	m.SetRow(0, v)
	inv := v.Clone()
	for i := range 256 {
		inv.FlipBit(i)
	}
	m.SetRow(1, inv)
	dst := []float64{math.NaN(), math.NaN()}
	m.CosineInto(v, dst)
	if dst[0] != 1 || dst[1] != -1 {
		t.Fatalf("self/complement scores = %v, want [1 -1]", dst)
	}
}

// TestBundleRowsIntoMatchesAccumulator pins the fused bundle kernel to the
// accumulator's semantics for every legal input count, odd and even (the
// even counts exercise the deterministic tie-break).
func TestBundleRowsIntoMatchesAccumulator(t *testing.T) {
	rng := testRNG(24)
	for s := 1; s <= BundleRowsMax; s++ {
		vs := make([]Vector, s)
		for i := range vs {
			vs[i] = Random(rng, 256)
		}
		acc := NewAccumulator(256)
		for _, v := range vs {
			acc.Add(v, 1)
		}
		want := acc.Majority()
		got := New(256)
		BundleRowsInto(&got, vs...)
		if !got.Equal(want) {
			t.Fatalf("BundleRowsInto of %d vectors diverged from Accumulator Majority", s)
		}
	}
}

func TestBundleRowsIntoAllEqualAndTies(t *testing.T) {
	rng := testRNG(25)
	v := Random(rng, 128)
	out := New(128)
	BundleRowsInto(&out, v, v, v)
	if !out.Equal(v) {
		t.Fatal("bundle of three copies must be the vector itself")
	}
	// Two complementary vectors tie on every bit: the result must be the
	// deterministic tie mask, exactly like the accumulator path.
	inv := v.Clone()
	for i := range 128 {
		inv.FlipBit(i)
	}
	acc := NewAccumulator(128)
	acc.Add(v, 1)
	acc.Add(inv, 1)
	want := acc.Majority()
	BundleRowsInto(&out, v, inv)
	if !out.Equal(want) {
		t.Fatal("all-ties bundle diverged from the accumulator tie-break")
	}
}

func TestBundleRowsIntoBounds(t *testing.T) {
	out := New(64)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty input", func() { BundleRowsInto(&out) })
	rng := testRNG(26)
	too := make([]Vector, BundleRowsMax+1)
	for i := range too {
		too[i] = Random(rng, 64)
	}
	mustPanic("too many inputs", func() { BundleRowsInto(&out, too...) })
	mustPanic("dimension mismatch", func() { BundleRowsInto(&out, Random(rng, 128)) })
}

func TestMajorityIntoMatchesMajority(t *testing.T) {
	// Staged-only, flushed, and mixed accumulators must all binarize the
	// same through MajorityInto as through Majority. Each fill reseeds so
	// both accumulators of a pair see identical vectors.
	for name, fill := range map[string]func(a *Accumulator){
		"staged": func(a *Accumulator) {
			rng := testRNG(27)
			for range 5 {
				a.Add(Random(rng, 256), 1)
			}
		},
		"flushed": func(a *Accumulator) {
			a.Add(Random(testRNG(28), 256), 2.5)
		},
		"mixed": func(a *Accumulator) {
			rng := testRNG(29)
			a.Add(Random(rng, 256), 2.5)
			a.Add(Random(rng, 256), 1)
		},
		"empty": func(a *Accumulator) {},
	} {
		a := NewAccumulator(256)
		b := NewAccumulator(256)
		fill(a)
		fill(b)
		want := a.Majority()
		got := New(256)
		b.MajorityInto(&got)
		if !got.Equal(want) {
			t.Fatalf("%s: MajorityInto diverged from Majority", name)
		}
	}
}

// TestWideStagingMatchesFlushedCounts drives more unit adds than the old
// 4-plane battery could stage, asserting the staged-only binarization and
// the flushed path agree at every count up to past the staging cap.
func TestWideStagingMatchesFlushedCounts(t *testing.T) {
	rng := testRNG(28)
	vs := make([]Vector, stageCap+3)
	for i := range vs {
		vs[i] = Random(rng, 128)
	}
	staged := NewAccumulator(128)
	oracle := NewAccumulator(128)
	for i, v := range vs {
		staged.Add(v, 1)
		// The oracle goes through the general fixed-point path, which
		// flushes immediately; weight 1 quantizes identically.
		oracle.Add(v, 1)
		oracle.flush()
		if got, want := staged.Majority(), oracle.Majority(); !got.Equal(want) {
			t.Fatalf("after %d adds: staged majority diverged from flushed", i+1)
		}
	}
}
