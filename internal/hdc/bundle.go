package hdc

// BundleRowsMax is the largest vector count BundleRowsInto accepts: its
// bit-sliced ones-counter lives in four per-word registers, which hold
// counts up to 15.
const BundleRowsMax = 15

// BundleRowsInto writes the equal-weight majority bundle of vs into dst,
// byte-identical to adding every vector to a fresh Accumulator with weight
// 1 and binarizing (including the deterministic tie-break on even counts),
// but in a single register-resident pass with no staging memory touched at
// all. Counts up to nine inputs run through unrolled carry-save-adder
// (sideways addition) reductions — the per-word cost is a handful of
// logic ops, not a bit-serial ripple — and larger counts fall back to a
// generic four-plane ripple. This is the spatial-encoding kernel behind
// Encode's per-timestep bundle. dst must match the inputs' dimension; it
// may alias one of them.
//
//smore:hotpath
func BundleRowsInto(dst *Vector, vs ...Vector) {
	s := len(vs)
	if s < 1 || s > BundleRowsMax {
		panic("hdc: BundleRowsInto needs 1 to BundleRowsMax vectors")
	}
	for _, v := range vs {
		mustSameDim(*dst, v)
	}
	d, t := dst.words, tieWords(dst.dim)
	switch s {
	case 1:
		copy(d, vs[0].words)
	case 2:
		bundle2(d, t, vs)
	case 3:
		bundle3(d, vs)
	case 4:
		bundle4(d, t, vs)
	case 5:
		bundle5(d, vs)
	case 6:
		bundle6(d, t, vs)
	case 7:
		bundle7(d, vs)
	case 8:
		bundle8(d, t, vs)
	case 9:
		bundle9(d, vs)
	default:
		bundleRipple(d, t, vs)
	}
}

// csa is a full adder over bit-sliced lanes: sum carries weight 1, carry
// weight 2. Five ops turn three weight-w values into two.
func csa(a, b, c uint64) (sum, carry uint64) {
	u := a ^ b
	return u ^ c, a&b | u&c
}

// Two inputs: count > 1 needs both bits; count == 1 never ties, count == 0
// loses, so the only tie is the both-or-neither middle, count == 1.
func bundle2(d, ties []uint64, vs []Vector) {
	a, b := vs[0].words, vs[1].words
	for i := range d {
		x, y := a[i], b[i]
		d[i] = x&y | (x^y)&ties[i]
	}
}

// Three inputs: the textbook majority-of-3, no ties possible.
func bundle3(d []uint64, vs []Vector) {
	a, b, c := vs[0].words, vs[1].words, vs[2].words
	for i := range d {
		x, y, z := a[i], b[i], c[i]
		d[i] = x&y | z&(x^y)
	}
}

// Four inputs, threshold 2: count = 4f + 2tw + o; count > 2 iff f or
// (tw and o); count == 2 (the tie) iff tw alone.
func bundle4(d, ties []uint64, vs []Vector) {
	a, b, c, e := vs[0].words, vs[1].words, vs[2].words, vs[3].words
	for i := range d {
		s1, c1 := csa(a[i], b[i], c[i])
		o := s1 ^ e[i]
		c2 := s1 & e[i]
		tw := c1 ^ c2
		f := c1 & c2
		d[i] = f | tw&o | tw&^o&^f&ties[i]
	}
}

// Five inputs, threshold 2: count = 4f + 2tw + o > 2 iff f or (tw and o).
func bundle5(d []uint64, vs []Vector) {
	a, b, c, e, g := vs[0].words, vs[1].words, vs[2].words, vs[3].words, vs[4].words
	for i := range d {
		s1, c1 := csa(a[i], b[i], c[i])
		o, c2 := csa(s1, e[i], g[i])
		tw := c1 ^ c2
		f := c1 & c2
		d[i] = f | tw&o
	}
}

// Six inputs, threshold 3: count = 4f + 2tw + o > 3 iff f; tie at 3 iff
// tw and o without f.
func bundle6(d, ties []uint64, vs []Vector) {
	a, b, c, e, g, h := vs[0].words, vs[1].words, vs[2].words, vs[3].words, vs[4].words, vs[5].words
	for i := range d {
		s1, c1 := csa(a[i], b[i], c[i])
		s2, c2 := csa(e[i], g[i], h[i])
		o := s1 ^ s2
		c3 := s1 & s2
		tw, f := csa(c1, c2, c3)
		d[i] = f | tw&o&ties[i]
	}
}

// Seven inputs, threshold 3: count = 4f + 2tw + o > 3 iff f, no ties.
func bundle7(d []uint64, vs []Vector) {
	a, b, c, e, g, h, j := vs[0].words, vs[1].words, vs[2].words, vs[3].words, vs[4].words, vs[5].words, vs[6].words
	for i := range d {
		s1, c1 := csa(a[i], b[i], c[i])
		s2, c2 := csa(e[i], g[i], h[i])
		_, c3 := csa(s1, s2, j[i])
		_, f := csa(c1, c2, c3)
		d[i] = f
	}
}

// Eight inputs, threshold 4: count = 8e + 4fo + 2tw + o; count > 4 iff e
// or fo with any lower bit; the tie at 4 is fo alone.
func bundle8(d, ties []uint64, vs []Vector) {
	a, b, c, e8, g, h, j, l := vs[0].words, vs[1].words, vs[2].words, vs[3].words, vs[4].words, vs[5].words, vs[6].words, vs[7].words
	for i := range d {
		s1, c1 := csa(a[i], b[i], c[i])
		s2, c2 := csa(e8[i], g[i], h[i])
		o, c3 := csa(s1, s2, j[i])
		c4 := o & l[i]
		o ^= l[i]
		t1, f1 := csa(c1, c2, c3)
		tw := t1 ^ c4
		f2 := t1 & c4
		fo := f1 ^ f2
		e := f1 & f2
		d[i] = e | fo&(tw|o) | fo&^(tw|o)&^e&ties[i]
	}
}

// Nine inputs, threshold 4: count > 4 iff the eights bit, or the fours bit
// with any lower bit set; odd count, so no ties.
func bundle9(d []uint64, vs []Vector) {
	a, b, c, e9, g, h, j, l, m := vs[0].words, vs[1].words, vs[2].words, vs[3].words, vs[4].words, vs[5].words, vs[6].words, vs[7].words, vs[8].words
	for i := range d {
		s1, c1 := csa(a[i], b[i], c[i])
		s2, c2 := csa(e9[i], g[i], h[i])
		s3, c3 := csa(j[i], l[i], m[i])
		o, c4 := csa(s1, s2, s3)
		t1, f1 := csa(c1, c2, c3)
		tw := t1 ^ c4
		f2 := t1 & c4
		fo := f1 ^ f2
		e := f1 & f2
		d[i] = e | fo&(tw|o)
	}
}

// bundleRipple is the generic fallback for 10..BundleRowsMax inputs: a
// four-register ripple add per input, then an MSB-first compare against
// the majority threshold.
func bundleRipple(d, ties []uint64, vs []Vector) {
	s := len(vs)
	k := uint64(s) / 2
	even := s%2 == 0
	k0, k1, k2, k3 := -(k & 1), -(k >> 1 & 1), -(k >> 2 & 1), -(k >> 3 & 1)
	for wi := range d {
		var c0, c1, c2, c3 uint64
		for _, v := range vs {
			w := v.words[wi]
			c3 ^= c2 & c1 & c0 & w
			c2 ^= c1 & c0 & w
			c1 ^= c0 & w
			c0 ^= w
		}
		gt, eq := uint64(0), ^uint64(0)
		gt |= eq & c3 &^ k3
		eq &= ^(c3 ^ k3)
		gt |= eq & c2 &^ k2
		eq &= ^(c2 ^ k2)
		gt |= eq & c1 &^ k1
		eq &= ^(c1 ^ k1)
		gt |= eq & c0 &^ k0
		eq &= ^(c0 ^ k0)
		w := gt
		if even {
			w |= eq & ties[wi]
		}
		d[wi] = w
	}
}
