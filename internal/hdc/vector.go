// Package hdc implements bit-packed binary hypervectors and the core
// hyperdimensional-computing operations SMORE builds on: XOR binding,
// circular permutation, majority bundling, and Hamming/cosine similarity.
//
// A hypervector of dimension D (D > 0, multiple of 64) is stored as D/64
// uint64 words, bit i living at words[i/64] >> (i%64) & 1. Binary bits map
// to the bipolar values {0 -> -1, 1 -> +1}, which is why cosine similarity
// reduces to 1 - 2*hamming/D.
package hdc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// WordBits is the number of bits per storage word.
const WordBits = 64

// MaxDim bounds the dimension accepted by deserialization so a corrupt or
// adversarial header cannot trigger a huge allocation.
const MaxDim = 1 << 24

// Vector is a dense binary hypervector. The zero value is unusable; create
// vectors with New, Random, or UnmarshalBinary.
type Vector struct {
	dim   int
	words []uint64
}

// New returns an all-zero vector of the given dimension. dim must be
// positive and a multiple of WordBits.
func New(dim int) Vector {
	if err := CheckDim(dim); err != nil {
		panic(err)
	}
	return Vector{dim: dim, words: make([]uint64, dim/WordBits)}
}

// CheckDim reports whether dim is a legal hypervector dimension.
func CheckDim(dim int) error {
	if dim <= 0 || dim%WordBits != 0 {
		return fmt.Errorf("hdc: dimension %d must be a positive multiple of %d", dim, WordBits)
	}
	if dim > MaxDim {
		return fmt.Errorf("hdc: dimension %d exceeds maximum %d", dim, MaxDim)
	}
	return nil
}

// Random returns a vector with i.i.d. uniform bits drawn from rng.
func Random(rng *rand.Rand, dim int) Vector {
	v := New(dim)
	for i := range v.words {
		v.words[i] = rng.Uint64()
	}
	return v
}

// Dim returns the dimension in bits.
func (v Vector) Dim() int { return v.dim }

// Bit returns bit i as 0 or 1.
func (v Vector) Bit(i int) int {
	return int(v.words[i/WordBits] >> (i % WordBits) & 1)
}

// SetBit sets bit i to b (0 or 1).
func (v Vector) SetBit(i, b int) {
	if b&1 == 1 {
		v.words[i/WordBits] |= 1 << (i % WordBits)
	} else {
		v.words[i/WordBits] &^= 1 << (i % WordBits)
	}
}

// FlipBit inverts bit i.
func (v Vector) FlipBit(i int) {
	v.words[i/WordBits] ^= 1 << (i % WordBits)
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := Vector{dim: v.dim, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyInto copies v's bits into dst, which must have the same dimension.
func (v Vector) CopyInto(dst *Vector) {
	mustSameDim(v, *dst)
	copy(dst.words, v.words)
}

// Equal reports whether v and u have identical dimension and bits.
func (v Vector) Equal(u Vector) bool {
	if v.dim != u.dim {
		return false
	}
	for i, w := range v.words {
		if w != u.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v Vector) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Bind returns the element-wise XOR of v and u (bipolar multiplication).
// Binding is its own inverse: Bind(Bind(a,b), b) == a.
func (v Vector) Bind(u Vector) Vector {
	out := New(v.dim)
	v.BindInto(u, &out)
	return out
}

// BindInto XORs v and u into dst, which must have the same dimension.
func (v Vector) BindInto(u Vector, dst *Vector) {
	mustSameDim(v, u)
	mustSameDim(v, *dst)
	for i, w := range v.words {
		dst.words[i] = w ^ u.words[i]
	}
}

// Permute returns v circularly rotated by k positions: the bit at index i
// moves to index (i+k) mod Dim. Negative k rotates the other way, so
// Permute(k) followed by Permute(-k) is the identity.
func (v Vector) Permute(k int) Vector {
	out := New(v.dim)
	v.PermuteInto(k, &out)
	return out
}

// PermuteInto writes Permute(k) into dst. dst must have the same dimension
// as v and must not alias v's storage.
//
// The rotation runs word-at-a-time: a whole-word rotation is two copies of
// contiguous regions, and a sub-word bit shift walks the source exactly
// once as two contiguous segments (before and after the wrap point), so
// the inner loops carry the spilled high bits of the previous word into
// the next with no per-word modulus or wrap branch.
func (v Vector) PermuteInto(k int, dst *Vector) {
	mustSameDim(v, *dst)
	n := len(v.words)
	s := ((k % v.dim) + v.dim) % v.dim
	wordShift, bitShift := s/WordBits, uint(s%WordBits)
	if bitShift == 0 {
		// dst[i] = v[(i - wordShift) mod n]: two contiguous block copies.
		copy(dst.words[:wordShift], v.words[n-wordShift:])
		copy(dst.words[wordShift:], v.words[:n-wordShift])
		return
	}
	// dst[i] = v[j]<<bitShift | v[j-1]>>(64-bitShift) with j = (i - wordShift)
	// mod n. Only the wrap output j == 0 needs modular indexing; the two
	// remaining runs read adjacent source pairs directly, so iterations
	// carry no dependency and pipeline freely.
	inv := WordBits - bitShift
	dst.words[wordShift] = v.words[0]<<bitShift | v.words[n-1]>>inv
	src := v.words
	out := dst.words[wordShift+1:]
	for i := range out {
		out[i] = src[i+1]<<bitShift | src[i]>>inv
	}
	src = v.words[n-wordShift-1:]
	out = dst.words[:wordShift]
	for i := range out {
		out[i] = src[i+1]<<bitShift | src[i]>>inv
	}
}

// Hamming returns the number of bit positions where v and u differ.
func (v Vector) Hamming(u Vector) int {
	mustSameDim(v, u)
	n := 0
	for i, w := range v.words {
		n += bits.OnesCount64(w ^ u.words[i])
	}
	return n
}

// Cosine returns the cosine similarity of the bipolar interpretations of v
// and u, i.e. 1 - 2*Hamming/Dim. It lies in [-1, 1]; unrelated random
// vectors score near 0.
func (v Vector) Cosine(u Vector) float64 {
	return 1 - 2*float64(v.Hamming(u))/float64(v.dim)
}

func mustSameDim(a, b Vector) {
	if a.dim != b.dim {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", a.dim, b.dim))
	}
}

const (
	magic      = "HDV1"
	headerSize = 8 // 4-byte magic + uint32 dim
)

// MarshalBinary serializes v as a 4-byte magic, little-endian uint32
// dimension, and the packed words in little-endian order.
func (v Vector) MarshalBinary() ([]byte, error) {
	if err := CheckDim(v.dim); err != nil {
		return nil, err
	}
	buf := make([]byte, headerSize+len(v.words)*8)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(v.dim))
	for i, w := range v.words {
		binary.LittleEndian.PutUint64(buf[headerSize+i*8:], w)
	}
	return buf, nil
}

// UnmarshalBinary parses the format produced by MarshalBinary, validating
// the magic, dimension bounds, and payload length.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("hdc: truncated vector: %d bytes", len(data))
	}
	if string(data[:4]) != magic {
		return fmt.Errorf("hdc: bad magic %q", data[:4])
	}
	dim := int(binary.LittleEndian.Uint32(data[4:]))
	if err := CheckDim(dim); err != nil {
		return err
	}
	want := headerSize + dim/WordBits*8
	if len(data) != want {
		return fmt.Errorf("hdc: payload length %d, want %d for dim %d", len(data), want, dim)
	}
	v.dim = dim
	v.words = make([]uint64, dim/WordBits)
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(data[headerSize+i*8:])
	}
	return nil
}
