package hdc

import (
	"fmt"
	"math/bits"
)

// Matrix is a packed, row-major set of hypervectors sharing one dimension:
// row r occupies words [r*Dim/64, (r+1)*Dim/64) of a single contiguous
// allocation. Scoring a query against every row with CosineInto streams
// that one allocation instead of pointer-chasing per-row heap slices, which
// is what makes it the similarity kernel behind prototype scoring.
type Matrix struct {
	dim, rows int
	words     []uint64
}

// NewMatrix returns an all-zero matrix of the given shape.
func NewMatrix(rows, dim int) *Matrix {
	if err := CheckDim(dim); err != nil {
		panic(err)
	}
	if rows < 0 {
		panic(fmt.Sprintf("hdc: negative matrix row count %d", rows))
	}
	return &Matrix{dim: dim, rows: rows, words: make([]uint64, rows*dim/WordBits)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Dim returns the per-row dimension in bits.
func (m *Matrix) Dim() int { return m.dim }

// Row returns a view of row r that shares the matrix's storage: writes
// through the returned vector update the matrix in place, which is how
// prototype rebuilds binarize straight into the packed layout.
func (m *Matrix) Row(r int) Vector {
	n := m.dim / WordBits
	return Vector{dim: m.dim, words: m.words[r*n : (r+1)*n : (r+1)*n]}
}

// Clone returns a deep copy sharing no storage with m, so an immutable
// published view (a model snapshot) can be taken of a matrix that is
// otherwise rebuilt in place.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{dim: m.dim, rows: m.rows, words: make([]uint64, len(m.words))}
	copy(out.words, m.words)
	return out
}

// SetRow copies v into row r. v must match the matrix dimension.
func (m *Matrix) SetRow(r int, v Vector) {
	if v.dim != m.dim {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", v.dim, m.dim))
	}
	n := m.dim / WordBits
	copy(m.words[r*n:(r+1)*n], v.words)
}

// blockWords is the query stripe CosineInto processes at a time: 4 KiB of
// query words stay resident in L1 while every row's matching stripe streams
// past once.
const blockWords = 512

// CosineInto writes q's cosine similarity to every row into dst[:Rows()],
// bit-exactly equal to calling q.Cosine on each row. The popcount pass is
// blocked: the matrix is streamed through the cache exactly once per call
// regardless of dimension, and nothing is allocated.
//
//smore:hotpath
func (m *Matrix) CosineInto(q Vector, dst []float64) {
	if q.dim != m.dim {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", q.dim, m.dim))
	}
	if len(dst) < m.rows {
		panic(fmt.Sprintf("hdc: destination holds %d scores, need %d", len(dst), m.rows))
	}
	n := m.dim / WordBits
	dst = dst[:m.rows]
	for r := range dst {
		dst[r] = 0
	}
	for b0 := 0; b0 < n; b0 += blockWords {
		b1 := min(b0+blockWords, n)
		qb := q.words[b0:b1]
		for r := 0; r < m.rows; r++ {
			row := m.words[r*n+b0 : r*n+b1 : r*n+b1]
			h := 0
			for i, w := range qb {
				h += bits.OnesCount64(w ^ row[i])
			}
			// Partial Hamming counts are small integers, exact in float64.
			dst[r] += float64(h)
		}
	}
	for r := range dst {
		// Same expression as Vector.Cosine, so the scores are bit-equal.
		dst[r] = 1 - 2*dst[r]/float64(m.dim)
	}
}
