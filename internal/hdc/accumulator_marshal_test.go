package hdc

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// addRandomOps drives acc through a deterministic mix of unit, negative,
// fractional, and scaled adds so a marshal test exercises both the staging
// battery and the flushed counters.
func addRandomOps(t *testing.T, seed uint64, acc *Accumulator, ops int) {
	t.Helper()
	rng := testRNG(seed)
	weights := []float64{1, 1, 1, -1, 0.5, -2.25, 3}
	for i := range ops {
		acc.Add(Random(rng, acc.Dim()), weights[i%len(weights)])
	}
}

func TestAccumulatorMarshalRoundTrip(t *testing.T) {
	const dim = 256
	acc := NewAccumulator(dim)
	addRandomOps(t, 0xabc, acc, 23)
	want := acc.Majority()

	buf, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != MarshaledSize(dim) {
		t.Fatalf("marshaled %d bytes, want %d", len(buf), MarshaledSize(dim))
	}
	var got Accumulator
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got.Dim() != dim {
		t.Fatalf("loaded dim %d, want %d", got.Dim(), dim)
	}
	if !got.Majority().Equal(want) {
		t.Fatal("loaded accumulator's Majority differs from the original")
	}
	// Re-marshal must be byte-identical: the codec is canonical.
	buf2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-marshal of a loaded accumulator is not byte-identical")
	}
}

// TestAccumulatorMarshalResume checks the save→load→continue contract: adds
// applied after a round trip must land exactly as they would have without
// the round trip, including the ±1 staging-battery fast path.
func TestAccumulatorMarshalResume(t *testing.T) {
	const dim = 192
	straight := NewAccumulator(dim)
	addRandomOps(t, 0xd0d0, straight, 17)

	resumed := NewAccumulator(dim)
	addRandomOps(t, 0xd0d0, resumed, 17)
	buf, err := resumed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Accumulator
	if err := loaded.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}

	rng := testRNG(0x5e5)
	extra := make([]Vector, 40)
	for i := range extra {
		extra[i] = Random(rng, dim)
	}
	for i, v := range extra {
		w := 1.0
		if i%3 == 0 {
			w = -1
		} else if i%7 == 0 {
			w = 1.75
		}
		straight.Add(v, w)
		loaded.Add(v, w)
	}
	if !loaded.Majority().Equal(straight.Majority()) {
		t.Fatal("resumed accumulation diverged from straight-through accumulation")
	}
}

func TestAccumulatorMarshalEmpty(t *testing.T) {
	acc := NewAccumulator(64)
	buf, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Accumulator
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	// An empty accumulator's Majority is the deterministic all-ties pattern.
	if !got.Majority().Equal(acc.Majority()) {
		t.Fatal("empty accumulator did not round-trip")
	}
}

func TestAccumulatorUnmarshalErrors(t *testing.T) {
	good, err := NewAccumulator(128).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	badDim := bytes.Clone(good)
	binary.LittleEndian.PutUint32(badDim[4:], 100) // not a multiple of 64
	hugeDim := bytes.Clone(good)
	binary.LittleEndian.PutUint32(hugeDim[4:], 1<<30)
	badMagic := bytes.Clone(good)
	copy(badMagic, "NOPE")
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", []byte("HAC")},
		{"bad magic", badMagic},
		{"bad dim", badDim},
		{"huge dim", hugeDim},
		{"truncated payload", good[:len(good)-4]},
		{"oversized payload", append(bytes.Clone(good), 0, 0, 0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var a Accumulator
			if err := a.UnmarshalBinary(tt.data); err == nil {
				t.Error("UnmarshalBinary accepted corrupt input")
			}
		})
	}
}
