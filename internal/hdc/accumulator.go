package hdc

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Accumulator is a signed per-bit counter used to bundle hypervectors and to
// hold non-binarized class prototypes. Adding a vector with weight w adds +w
// to every counter whose bit is 1 and -w to every counter whose bit is 0, so
// Majority recovers the element-wise weighted majority vote. Negative
// weights subtract a vector, which is what perceptron-style retraining and
// prototype correction need.
//
// Counters are fixed-point int32 values in units of 1/weightScale, so
// fractional weights are quantized to the nearest 1/256 (a weight that
// quantizes to zero is a no-op) and a counter saturates at ±(2^31 - 1) —
// about ±8M accumulated units — rather than wrapping. The hot path — adds
// with weight exactly ±1, which is all that encoding and single-shot
// training ever issue — never touches the int32 counters at all: it ripples
// the vector's words through a small bit-sliced staging battery (stagePlanes
// uint64 planes per word, i.e. 64 counters advance per word operation) and
// only expands to int32 when the battery fills, a fractional-weight add
// arrives, or a reader needs the totals. Majority on a battery-only
// accumulator binarizes straight from the planes with a word-parallel
// magnitude comparison, never materializing per-bit integers.
//
// An Accumulator is not safe for concurrent use: because of the lazy
// battery, even Majority may rewrite internal state. The one read-only
// exception is the `other` argument of AddScaled, so a shared source
// accumulator may seed several targets concurrently.
type Accumulator struct {
	dim    int
	counts []int32  // flushed fixed-point counters, all zero unless dirty
	planes []uint64 // stagePlanes bit-sliced planes of dim/64 words each
	staged int32    // number of ±1 adds held in the planes (0..stageCap)
	dirty  bool     // counts holds flushed data (planes-only path unusable)
	ties   []uint64 // per-bit deterministic tie-break bits (shared, read-only)
}

const (
	// weightScale is the fixed-point scale of the int32 counters.
	weightScale = 256
	// stagePlanes is the width of the bit-sliced staging counter; it can
	// hold stageCap = 2^stagePlanes - 1 unit adds before a flush. Eight
	// planes let a whole window bundle (hundreds of n-grams) binarize
	// straight from the battery without ever expanding to int32 counters;
	// adds, flushes, and Reset all skip the planes the current staged
	// count cannot have reached, so the extra width costs nothing on
	// small bundles.
	stagePlanes = 8
	stageCap    = 1<<stagePlanes - 1
	// maxWeight bounds |weight| in Add so the scaled fixed-point value
	// (and a doubling of it in the branchless inner loop) stays well
	// inside int32.
	maxWeight = 1 << 20
)

// tieCache memoizes the per-dimension tie-break words: bit i of the mask is
// splitmix64(i) & 1, the same deterministic pseudo-random vote the scalar
// implementation used, so tie behavior is stable across releases. It is a
// copy-on-write map behind an atomic pointer rather than a sync.Map so the
// hit path is a plain int-keyed lookup with no key boxing — BundleRowsInto
// consults it on every call.
var (
	tieCacheMu sync.Mutex                       // serializes cache misses
	tieCache   atomic.Pointer[map[int][]uint64] // read-only once published
)

func tieWords(dim int) []uint64 {
	var w []uint64
	if m := tieCache.Load(); m != nil {
		w = (*m)[dim]
	}
	if w == nil {
		return tieWordsSlow(dim)
	}
	return w
}

// tieWordsSlow computes and publishes the tie words for a dimension seen for
// the first time. The whole map is re-copied under tieCacheMu so readers
// never see a map being written; distinct dimensions are few, so the copy is
// trivially cheap.
func tieWordsSlow(dim int) []uint64 {
	tieCacheMu.Lock()
	defer tieCacheMu.Unlock()
	if m := tieCache.Load(); m != nil {
		if w, ok := (*m)[dim]; ok {
			return w
		}
	}
	words := make([]uint64, dim/WordBits)
	for i := range dim {
		words[i/WordBits] |= (splitmix64(uint64(i)) & 1) << (i % WordBits)
	}
	next := make(map[int][]uint64)
	if m := tieCache.Load(); m != nil {
		for k, v := range *m {
			next[k] = v
		}
	}
	next[dim] = words
	tieCache.Store(&next)
	return words
}

// NewAccumulator returns an empty accumulator of the given dimension.
func NewAccumulator(dim int) *Accumulator {
	if err := CheckDim(dim); err != nil {
		panic(err)
	}
	return &Accumulator{
		dim:    dim,
		counts: make([]int32, dim),
		planes: make([]uint64, stagePlanes*dim/WordBits),
		ties:   tieWords(dim),
	}
}

// Dim returns the dimension in bits.
func (a *Accumulator) Dim() int { return a.dim }

// plane returns the p-th bit-sliced staging plane.
func (a *Accumulator) plane(p int) []uint64 {
	n := a.dim / WordBits
	return a.planes[p*n : (p+1)*n : (p+1)*n]
}

// Add accumulates v with the given weight. Weights other than ±1 are
// quantized to the nearest 1/256; a weight that quantizes to zero is a no-op.
func (a *Accumulator) Add(v Vector, weight float64) {
	if v.dim != a.dim {
		panic("hdc: accumulator dimension mismatch")
	}
	switch weight {
	case 1:
		a.addUnit(v.words, 0)
	case -1:
		// Subtracting v is the same as adding its complement: every
		// one-bit contributes -1 and every zero-bit +1.
		a.addUnit(v.words, ^uint64(0))
	default:
		if !(math.Abs(weight) <= maxWeight) {
			// Catches NaN, ±Inf, and magnitudes whose scaled value
			// would hit the implementation-defined float-to-int32
			// conversion; fail loudly instead of corrupting counters
			// architecture-dependently.
			panic("hdc: accumulator weight outside ±2^20")
		}
		wgt := int32(math.Round(weight * weightScale))
		if wgt == 0 {
			return
		}
		a.flush()
		a.addWeighted(v.words, wgt)
	}
}

// usedPlanes returns how many low staging planes can be nonzero: per-bit
// counts never exceed the staged add count, so every plane at or above its
// bit length is still all-zero and can be skipped by flush, Majority, and
// Reset.
func (a *Accumulator) usedPlanes() int {
	return bits.Len(uint(a.staged))
}

// addUnit ripples words (XORed with inv, so inv == ^0 adds the complement)
// into the staging battery: one carry-propagating add across the planes
// advances 64 counters per word operation. The carry chain stops as soon as
// it dies, which keeps the average well under two plane passes.
func (a *Accumulator) addUnit(words []uint64, inv uint64) {
	if a.staged == stageCap {
		a.flush()
	}
	n := a.dim / WordBits
	var ps [stagePlanes][]uint64
	for p := range ps {
		ps[p] = a.planes[p*n : (p+1)*n : (p+1)*n]
	}
	for wi, w := range words {
		carry := w ^ inv
		for p := 0; carry != 0; p++ {
			t := ps[p][wi]
			ps[p][wi] = t ^ carry
			carry &= t
		}
	}
	a.staged++
}

// flush expands the staging battery into the int32 counters: a battery
// holding s adds of which ones were 1-bits contributes (2*ones - s) units.
func (a *Accumulator) flush() {
	if a.staged == 0 {
		return
	}
	staged := a.staged
	n := a.dim / WordBits
	top := a.usedPlanes()
	var ps [stagePlanes][]uint64
	for p := 0; p < top; p++ {
		ps[p] = a.plane(p)
	}
	for wi := range n {
		var pw [stagePlanes]uint64
		for p := 0; p < top; p++ {
			pw[p] = ps[p][wi]
			ps[p][wi] = 0
		}
		c := (*[WordBits]int32)(a.counts[wi*WordBits:])
		for j := 0; j < WordBits; j++ {
			ones := int32(0)
			for p := 0; p < top; p++ {
				ones |= int32(pw[p]>>j&1) << p
			}
			c[j] = satAdd(c[j], (ones<<1-staged)*weightScale)
		}
	}
	a.staged = 0
	a.dirty = true
}

// satAdd adds two counters with int32 saturation, so a counter that hits a
// rail sticks there instead of wrapping and flipping its majority sign.
func satAdd(a, b int32) int32 {
	s := int64(a) + int64(b)
	switch {
	case s > math.MaxInt32:
		return math.MaxInt32
	case s < math.MinInt32:
		return math.MinInt32
	}
	return int32(s)
}

// addWeighted applies a general fixed-point weight with a branchless
// word-chunked loop. Callers must flush the staging battery first.
func (a *Accumulator) addWeighted(words []uint64, wgt int32) {
	two := wgt * 2
	for wi, w := range words {
		c := (*[WordBits]int32)(a.counts[wi*WordBits:])
		for j := 0; j < WordBits; j++ {
			c[j] = satAdd(c[j], int32(w>>j&1)*two-wgt)
		}
	}
	a.dirty = true
}

// AddScaled adds every counter of other scaled by weight. It lets a model
// seed a new prototype from a similarity-weighted mixture of existing ones.
// Scaled counters are rounded to the nearest 1/256 unit. other is only
// read, never mutated, so one source accumulator can seed many targets
// concurrently; staged adds it still holds are folded in on the fly.
func (a *Accumulator) AddScaled(other *Accumulator, weight float64) {
	if other.dim != a.dim {
		panic("hdc: accumulator dimension mismatch")
	}
	if !(math.Abs(weight) <= maxWeight) {
		panic("hdc: accumulator weight outside ±2^20")
	}
	a.flush()
	staged := other.staged
	otop := other.usedPlanes()
	var ops [stagePlanes][]uint64
	for p := 0; p < otop; p++ {
		ops[p] = other.plane(p)
	}
	for wi := range other.dim / WordBits {
		var pw [stagePlanes]uint64
		for p := 0; p < otop; p++ {
			pw[p] = ops[p][wi]
		}
		oc := (*[WordBits]int32)(other.counts[wi*WordBits:])
		c := (*[WordBits]int32)(a.counts[wi*WordBits:])
		for j := 0; j < WordBits; j++ {
			ones := int32(0)
			for p := 0; p < otop; p++ {
				ones |= int32(pw[p]>>j&1) << p
			}
			// int64: a rail-saturated counter plus the staged
			// contribution would wrap int32.
			eff := int64(oc[j]) + int64((ones<<1-staged)*weightScale)
			if eff != 0 {
				// Saturate: a large counter times a large weight can
				// leave int32, where the raw conversion would be
				// implementation-defined. The float64 sum is exact
				// (well under 2^53).
				s := float64(c[j]) + math.Round(float64(eff)*weight)
				switch {
				case s > math.MaxInt32:
					c[j] = math.MaxInt32
				case s < math.MinInt32:
					c[j] = math.MinInt32
				default:
					c[j] = int32(s)
				}
			}
		}
	}
	a.dirty = true
}

// Majority binarizes the accumulator: bit i is 1 when its counter is
// positive and 0 when negative. Exact ties break on a deterministic
// pseudo-random hash of the bit index so bundles of an even number of
// vectors stay unbiased yet reproducible.
func (a *Accumulator) Majority() Vector {
	v := New(a.dim)
	a.MajorityInto(&v)
	return v
}

// MajorityInto is Majority writing into a caller-owned vector of the same
// dimension, so hot paths can binarize without allocating.
//
//smore:hotpath
func (a *Accumulator) MajorityInto(v *Vector) {
	if v.dim != a.dim {
		panic("hdc: accumulator dimension mismatch")
	}
	if !a.dirty {
		a.majorityStaged(v)
		return
	}
	a.flush()
	for wi := range v.words {
		c := (*[WordBits]int32)(a.counts[wi*WordBits:])
		var pos, zero uint64
		for j := 0; j < WordBits; j++ {
			// Branchless sign classification, total over int32:
			// cj > 0 iff its sign bit is clear and it is nonzero.
			// (Deriving the sign from -cj would misread MinInt32,
			// which is reachable via AddScaled's saturation rail.)
			cj := uint32(c[j])
			nonzero := uint64((cj | -cj) >> 31)
			pos |= (uint64(^cj>>31) & nonzero) << j
			zero |= (nonzero ^ 1) << j
		}
		v.words[wi] = pos | zero&a.ties[wi]
	}
}

// majorityStaged binarizes directly from the staging battery without
// expanding per-bit integers: counter i is 2*ones_i - staged, so bit i is 1
// iff ones_i > staged/2, with a tie exactly when staged is even and
// ones_i == staged/2. The plane-vs-constant comparison runs word-parallel
// over only the planes the staged count can have reached.
func (a *Accumulator) majorityStaged(v *Vector) {
	if a.staged == 0 {
		copy(v.words, a.ties) // every counter is zero: all ties
		return
	}
	k := uint64(a.staged) / 2
	even := a.staged%2 == 0
	top := a.usedPlanes()
	var ps [stagePlanes][]uint64
	var km [stagePlanes]uint64
	for p := 0; p < top; p++ {
		ps[p] = a.plane(p)
		km[p] = -(k >> p & 1)
	}
	for wi := range v.words {
		// MSB-first compare of the bit-sliced ones-count against k.
		gt, eq := uint64(0), ^uint64(0)
		for p := top - 1; p >= 0; p-- {
			pw := ps[p][wi]
			gt |= eq & pw &^ km[p]
			eq &= ^(pw ^ km[p])
		}
		w := gt
		if even {
			w |= eq & a.ties[wi]
		}
		v.words[wi] = w
	}
}

// Reset zeroes all counters. Only the staging planes the current batch can
// have touched are cleared, so resetting between small bundles (the encode
// hot path) costs a few cache lines, not the whole battery.
func (a *Accumulator) Reset() {
	if a.dirty {
		clear(a.counts)
		a.dirty = false
	}
	if a.staged != 0 {
		clear(a.planes[:a.usedPlanes()*a.dim/WordBits])
		a.staged = 0
	}
}

// Bundle is a convenience wrapper that majority-bundles vs with equal
// weight. It panics if vs is empty or dimensions disagree.
func Bundle(vs ...Vector) Vector {
	if len(vs) == 0 {
		panic("hdc: Bundle of no vectors")
	}
	acc := NewAccumulator(vs[0].dim)
	for _, v := range vs {
		acc.Add(v, 1)
	}
	return acc.Majority()
}

// splitmix64 is the SplitMix64 finalizer, used as a cheap deterministic
// index hash for tie-breaking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
