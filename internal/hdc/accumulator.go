package hdc

// Accumulator is a signed per-bit counter used to bundle hypervectors and to
// hold non-binarized class prototypes. Adding a vector with weight w adds +w
// to every counter whose bit is 1 and -w to every counter whose bit is 0, so
// Majority recovers the element-wise weighted majority vote. Negative
// weights subtract a vector, which is what perceptron-style retraining and
// prototype correction need.
type Accumulator struct {
	dim    int
	counts []float64
}

// NewAccumulator returns an empty accumulator of the given dimension.
func NewAccumulator(dim int) *Accumulator {
	if err := CheckDim(dim); err != nil {
		panic(err)
	}
	return &Accumulator{dim: dim, counts: make([]float64, dim)}
}

// Dim returns the dimension in bits.
func (a *Accumulator) Dim() int { return a.dim }

// Add accumulates v with the given weight.
func (a *Accumulator) Add(v Vector, weight float64) {
	if v.dim != a.dim {
		panic("hdc: accumulator dimension mismatch")
	}
	for i := range a.counts {
		if v.words[i/WordBits]>>(i%WordBits)&1 == 1 {
			a.counts[i] += weight
		} else {
			a.counts[i] -= weight
		}
	}
}

// AddScaled adds every counter of other scaled by weight. It lets a model
// seed a new prototype from a similarity-weighted mixture of existing ones.
func (a *Accumulator) AddScaled(other *Accumulator, weight float64) {
	if other.dim != a.dim {
		panic("hdc: accumulator dimension mismatch")
	}
	for i, c := range other.counts {
		a.counts[i] += c * weight
	}
}

// Majority binarizes the accumulator: bit i is 1 when its counter is
// positive and 0 when negative. Exact ties break on a deterministic
// pseudo-random hash of the bit index so bundles of an even number of
// vectors stay unbiased yet reproducible.
func (a *Accumulator) Majority() Vector {
	v := New(a.dim)
	for i, c := range a.counts {
		switch {
		case c > 0:
			v.SetBit(i, 1)
		case c == 0:
			v.SetBit(i, int(splitmix64(uint64(i))&1))
		}
	}
	return v
}

// Reset zeroes all counters.
func (a *Accumulator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
}

// Bundle is a convenience wrapper that majority-bundles vs with equal
// weight. It panics if vs is empty or dimensions disagree.
func Bundle(vs ...Vector) Vector {
	if len(vs) == 0 {
		panic("hdc: Bundle of no vectors")
	}
	acc := NewAccumulator(vs[0].dim)
	for _, v := range vs {
		acc.Add(v, 1)
	}
	return acc.Majority()
}

// splitmix64 is the SplitMix64 finalizer, used as a cheap deterministic
// index hash for tie-breaking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
