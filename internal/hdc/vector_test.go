package hdc

import (
	"math"
	"math/rand/v2"
	"testing"
)

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x7e57))
}

func TestCheckDim(t *testing.T) {
	tests := []struct {
		name string
		dim  int
		ok   bool
	}{
		{"zero", 0, false},
		{"negative", -64, false},
		{"not multiple of 64", 100, false},
		{"one word", 64, true},
		{"typical", 4096, true},
		{"max", MaxDim, true},
		{"over max", MaxDim + 64, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := CheckDim(tt.dim); (err == nil) != tt.ok {
				t.Errorf("CheckDim(%d) = %v, want ok=%v", tt.dim, err, tt.ok)
			}
		})
	}
}

func TestBitOps(t *testing.T) {
	v := New(128)
	for _, i := range []int{0, 1, 63, 64, 127} {
		if v.Bit(i) != 0 {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.SetBit(i, 1)
		if v.Bit(i) != 1 {
			t.Fatalf("SetBit(%d,1) did not set", i)
		}
		v.FlipBit(i)
		if v.Bit(i) != 0 {
			t.Fatalf("FlipBit(%d) did not clear", i)
		}
	}
	if v.PopCount() != 0 {
		t.Fatalf("PopCount = %d after clearing all bits", v.PopCount())
	}
	v.SetBit(5, 1)
	v.SetBit(70, 1)
	if got := v.PopCount(); got != 2 {
		t.Fatalf("PopCount = %d, want 2", got)
	}
}

func TestBindSelfInverse(t *testing.T) {
	rng := testRNG(1)
	for trial := range 50 {
		dim := 64 * (1 + rng.IntN(8))
		a, b := Random(rng, dim), Random(rng, dim)
		if got := a.Bind(b).Bind(b); !got.Equal(a) {
			t.Fatalf("trial %d dim %d: Bind(Bind(a,b),b) != a", trial, dim)
		}
		if !a.Bind(a).Equal(New(dim)) {
			t.Fatalf("trial %d: Bind(a,a) is not the zero vector", trial)
		}
		if !a.Bind(b).Equal(b.Bind(a)) {
			t.Fatalf("trial %d: Bind is not commutative", trial)
		}
	}
}

func TestBindDistributesHamming(t *testing.T) {
	// Binding with a common vector is an isometry: it preserves the
	// Hamming distance between any two vectors.
	rng := testRNG(2)
	for range 20 {
		a, b, c := Random(rng, 512), Random(rng, 512), Random(rng, 512)
		if a.Hamming(b) != a.Bind(c).Hamming(b.Bind(c)) {
			t.Fatal("binding with a common vector changed the Hamming distance")
		}
	}
}

// permuteRef is a bit-at-a-time reference implementation of Permute.
func permuteRef(v Vector, k int) Vector {
	out := New(v.Dim())
	s := ((k % v.Dim()) + v.Dim()) % v.Dim()
	for i := range v.Dim() {
		out.SetBit((i+s)%v.Dim(), v.Bit(i))
	}
	return out
}

func TestPermuteMatchesReference(t *testing.T) {
	rng := testRNG(3)
	shifts := []int{0, 1, -1, 63, 64, 65, 127, 128, -64, -65, 1000, -1000}
	for _, dim := range []int{64, 128, 448} {
		v := Random(rng, dim)
		for _, k := range shifts {
			if got, want := v.Permute(k), permuteRef(v, k); !got.Equal(want) {
				t.Errorf("dim %d: Permute(%d) disagrees with reference", dim, k)
			}
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := testRNG(4)
	for trial := range 50 {
		dim := 64 * (1 + rng.IntN(8))
		v := Random(rng, dim)
		k := rng.IntN(3*dim) - dim
		if !v.Permute(k).Permute(-k).Equal(v) {
			t.Fatalf("trial %d: Permute(%d) then Permute(%d) is not identity at dim %d", trial, k, -k, dim)
		}
		if v.Permute(k).PopCount() != v.PopCount() {
			t.Fatalf("trial %d: Permute(%d) changed the popcount", trial, k)
		}
		if !v.Permute(dim).Equal(v) {
			t.Fatalf("trial %d: Permute(dim) is not identity", trial)
		}
	}
}

func TestHammingCosine(t *testing.T) {
	rng := testRNG(5)
	a := Random(rng, 1024)
	if a.Hamming(a) != 0 {
		t.Fatal("Hamming(a,a) != 0")
	}
	if a.Cosine(a) != 1 {
		t.Fatal("Cosine(a,a) != 1")
	}
	inv := a.Clone()
	for i := range inv.Dim() {
		inv.FlipBit(i)
	}
	if got := a.Cosine(inv); got != -1 {
		t.Fatalf("Cosine(a, ~a) = %v, want -1", got)
	}
	b := Random(rng, 1024)
	if a.Hamming(b) != b.Hamming(a) {
		t.Fatal("Hamming is not symmetric")
	}
	// Independent random vectors should be quasi-orthogonal: Hamming near
	// dim/2 and cosine near 0 (within ~5 standard deviations of dim/4).
	if c := a.Cosine(b); math.Abs(c) > 0.16 {
		t.Fatalf("random vectors have cosine %v, expected near 0", c)
	}
}

func TestBundlePreservesNearestNeighbor(t *testing.T) {
	// A majority bundle must stay closer to each of its inputs than
	// unrelated random vectors are, which is what makes associative
	// recall work.
	rng := testRNG(6)
	for trial := range 10 {
		a, b, c := Random(rng, 2048), Random(rng, 2048), Random(rng, 2048)
		bundle := Bundle(a, b, c)
		outsider := Random(rng, 2048)
		for _, in := range []Vector{a, b, c} {
			if bundle.Cosine(in) <= bundle.Cosine(outsider)+0.1 {
				t.Fatalf("trial %d: bundle similarity to input %.3f not clearly above outsider %.3f",
					trial, bundle.Cosine(in), bundle.Cosine(outsider))
			}
		}
	}
}

func TestBundleMajorityBit(t *testing.T) {
	// With three vectors, each output bit must equal the majority of the
	// three input bits.
	rng := testRNG(7)
	a, b, c := Random(rng, 256), Random(rng, 256), Random(rng, 256)
	bundle := Bundle(a, b, c)
	for i := range bundle.Dim() {
		want := 0
		if a.Bit(i)+b.Bit(i)+c.Bit(i) >= 2 {
			want = 1
		}
		if bundle.Bit(i) != want {
			t.Fatalf("bit %d: bundle = %d, majority = %d", i, bundle.Bit(i), want)
		}
	}
}

func TestAccumulatorNegativeWeight(t *testing.T) {
	rng := testRNG(8)
	a, b := Random(rng, 256), Random(rng, 256)
	acc := NewAccumulator(256)
	acc.Add(a, 2)
	acc.Add(b, 1)
	acc.Add(b, -1) // cancels b entirely
	if !acc.Majority().Equal(a) {
		t.Fatal("subtracting a vector did not cancel its contribution")
	}
}

func TestAccumulatorTieDeterminism(t *testing.T) {
	mk := func() Vector {
		acc := NewAccumulator(512)
		return acc.Majority() // all counters zero: every bit is a tie
	}
	first := mk()
	if !first.Equal(mk()) {
		t.Fatal("tie-breaking is not deterministic")
	}
	// Ties should break pseudo-randomly, not all one way.
	if pc := first.PopCount(); pc < 512/4 || pc > 512*3/4 {
		t.Fatalf("tie-broken vector popcount %d is heavily biased", pc)
	}
}

func TestAccumulatorAddScaled(t *testing.T) {
	rng := testRNG(9)
	v := Random(rng, 256)
	src := NewAccumulator(256)
	src.Add(v, 3)
	dst := NewAccumulator(256)
	dst.AddScaled(src, 0.5)
	if !dst.Majority().Equal(v) {
		t.Fatal("AddScaled did not transfer the source counters")
	}
}

func TestAccumulatorAddScaledMixedStagingReadOnly(t *testing.T) {
	rng := testRNG(12)
	a, b := Random(rng, 256), Random(rng, 256)
	// src holds both flushed counters (weight 2 goes through the general
	// path) and staged ±1 adds still in the battery.
	src := NewAccumulator(256)
	src.Add(a, 2)
	src.Add(b, 1)
	src.Add(b, 1)
	ref := NewAccumulator(256)
	ref.Add(a, 2)
	ref.Add(b, 1)
	ref.Add(b, 1)
	dst := NewAccumulator(256)
	dst.AddScaled(src, 0.5)
	// Halving every counter preserves all signs, so the majority must
	// match the unscaled reference.
	if !dst.Majority().Equal(ref.Majority()) {
		t.Fatal("AddScaled missed the staged battery contribution")
	}
	// src must be observationally untouched: a second AddScaled sees the
	// same totals.
	dst2 := NewAccumulator(256)
	dst2.AddScaled(src, 0.5)
	if !dst2.Majority().Equal(dst.Majority()) {
		t.Fatal("AddScaled mutated its source accumulator")
	}
}

func TestMajorityAtSaturationRail(t *testing.T) {
	// AddScaled saturates overflowing counters to MinInt32/MaxInt32;
	// Majority must still read those as negative/positive. (A sign trick
	// based on negation would overflow on MinInt32 and flip the bit.)
	src := NewAccumulator(64)
	zero := New(64)
	for range 15 {
		src.Add(zero, 1) // every counter -15 units, still staged
	}
	dst := NewAccumulator(64)
	dst.AddScaled(src, 1<<20) // saturates every counter to MinInt32
	if got := dst.Majority(); got.PopCount() != 0 {
		t.Fatalf("negative-saturated counters binarized to %d one-bits, want 0", got.PopCount())
	}
	ones := zero.Clone()
	for i := range 64 {
		ones.SetBit(i, 1)
	}
	src2 := NewAccumulator(64)
	for range 15 {
		src2.Add(ones, 1)
	}
	dst2 := NewAccumulator(64)
	dst2.AddScaled(src2, 1<<20) // saturates every counter to MaxInt32
	if got := dst2.Majority(); got.PopCount() != 64 {
		t.Fatalf("positive-saturated counters binarized to %d one-bits, want 64", got.PopCount())
	}
}

func TestAddScaledFromSaturatedSourceWithStagedAdds(t *testing.T) {
	// A source counter pinned at the positive rail plus one still-staged
	// unit add must not wrap negative when AddScaled folds the battery in.
	ones := New(64)
	for i := range 64 {
		ones.SetBit(i, 1)
	}
	src := NewAccumulator(64)
	for range 16 {
		src.Add(ones, 1<<20) // saturates every counter to MaxInt32
	}
	src.Add(ones, 1) // staged on top of the rail
	dst := NewAccumulator(64)
	dst.AddScaled(src, 1)
	if got := dst.Majority(); got.PopCount() != 64 {
		t.Fatalf("rail+staged source transferred as %d one-bits, want 64", got.PopCount())
	}
}

func TestAccumulatorWeightedAddSaturates(t *testing.T) {
	// 16 adds of the all-zero vector at the maximum weight total exactly
	// -2^32 fixed-point units per counter: wrapping arithmetic would land
	// every counter back on 0 (a tie), saturation pins them negative.
	acc := NewAccumulator(64)
	zero := New(64)
	for range 16 {
		acc.Add(zero, 1<<20)
	}
	if got := acc.Majority(); got.PopCount() != 0 {
		t.Fatalf("saturating weighted adds binarized to %d one-bits, want 0", got.PopCount())
	}
}

func TestAccumulatorNonFiniteWeightPanics(t *testing.T) {
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for _, op := range []func(){
			func() { NewAccumulator(64).Add(New(64), w) },
			func() { NewAccumulator(64).AddScaled(NewAccumulator(64), w) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("no panic for non-finite weight %v", w)
					}
				}()
				op()
			}()
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := testRNG(10)
	for _, dim := range []int{64, 128, 4096} {
		v := Random(rng, dim)
		buf, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary dim %d: %v", dim, err)
		}
		var u Vector
		if err := u.UnmarshalBinary(buf); err != nil {
			t.Fatalf("UnmarshalBinary dim %d: %v", dim, err)
		}
		if !u.Equal(v) {
			t.Fatalf("round trip changed the vector at dim %d", dim)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid, err := Random(testRNG(11), 128).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", valid[:4]},
		{"bad magic", append([]byte("XXXX"), valid[4:]...)},
		{"truncated payload", valid[:len(valid)-1]},
		{"extra payload", append(append([]byte{}, valid...), 0)},
		{"zero dim", []byte("HDV1\x00\x00\x00\x00")},
		{"huge dim", []byte("HDV1\xff\xff\xff\xff")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var v Vector
			if err := v.UnmarshalBinary(tt.data); err == nil {
				t.Errorf("UnmarshalBinary accepted %s", tt.name)
			}
		})
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	a, b := New(64), New(128)
	for name, fn := range map[string]func(){
		"Bind":    func() { a.Bind(b) },
		"Hamming": func() { a.Hamming(b) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on dimension mismatch", name)
				}
			}()
			fn()
		})
	}
}
