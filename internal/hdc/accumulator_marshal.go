package hdc

import (
	"encoding/binary"
	"fmt"
)

const (
	// accMagic versions the accumulator wire format; bump it on any layout
	// change so stale snapshots fail loudly instead of parsing garbage.
	accMagic      = "HAC1"
	accHeaderSize = 8 // 4-byte magic + uint32 dim
)

// MarshaledSize returns the exact encoded size in bytes of an accumulator of
// the given dimension, so callers can pre-validate frame lengths before
// allocating.
func MarshaledSize(dim int) int {
	return accHeaderSize + dim*4
}

// MarshalBinary serializes the accumulator as a 4-byte magic, little-endian
// uint32 dimension, and the dim little-endian int32 fixed-point counters.
// The staging battery is flushed into the counters first, so marshaling
// mutates internal state (but never the accumulated totals); the output is
// deterministic for a given accumulated value.
func (a *Accumulator) MarshalBinary() ([]byte, error) {
	if err := CheckDim(a.dim); err != nil {
		return nil, err
	}
	a.flush()
	buf := make([]byte, MarshaledSize(a.dim))
	copy(buf, accMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(a.dim))
	for i, c := range a.counts {
		binary.LittleEndian.PutUint32(buf[accHeaderSize+i*4:], uint32(c))
	}
	return buf, nil
}

// UnmarshalBinary parses the format produced by MarshalBinary, validating
// the magic, dimension bounds, and payload length before allocating, so a
// corrupt or adversarial header cannot trigger an oversized allocation. The
// loaded accumulator continues accumulating exactly where the saved one
// left off.
func (a *Accumulator) UnmarshalBinary(data []byte) error {
	if len(data) < accHeaderSize {
		return fmt.Errorf("hdc: truncated accumulator: %d bytes", len(data))
	}
	if string(data[:4]) != accMagic {
		return fmt.Errorf("hdc: bad accumulator magic %q", data[:4])
	}
	dim := int(binary.LittleEndian.Uint32(data[4:]))
	if err := CheckDim(dim); err != nil {
		return err
	}
	if want := MarshaledSize(dim); len(data) != want {
		return fmt.Errorf("hdc: accumulator payload length %d, want %d for dim %d", len(data), want, dim)
	}
	a.dim = dim
	a.counts = make([]int32, dim)
	a.planes = make([]uint64, stagePlanes*dim/WordBits)
	a.staged = 0
	a.ties = tieWords(dim)
	a.dirty = false
	for i := range a.counts {
		c := int32(binary.LittleEndian.Uint32(data[accHeaderSize+i*4:]))
		a.counts[i] = c
		if c != 0 {
			a.dirty = true
		}
	}
	return nil
}
