package hdc

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzVectorRoundTrip checks that any byte slice either fails to parse or
// parses into a vector that re-serializes to exactly the same bytes, and
// that parsing never panics or over-allocates.
func FuzzVectorRoundTrip(f *testing.F) {
	rng := testRNG(0xf022)
	for _, dim := range []int{64, 128, 1024} {
		buf, err := Random(rng, dim).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte("HDV1"))
	f.Add([]byte("HDV1\x40\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vector
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of a successfully parsed vector failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not byte-identical: in %d bytes, out %d bytes", len(data), len(out))
		}
		var u Vector
		if err := u.UnmarshalBinary(out); err != nil || !u.Equal(v) {
			t.Fatalf("second round trip diverged: %v", err)
		}
	})
}

// fuzzVector builds a vector of at most maxWords words from raw bytes,
// padding the tail with zeros. It returns a vector of at least one word.
func fuzzVector(data []byte, maxWords int) Vector {
	n := (len(data) + 7) / 8
	if n < 1 {
		n = 1
	}
	if n > maxWords {
		n = maxWords
	}
	v := New(n * WordBits)
	buf := make([]byte, n*8)
	copy(buf, data)
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return v
}

// FuzzPermuteRoundTrip checks the word-level rotate against its algebraic
// laws for arbitrary bit patterns and shifts: Permute(k) then Permute(-k)
// is the identity, popcount is invariant, and the fast path agrees with the
// bit-at-a-time reference implementation.
func FuzzPermuteRoundTrip(f *testing.F) {
	rng := testRNG(0xbeef)
	for _, dim := range []int{64, 192, 512} {
		buf, err := Random(rng, dim).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[8:], 17)
		f.Add(buf[8:], -64)
	}
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		v := fuzzVector(data, 64)
		got := v.Permute(k)
		if got.PopCount() != v.PopCount() {
			t.Fatalf("Permute(%d) changed popcount at dim %d", k, v.Dim())
		}
		if !got.Permute(-k).Equal(v) {
			t.Fatalf("Permute(%d) then Permute(%d) is not identity at dim %d", k, -k, v.Dim())
		}
		if want := permuteRef(v, k); !got.Equal(want) {
			t.Fatalf("Permute(%d) disagrees with bit-at-a-time reference at dim %d", k, v.Dim())
		}
	})
}

// FuzzAccumulatorUnmarshal checks that arbitrary bytes either fail to parse
// or parse into an accumulator that re-serializes byte-identically and stays
// fully usable (Majority, further adds). Allocation is bounded by the input
// length because UnmarshalBinary validates the payload length against the
// header's dimension before allocating.
func FuzzAccumulatorUnmarshal(f *testing.F) {
	rng := testRNG(0x5a7e)
	for _, dim := range []int{64, 256} {
		acc := NewAccumulator(dim)
		for range 9 {
			acc.Add(Random(rng, dim), 1)
		}
		acc.Add(Random(rng, dim), -2.5)
		buf, err := acc.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte("HAC1"))
	f.Add([]byte("HAC1\x40\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var a Accumulator
		if err := a.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := a.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of a successfully parsed accumulator failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not byte-identical: in %d bytes, out %d bytes", len(data), len(out))
		}
		// The loaded accumulator must keep working: a further unit add goes
		// through the staging battery and Majority must not panic.
		a.Add(New(a.Dim()), 1)
		a.Majority()
	})
}

// refAccumulator is the scalar float64-per-bit accumulator the word-parallel
// implementation replaced, kept as a differential-testing oracle.
type refAccumulator struct {
	counts []float64
}

func (r *refAccumulator) add(v Vector, weight float64) {
	for i := range r.counts {
		if v.Bit(i) == 1 {
			r.counts[i] += weight
		} else {
			r.counts[i] -= weight
		}
	}
}

func (r *refAccumulator) majority() Vector {
	v := New(len(r.counts))
	for i, c := range r.counts {
		switch {
		case c > 0:
			v.SetBit(i, 1)
		case c == 0:
			v.SetBit(i, int(splitmix64(uint64(i))&1))
		}
	}
	return v
}

// FuzzAccumulatorParity drives the word-parallel accumulator and the scalar
// reference through the same fuzzer-chosen op sequence and demands exactly
// equal Majority outputs, ties included. Weights are sixteenth-integers so
// both the fixed-point and the float64 arithmetic are exact and the two
// implementations must agree bit for bit.
func FuzzAccumulatorParity(f *testing.F) {
	rng := testRNG(0xacc)
	seed := make([]byte, 80)
	for i := range seed {
		seed[i] = byte(rng.Uint64())
	}
	f.Add(seed)
	f.Add([]byte{0, 1, 2, 3, 255, 4, 128, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const dim = 128
		acc := NewAccumulator(dim)
		ref := &refAccumulator{counts: make([]float64, dim)}
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			switch {
			case op == 0xff: // occasional reset
				acc.Reset()
				ref.counts = make([]float64, dim)
			default:
				// Sixteenth-integer weight in [-8, 8): exactly
				// representable in both fixed point and float64.
				weight := float64(int8(op)) / 16
				v := New(dim)
				buf := make([]byte, dim/8)
				n := copy(buf, data)
				data = data[n:]
				for i := range v.words {
					v.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
				}
				acc.Add(v, weight)
				ref.add(v, weight)
			}
			if !acc.Majority().Equal(ref.majority()) {
				t.Fatal("word-parallel Majority diverged from scalar reference")
			}
		}
	})
}
