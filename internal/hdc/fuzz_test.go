package hdc

import (
	"bytes"
	"testing"
)

// FuzzVectorRoundTrip checks that any byte slice either fails to parse or
// parses into a vector that re-serializes to exactly the same bytes, and
// that parsing never panics or over-allocates.
func FuzzVectorRoundTrip(f *testing.F) {
	rng := testRNG(0xf022)
	for _, dim := range []int{64, 128, 1024} {
		buf, err := Random(rng, dim).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte("HDV1"))
	f.Add([]byte("HDV1\x40\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vector
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of a successfully parsed vector failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not byte-identical: in %d bytes, out %d bytes", len(data), len(out))
		}
		var u Vector
		if err := u.UnmarshalBinary(out); err != nil || !u.Equal(v) {
			t.Fatalf("second round trip diverged: %v", err)
		}
	})
}
