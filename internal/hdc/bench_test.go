package hdc

import "testing"

const benchDim = 4096

func BenchmarkBind(b *testing.B) {
	rng := testRNG(100)
	x, y, dst := Random(rng, benchDim), Random(rng, benchDim), New(benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		x.BindInto(y, &dst)
	}
}

func BenchmarkPermute(b *testing.B) {
	rng := testRNG(101)
	x, dst := Random(rng, benchDim), New(benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		x.PermuteInto(17, &dst)
	}
}

func BenchmarkHamming(b *testing.B) {
	rng := testRNG(102)
	x, y := Random(rng, benchDim), Random(rng, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		x.Hamming(y)
	}
}

func BenchmarkBundle(b *testing.B) {
	rng := testRNG(103)
	vs := make([]Vector, 16)
	for i := range vs {
		vs[i] = Random(rng, benchDim)
	}
	acc := NewAccumulator(benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		acc.Reset()
		for _, v := range vs {
			acc.Add(v, 1)
		}
		acc.Majority()
	}
}
