// Package data generates seeded synthetic multi-sensor time-series
// datasets with controllable domain shift, used by the CLI demo, the
// adaptation tests, and the benchmarks. Each class is a fixed mixture of
// sinusoids per sensor; a domain distorts every sample with amplitude
// scaling, DC offset, phase shift, and additive Gaussian noise — the
// classic covariate shifts SMORE targets.
package data

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Shift describes how one domain distorts the clean class signals.
type Shift struct {
	Name     string
	AmpScale float64 // multiplicative amplitude distortion
	Offset   float64 // additive DC offset
	Phase    float64 // phase shift in radians
	NoiseStd float64 // standard deviation of additive Gaussian noise
}

// Config parameterizes a synthetic dataset.
type Config struct {
	Sensors   int
	Classes   int
	WindowLen int
	PerClass  int // samples per class per domain
	Domains   []Shift
	Seed      uint64
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Sensors < 1:
		return fmt.Errorf("data: Sensors %d < 1", c.Sensors)
	case c.Classes < 2:
		return fmt.Errorf("data: Classes %d < 2", c.Classes)
	case c.WindowLen < 2:
		return fmt.Errorf("data: WindowLen %d < 2", c.WindowLen)
	case c.PerClass < 1:
		return fmt.Errorf("data: PerClass %d < 1", c.PerClass)
	case len(c.Domains) == 0:
		return fmt.Errorf("data: no domains")
	}
	return nil
}

// Sample is one labeled window. Window[t][s] is sensor s at timestep t.
type Sample struct {
	Window [][]float64
	Class  int
	Domain int
}

// Dataset holds the generated samples grouped by domain.
type Dataset struct {
	Config  Config
	Domains [][]Sample // Domains[d] holds the samples of domain d
}

// classSignature fixes, per (class, sensor), the frequency, phase, and
// harmonic weight of the clean signal.
type classSignature struct {
	freq, phase, harmonic float64
}

// Generate builds a dataset deterministically from cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda7a))
	sigs := make([][]classSignature, cfg.Classes)
	for c := range sigs {
		sigs[c] = make([]classSignature, cfg.Sensors)
		for s := range sigs[c] {
			sigs[c][s] = classSignature{
				freq:     1.5 + 4.5*rng.Float64(),
				phase:    2 * math.Pi * rng.Float64(),
				harmonic: 0.2 + 0.4*rng.Float64(),
			}
		}
	}
	ds := &Dataset{Config: cfg, Domains: make([][]Sample, len(cfg.Domains))}
	for d, shift := range cfg.Domains {
		samples := make([]Sample, 0, cfg.Classes*cfg.PerClass)
		for c := range cfg.Classes {
			for range cfg.PerClass {
				samples = append(samples, Sample{
					Window: genWindow(rng, cfg, sigs[c], shift),
					Class:  c,
					Domain: d,
				})
			}
		}
		rng.Shuffle(len(samples), func(i, j int) {
			samples[i], samples[j] = samples[j], samples[i]
		})
		ds.Domains[d] = samples
	}
	return ds, nil
}

func genWindow(rng *rand.Rand, cfg Config, sig []classSignature, shift Shift) [][]float64 {
	w := make([][]float64, cfg.WindowLen)
	// Small per-sample jitter so samples within a class differ even
	// before noise is added.
	jitter := 0.3 * rng.Float64()
	for t := range w {
		row := make([]float64, cfg.Sensors)
		x := 2 * math.Pi * float64(t) / float64(cfg.WindowLen)
		for s := range row {
			g := sig[s]
			clean := math.Sin(g.freq*x+g.phase+jitter+shift.Phase) +
				g.harmonic*math.Sin(2*g.freq*x+0.5*g.phase+shift.Phase)
			row[s] = shift.AmpScale*clean + shift.Offset + shift.NoiseStd*rng.NormFloat64()
		}
		w[t] = row
	}
	return w
}

// Split partitions one domain's samples into train and test slices with the
// given train fraction. The input order is preserved (Generate already
// shuffles per domain).
func Split(samples []Sample, trainFrac float64) (train, test []Sample) {
	n := int(float64(len(samples)) * trainFrac)
	return samples[:n], samples[n:]
}

// Windows extracts just the raw windows, e.g. to feed unlabeled samples to
// the adaptation loop.
func Windows(samples []Sample) [][][]float64 {
	out := make([][][]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Window
	}
	return out
}

// Labels extracts the class labels aligned with Windows.
func Labels(samples []Sample) []int {
	out := make([]int, len(samples))
	for i, s := range samples {
		out[i] = s.Class
	}
	return out
}
