package data

import (
	"math"
	"testing"
)

func testConfig() Config {
	return Config{
		Sensors: 3, Classes: 3, WindowLen: 32, PerClass: 5, Seed: 11,
		Domains: []Shift{
			{Name: "clean", AmpScale: 1},
			{Name: "shifted", AmpScale: 0.8, Offset: 0.2, Phase: 0.3, NoiseStd: 0.1},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"no sensors", func(c *Config) { c.Sensors = 0 }, false},
		{"one class", func(c *Config) { c.Classes = 1 }, false},
		{"short window", func(c *Config) { c.WindowLen = 1 }, false},
		{"no samples", func(c *Config) { c.PerClass = 0 }, false},
		{"no domains", func(c *Config) { c.Domains = nil }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := testConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Domains) != len(cfg.Domains) {
		t.Fatalf("got %d domains, want %d", len(ds.Domains), len(cfg.Domains))
	}
	for d, samples := range ds.Domains {
		if len(samples) != cfg.Classes*cfg.PerClass {
			t.Fatalf("domain %d has %d samples, want %d", d, len(samples), cfg.Classes*cfg.PerClass)
		}
		perClass := map[int]int{}
		for _, s := range samples {
			if s.Domain != d {
				t.Fatalf("sample in domain %d labeled domain %d", d, s.Domain)
			}
			if len(s.Window) != cfg.WindowLen {
				t.Fatalf("window length %d, want %d", len(s.Window), cfg.WindowLen)
			}
			for _, row := range s.Window {
				if len(row) != cfg.Sensors {
					t.Fatalf("row has %d sensors, want %d", len(row), cfg.Sensors)
				}
			}
			perClass[s.Class]++
		}
		for c := range cfg.Classes {
			if perClass[c] != cfg.PerClass {
				t.Fatalf("domain %d class %d has %d samples, want %d", d, c, perClass[c], cfg.PerClass)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.Domains {
		for i := range a.Domains[d] {
			sa, sb := a.Domains[d][i], b.Domains[d][i]
			if sa.Class != sb.Class {
				t.Fatal("same seed produced different labels")
			}
			for ti := range sa.Window {
				for si := range sa.Window[ti] {
					if sa.Window[ti][si] != sb.Window[ti][si] {
						t.Fatal("same seed produced different values")
					}
				}
			}
		}
	}
	cfg := testConfig()
	cfg.Seed = 12
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Domains[0][0].Window[0][0] == c.Domains[0][0].Window[0][0] {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestDomainShiftChangesSignal(t *testing.T) {
	ds, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The shifted domain's mean should sit near its DC offset, well away
	// from the clean domain's near-zero mean.
	mean := func(samples []Sample) float64 {
		sum, n := 0.0, 0
		for _, s := range samples {
			for _, row := range s.Window {
				for _, x := range row {
					sum += x
					n++
				}
			}
		}
		return sum / float64(n)
	}
	clean, shifted := mean(ds.Domains[0]), mean(ds.Domains[1])
	if math.Abs(clean) > 0.1 {
		t.Fatalf("clean domain mean %v, want near 0", clean)
	}
	if math.Abs(shifted-0.2) > 0.1 {
		t.Fatalf("shifted domain mean %v, want near its 0.2 offset", shifted)
	}
}

func TestSplitAndAccessors(t *testing.T) {
	ds, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := ds.Domains[0]
	train, test := Split(samples, 0.8)
	if len(train) != 12 || len(test) != 3 {
		t.Fatalf("Split gave %d/%d, want 12/3", len(train), len(test))
	}
	ws, ls := Windows(samples), Labels(samples)
	if len(ws) != len(samples) || len(ls) != len(samples) {
		t.Fatal("Windows/Labels length mismatch")
	}
	for i := range samples {
		if ls[i] != samples[i].Class {
			t.Fatal("Labels misaligned")
		}
		if &ws[i][0] != &samples[i].Window[0] {
			t.Fatal("Windows should reference the original windows")
		}
	}
}
