// Package pipeline wires the SMORE stages — synthetic data generation,
// hypervector encoding, associative-memory training, and similarity-based
// adaptation — into one reproducible run shared by the CLI demo and the
// end-to-end tests. Encoding, prediction, and adaptation all go through the
// batch APIs backed by the shared worker pool, so runs scale across cores
// while staying byte-identical for every worker count.
package pipeline

import (
	"fmt"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
)

// Config is the full pipeline configuration. The last entry of
// Data.Domains is treated as the unlabeled target domain; all earlier
// entries are labeled source domains.
type Config struct {
	Encoder   encode.Config
	Model     model.Config
	Data      data.Config
	Strategy  model.Strategy // adaptation recipe; zero value = the paper's default
	TrainFrac float64        // fraction of each source domain used for training
	Workers   int            // worker-pool size for batch stages; <= 0 means GOMAXPROCS
}

// Result summarizes one pipeline run.
type Result struct {
	SourceAccuracy float64          `json:"source_accuracy"` // held-out source-domain accuracy
	TargetBaseline float64          `json:"target_baseline"` // target accuracy before adaptation
	TargetAdapted  float64          `json:"target_adapted"`  // target accuracy after adaptation
	Adapt          model.AdaptStats `json:"adapt_stats"`
	Elapsed        string           `json:"elapsed,omitempty"`
}

// DefaultDomains returns n mildly distorted source domains plus one
// strongly shifted target domain, the shape the demo and tests use.
func DefaultDomains(n int) []data.Shift {
	if n < 1 {
		n = 1
	}
	domains := make([]data.Shift, 0, n+1)
	for i := range n {
		domains = append(domains, data.Shift{
			Name:     fmt.Sprintf("source-%d", i),
			AmpScale: 1 + 0.1*float64(i),
			Offset:   0.05 * float64(i),
			Phase:    0.1 * float64(i),
			NoiseStd: 0.05 + 0.02*float64(i),
		})
	}
	domains = append(domains, data.Shift{
		Name:     "target",
		AmpScale: 0.9,
		Offset:   0.15,
		Phase:    0.3,
		NoiseStd: 0.08,
	})
	return domains
}

// Artifacts is the train-once state the evaluate/adapt path and the serving
// surface share: the frozen encoder, the trained ensemble, and the encoded
// evaluation splits. Build it with Train (train a fresh model) or WithModel
// (wrap an already-trained, e.g. loaded, model).
type Artifacts struct {
	Config     Config
	Encoder    *encode.Encoder
	Model      *model.Ensemble
	SourceTest []model.Sample // held-out source-domain samples
	Target     []model.Sample // encoded (unlabeled at adapt time) target samples
	// TargetWindows are the raw target windows, aligned one-to-one with
	// Target; the stream-replay path feeds them back through the encoder.
	TargetWindows [][][]float64
}

// Train executes generate → encode → train and returns the reusable
// artifacts; it is the train-once half of the train-once/serve-many split.
func Train(cfg Config) (*Artifacts, error) {
	mdl, err := model.New(cfg.Model)
	if err != nil {
		return nil, err
	}
	mdl.SetStrategy(cfg.Strategy)
	return prepare(cfg, mdl, true)
}

// WithModel builds artifacts around an already-trained ensemble (typically
// loaded from a saved bundle), regenerating and encoding the evaluation
// splits from cfg without retraining.
func WithModel(cfg Config, mdl *model.Ensemble) (*Artifacts, error) {
	mcfg := mdl.Config()
	if mcfg.Dim != cfg.Encoder.Dim {
		return nil, fmt.Errorf("pipeline: model dimension %d does not match encoder dimension %d", mcfg.Dim, cfg.Encoder.Dim)
	}
	if mcfg.Classes != cfg.Data.Classes {
		return nil, fmt.Errorf("pipeline: model has %d classes, dataset has %d", mcfg.Classes, cfg.Data.Classes)
	}
	return prepare(cfg, mdl, false)
}

func prepare(cfg Config, mdl *model.Ensemble, train bool) (*Artifacts, error) {
	if len(cfg.Data.Domains) < 2 {
		return nil, fmt.Errorf("pipeline: need at least one source and one target domain")
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		return nil, fmt.Errorf("pipeline: TrainFrac %v outside (0,1)", cfg.TrainFrac)
	}
	ds, err := data.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	enc, err := encode.New(cfg.Encoder)
	if err != nil {
		return nil, err
	}

	encodeSamples := func(samples []data.Sample) ([]model.Sample, error) {
		windows := make([][][]float64, len(samples))
		for i, s := range samples {
			windows[i] = s.Window
		}
		hvs, err := enc.EncodeBatch(windows, cfg.Workers)
		if err != nil {
			return nil, err
		}
		out := make([]model.Sample, len(samples))
		for i, s := range samples {
			out[i] = model.Sample{HV: hvs[i], Class: s.Class, Domain: s.Domain}
		}
		return out, nil
	}

	targetIdx := len(ds.Domains) - 1
	var trainSet, sourceTest []model.Sample
	for d := 0; d < targetIdx; d++ {
		tr, te := data.Split(ds.Domains[d], cfg.TrainFrac)
		// An empty split would silently score 0.0 (or train on nothing);
		// fail loudly with the knobs that caused it instead.
		if len(tr) == 0 || len(te) == 0 {
			return nil, fmt.Errorf(
				"pipeline: source domain %q: TrainFrac %v of %d samples leaves %d train / %d test; both splits must be non-empty (raise PerClass or adjust TrainFrac)",
				cfg.Data.Domains[d].Name, cfg.TrainFrac, len(ds.Domains[d]), len(tr), len(te))
		}
		etr, err := encodeSamples(tr)
		if err != nil {
			return nil, err
		}
		ete, err := encodeSamples(te)
		if err != nil {
			return nil, err
		}
		trainSet = append(trainSet, etr...)
		sourceTest = append(sourceTest, ete...)
	}
	target, err := encodeSamples(ds.Domains[targetIdx])
	if err != nil {
		return nil, err
	}

	if train {
		if err := mdl.Train(trainSet); err != nil {
			return nil, err
		}
	}
	return &Artifacts{
		Config:        cfg,
		Encoder:       enc,
		Model:         mdl,
		SourceTest:    sourceTest,
		Target:        target,
		TargetWindows: data.Windows(ds.Domains[targetIdx]),
	}, nil
}

// EvaluateBaseline scores the held-out source split and the target split
// with the source-only ensemble, without adapting: TargetAdapted stays zero
// and a.Model is left untouched. A bundle saved afterwards serves the
// pre-adaptation model — the starting point for streaming adaptation.
func (a *Artifacts) EvaluateBaseline() (*Result, error) {
	res, _, _, err := a.baseline()
	return res, err
}

// baseline scores the source-only ensemble and hands back the target slices
// so Evaluate can adapt on them without rebuilding.
func (a *Artifacts) baseline() (*Result, []hdc.Vector, []int, error) {
	srcHVs, srcClasses := hvsAndClasses(a.SourceTest)
	tgtHVs, tgtClasses := hvsAndClasses(a.Target)
	if len(srcHVs) == 0 {
		return nil, nil, nil, fmt.Errorf("pipeline: no held-out source samples to evaluate")
	}
	if len(tgtHVs) == 0 {
		return nil, nil, nil, fmt.Errorf("pipeline: no target samples to adapt to")
	}
	workers := a.Config.Workers
	res := &Result{
		SourceAccuracy: evalBatch(srcHVs, srcClasses, a.Model.PredictSourceBatch, workers),
		TargetBaseline: evalBatch(tgtHVs, tgtClasses, a.Model.PredictSourceBatch, workers),
	}
	return res, tgtHVs, tgtClasses, nil
}

// Evaluate runs baseline-eval → adapt → eval on the artifacts' model. It
// mutates a.Model (the ensemble ends up adapted to the target split), which
// is exactly the artifact a caller then saves or serves.
func (a *Artifacts) Evaluate() (*Result, error) {
	res, tgtHVs, tgtClasses, err := a.baseline()
	if err != nil {
		return nil, err
	}
	workers := a.Config.Workers
	stats, err := a.Model.AdaptBatch(tgtHVs, workers)
	if err != nil {
		return nil, err
	}
	res.Adapt = stats
	res.TargetAdapted = evalBatch(tgtHVs, tgtClasses, a.Model.PredictBatch, workers)
	return res, nil
}

// Bundle packages the artifacts' encoder configuration and (possibly
// adapted) model for persistence or serving.
func (a *Artifacts) Bundle() *Bundle {
	return &Bundle{Encoder: a.Encoder.Config(), Model: a.Model}
}

// Run executes generate → encode → train → baseline-eval → adapt → eval.
func Run(cfg Config) (*Result, error) {
	art, err := Train(cfg)
	if err != nil {
		return nil, err
	}
	return art.Evaluate()
}

func hvsAndClasses(samples []model.Sample) ([]hdc.Vector, []int) {
	hvs := make([]hdc.Vector, len(samples))
	classes := make([]int, len(samples))
	for i, s := range samples {
		hvs[i], classes[i] = s.HV, s.Class
	}
	return hvs, classes
}

func evalBatch(hvs []hdc.Vector, classes []int, predictBatch func([]hdc.Vector, int) []int, workers int) float64 {
	if len(hvs) == 0 {
		return 0
	}
	preds := predictBatch(hvs, workers)
	hits := 0
	for i, c := range classes {
		if preds[i] == c {
			hits++
		}
	}
	return float64(hits) / float64(len(hvs))
}
