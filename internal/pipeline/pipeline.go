// Package pipeline wires the SMORE stages — synthetic data generation,
// hypervector encoding, associative-memory training, and similarity-based
// adaptation — into one reproducible run shared by the CLI demo and the
// end-to-end tests. Encoding, prediction, and adaptation all go through the
// batch APIs backed by the shared worker pool, so runs scale across cores
// while staying byte-identical for every worker count.
package pipeline

import (
	"fmt"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
)

// Config is the full pipeline configuration. The last entry of
// Data.Domains is treated as the unlabeled target domain; all earlier
// entries are labeled source domains.
type Config struct {
	Encoder   encode.Config
	Model     model.Config
	Data      data.Config
	TrainFrac float64 // fraction of each source domain used for training
	Workers   int     // worker-pool size for batch stages; <= 0 means GOMAXPROCS
}

// Result summarizes one pipeline run.
type Result struct {
	SourceAccuracy float64          `json:"source_accuracy"` // held-out source-domain accuracy
	TargetBaseline float64          `json:"target_baseline"` // target accuracy before adaptation
	TargetAdapted  float64          `json:"target_adapted"`  // target accuracy after adaptation
	Adapt          model.AdaptStats `json:"adapt_stats"`
	Elapsed        string           `json:"elapsed,omitempty"`
}

// DefaultDomains returns n mildly distorted source domains plus one
// strongly shifted target domain, the shape the demo and tests use.
func DefaultDomains(n int) []data.Shift {
	if n < 1 {
		n = 1
	}
	domains := make([]data.Shift, 0, n+1)
	for i := range n {
		domains = append(domains, data.Shift{
			Name:     fmt.Sprintf("source-%d", i),
			AmpScale: 1 + 0.1*float64(i),
			Offset:   0.05 * float64(i),
			Phase:    0.1 * float64(i),
			NoiseStd: 0.05 + 0.02*float64(i),
		})
	}
	domains = append(domains, data.Shift{
		Name:     "target",
		AmpScale: 0.9,
		Offset:   0.15,
		Phase:    0.3,
		NoiseStd: 0.08,
	})
	return domains
}

// Run executes generate → encode → train → baseline-eval → adapt → eval.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Data.Domains) < 2 {
		return nil, fmt.Errorf("pipeline: need at least one source and one target domain")
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		return nil, fmt.Errorf("pipeline: TrainFrac %v outside (0,1)", cfg.TrainFrac)
	}
	ds, err := data.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	enc, err := encode.New(cfg.Encoder)
	if err != nil {
		return nil, err
	}
	mdl, err := model.New(cfg.Model)
	if err != nil {
		return nil, err
	}

	encodeSamples := func(samples []data.Sample) ([]model.Sample, error) {
		windows := make([][][]float64, len(samples))
		for i, s := range samples {
			windows[i] = s.Window
		}
		hvs, err := enc.EncodeBatch(windows, cfg.Workers)
		if err != nil {
			return nil, err
		}
		out := make([]model.Sample, len(samples))
		for i, s := range samples {
			out[i] = model.Sample{HV: hvs[i], Class: s.Class, Domain: s.Domain}
		}
		return out, nil
	}

	targetIdx := len(ds.Domains) - 1
	var train, sourceTest []model.Sample
	for d := 0; d < targetIdx; d++ {
		tr, te := data.Split(ds.Domains[d], cfg.TrainFrac)
		etr, err := encodeSamples(tr)
		if err != nil {
			return nil, err
		}
		ete, err := encodeSamples(te)
		if err != nil {
			return nil, err
		}
		train = append(train, etr...)
		sourceTest = append(sourceTest, ete...)
	}
	target, err := encodeSamples(ds.Domains[targetIdx])
	if err != nil {
		return nil, err
	}

	if err := mdl.Train(train); err != nil {
		return nil, err
	}

	srcHVs, srcClasses := hvsAndClasses(sourceTest)
	tgtHVs, tgtClasses := hvsAndClasses(target)
	res := &Result{}
	res.SourceAccuracy = evalBatch(srcHVs, srcClasses, mdl.PredictSourceBatch, cfg.Workers)
	res.TargetBaseline = evalBatch(tgtHVs, tgtClasses, mdl.PredictSourceBatch, cfg.Workers)

	stats, err := mdl.AdaptBatch(tgtHVs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	res.Adapt = stats
	res.TargetAdapted = evalBatch(tgtHVs, tgtClasses, mdl.PredictBatch, cfg.Workers)
	return res, nil
}

func hvsAndClasses(samples []model.Sample) ([]hdc.Vector, []int) {
	hvs := make([]hdc.Vector, len(samples))
	classes := make([]int, len(samples))
	for i, s := range samples {
		hvs[i], classes[i] = s.HV, s.Class
	}
	return hvs, classes
}

func evalBatch(hvs []hdc.Vector, classes []int, predictBatch func([]hdc.Vector, int) []int, workers int) float64 {
	if len(hvs) == 0 {
		return 0
	}
	preds := predictBatch(hvs, workers)
	hits := 0
	for i, c := range classes {
		if preds[i] == c {
			hits++
		}
	}
	return float64(hits) / float64(len(hvs))
}
