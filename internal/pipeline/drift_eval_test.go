package pipeline

import (
	"testing"

	"go-arxiv/smore/internal/stream"
)

// TestStreamEvaluateDriftSpawnsAndBeatsFrozen is the acceptance test for the
// continual-adaptation claim: over a two-shift replay the spawn policy must
// open a second target on the second shift and end with higher second-shift
// accuracy than the frozen single-target model.
func TestStreamEvaluateDriftSpawnsAndBeatsFrozen(t *testing.T) {
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.StreamEvaluateDrift(8, DriftConfig{Policy: stream.SpawnOnDrift{Threshold: 0.04}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("phaseA final=%.3f | frozen-on-B=%.3f finalB=%.3f finalA=%.3f spawned=%d targets=%+v",
		res.PhaseA.TargetAdapted, res.FrozenBaselineB, res.FinalB, res.FinalA,
		res.TargetsSpawned, res.Targets)
	if !res.SpawnedSecondTarget {
		t.Fatal("spawn policy never opened a second target over the second shift")
	}
	if len(res.Targets) != 2 {
		t.Fatalf("ended with %d targets, want 2: %+v", len(res.Targets), res.Targets)
	}
	if !res.BeatsBaseline {
		t.Fatalf("continual adaptation (%.3f) did not beat the frozen single-target baseline (%.3f)",
			res.FinalB, res.FrozenBaselineB)
	}
	if len(res.TrajectoryB) != res.BatchesB || len(res.TrajectoryA) != res.BatchesB {
		t.Fatalf("trajectories have %d/%d points, want %d (one per fold)",
			len(res.TrajectoryB), len(res.TrajectoryA), res.BatchesB)
	}
	if res.DriftPolicy != "spawn" {
		t.Fatalf("DriftPolicy = %q, want spawn", res.DriftPolicy)
	}
}

// TestStreamEvaluateDriftNonePolicy pins the control arm: without a drift
// policy the replay folds the second shift into the lone target and never
// spawns, and the phase-A semantics are exactly StreamEvaluate's.
func TestStreamEvaluateDriftNonePolicy(t *testing.T) {
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.StreamEvaluateDrift(8, DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetsSpawned != 0 || res.SpawnedSecondTarget {
		t.Fatalf("none policy spawned: %+v", res)
	}
	if len(res.Targets) != 1 {
		t.Fatalf("none policy ended with %d targets, want the single implicit one", len(res.Targets))
	}
	ref, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.StreamEvaluate(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseA.TargetAdapted != want.TargetAdapted {
		t.Fatalf("phase A diverged from StreamEvaluate: %.4f vs %.4f",
			res.PhaseA.TargetAdapted, want.TargetAdapted)
	}
}
