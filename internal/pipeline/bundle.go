package pipeline

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
)

// Bundle couples the encoder configuration with a trained (and possibly
// adapted) ensemble, so a saved model can be loaded and served without
// re-specifying encoder flags: the item memories are rebuilt
// deterministically from the stored config and seed.
type Bundle struct {
	Encoder encode.Config
	Model   *model.Ensemble
}

// bundleMagic versions the bundle wire format: a 4-byte magic, the encoder
// config (uint32 Dim/Sensors/Levels/NGram, float64 Min/Max, uint64 Seed, all
// little-endian), then the ensemble in model's WriteTo format.
const bundleMagic = "SMB1"

// WriteTo serializes the bundle. Like model.(*Ensemble).WriteTo, the output
// is canonical: save→load→save is byte-identical.
func (b *Bundle) WriteTo(w io.Writer) (int64, error) {
	if b.Model == nil {
		return 0, fmt.Errorf("pipeline: bundle has no model")
	}
	if b.Encoder.Dim != b.Model.Config().Dim {
		return 0, fmt.Errorf("pipeline: bundle encoder dimension %d does not match model dimension %d",
			b.Encoder.Dim, b.Model.Config().Dim)
	}
	var hdr [44]byte
	copy(hdr[:], bundleMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(b.Encoder.Dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(b.Encoder.Sensors))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(b.Encoder.Levels))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(b.Encoder.NGram))
	binary.LittleEndian.PutUint64(hdr[20:], math.Float64bits(b.Encoder.Min))
	binary.LittleEndian.PutUint64(hdr[28:], math.Float64bits(b.Encoder.Max))
	binary.LittleEndian.PutUint64(hdr[36:], b.Encoder.Seed)
	hn, err := w.Write(hdr[:])
	n := int64(hn)
	if err != nil {
		return n, err
	}
	mn, err := b.Model.WriteTo(w)
	return n + mn, err
}

// ReadBundle parses the format written by WriteTo, validating the encoder
// configuration and its consistency with the embedded model.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var hdr [44]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pipeline: reading bundle header: %w", err)
	}
	if string(hdr[:4]) != bundleMagic {
		return nil, fmt.Errorf("pipeline: bad bundle magic %q (unsupported version?)", hdr[:4])
	}
	cfg := encode.Config{
		Dim:     int(binary.LittleEndian.Uint32(hdr[4:])),
		Sensors: int(binary.LittleEndian.Uint32(hdr[8:])),
		Levels:  int(binary.LittleEndian.Uint32(hdr[12:])),
		NGram:   int(binary.LittleEndian.Uint32(hdr[16:])),
		Min:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:])),
		Max:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[28:])),
		Seed:    binary.LittleEndian.Uint64(hdr[36:]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: loaded encoder config invalid: %w", err)
	}
	mdl, err := model.Decode(r)
	if err != nil {
		return nil, err
	}
	if mdl.Config().Dim != cfg.Dim {
		return nil, fmt.Errorf("pipeline: bundle encoder dimension %d does not match model dimension %d",
			cfg.Dim, mdl.Config().Dim)
	}
	return &Bundle{Encoder: cfg, Model: mdl}, nil
}

// SaveFile writes the bundle to path, replacing any existing file only once
// the new bytes are fully on disk: the write goes to a temp file in the same
// directory which is renamed into place, so a failed save can never destroy
// a previously good bundle.
func (b *Bundle) SaveFile(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage its temp file in the working directory:
		// CreateTemp("") falls back to the system temp dir, which is often a
		// different filesystem where the final rename cannot work.
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := b.WriteTo(w); err != nil {
		return cleanup(err)
	}
	if err := w.Flush(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadBundleFile reads a bundle previously written with SaveFile. The file
// must contain exactly one bundle: trailing bytes mean corruption (partial
// overwrite, concatenation) and fail the load rather than silently serving
// whatever prefix parsed.
func LoadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	b, err := ReadBundle(r)
	if err != nil {
		return nil, err
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("pipeline: %s: trailing bytes after bundle payload", path)
	}
	return b, nil
}
