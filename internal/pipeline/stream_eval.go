package pipeline

import (
	"context"
	"fmt"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/stream"
)

// StreamResult summarizes a streamed adaptation replay: the no-adapt
// baseline, the accuracy trajectory over arriving batches, and the final
// adapted accuracy. ADATIME-style: adaptation is evaluated as a trajectory
// over the arriving stream, not a single shot.
type StreamResult struct {
	BatchSize      int              `json:"batch_size"`
	Batches        int              `json:"batches"`
	TargetBaseline float64          `json:"target_baseline"` // target accuracy before any fold
	Trajectory     []float64        `json:"trajectory"`      // target accuracy after each folded batch
	TargetAdapted  float64          `json:"target_adapted"`  // == last trajectory entry
	Adapt          model.AdaptStats `json:"adapt_stats"`     // cumulative over all folds
	Elapsed        string           `json:"elapsed,omitempty"`
}

// StreamEvaluate replays the target split as an arriving stream: the raw
// target windows are enqueued in generation order on a stream.Adapter whose
// micro-batches of batchSize windows are encoded and folded into the model
// via AdaptIncremental, measuring target accuracy after every fold. The
// whole stream is enqueued before the worker starts, so the batch
// boundaries — and therefore the trajectory and the final model — are fully
// deterministic for a fixed batch order.
//
// Like Evaluate, it mutates a.Model (the ensemble ends up adapted to the
// streamed target split).
func (a *Artifacts) StreamEvaluate(batchSize int) (*StreamResult, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("pipeline: stream batch size %d < 1", batchSize)
	}
	tgtHVs, tgtClasses := hvsAndClasses(a.Target)
	if len(tgtHVs) == 0 {
		return nil, fmt.Errorf("pipeline: no target samples to stream")
	}
	windows := a.TargetWindows
	workers := a.Config.Workers
	res := &StreamResult{
		BatchSize:      batchSize,
		TargetBaseline: evalBatch(tgtHVs, tgtClasses, a.Model.PredictSourceBatch, workers),
	}
	// The fold callback runs on the adapter's worker goroutine; Close joins
	// that goroutine before the trajectory is read, so no extra locking is
	// needed here.
	ad := stream.New(
		stream.Config{QueueCap: len(windows), MaxBatch: batchSize},
		func(ws [][][]float64) ([]hdc.Vector, error) {
			return a.Encoder.EncodeBatch(ws, workers)
		},
		func(hvs []hdc.Vector) (model.AdaptStats, error) {
			stats, err := a.Model.AdaptIncremental(hvs, workers)
			if err != nil {
				return stats, err
			}
			res.Trajectory = append(res.Trajectory, evalBatch(tgtHVs, tgtClasses, a.Model.PredictBatch, workers))
			return stats, nil
		},
	)
	if _, err := ad.Enqueue(windows); err != nil {
		return nil, fmt.Errorf("pipeline: enqueueing target stream: %w", err)
	}
	ad.Start()
	if err := ad.Close(context.Background()); err != nil {
		return nil, err
	}
	st := ad.Stats()
	if st.EncodeErrors > 0 || st.FoldErrors > 0 {
		msg := st.LastError
		if msg == "" {
			// A clean fold after the failure cleared the sticky last-error;
			// fall back to the cumulative books.
			msg = fmt.Sprintf("%d encode / %d fold errors (%d windows lost)",
				st.EncodeErrors, st.FoldErrors, st.WindowsLost)
		}
		return nil, fmt.Errorf("pipeline: stream replay failed: %s", msg)
	}
	res.Batches = int(st.BatchesFolded)
	res.Adapt = st.Adapt
	res.TargetAdapted = res.Trajectory[len(res.Trajectory)-1]
	return res, nil
}
