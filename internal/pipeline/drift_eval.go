package pipeline

import (
	"bytes"
	"context"
	"fmt"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
	"go-arxiv/smore/internal/stream"
)

// DriftConfig parameterizes the second phase of a two-shift drift replay.
type DriftConfig struct {
	// Policy decides when the replay spawns a fresh target; nil means the
	// "none" policy (the replay then measures how a single target degrades).
	Policy stream.DriftPolicy
	// MaxTargets bounds the live target set under a retiring policy;
	// <= 0 means stream.DefaultMaxTargets.
	MaxTargets int
	// Shift distorts the second-phase domain. The zero value picks a harsh
	// default far off the first target distribution.
	Shift data.Shift
	// Seed seeds the second-phase dataset; 0 means the run's Data.Seed.
	// The class signatures derive from this seed, so any other value
	// changes the classes themselves, not just the covariate shift.
	Seed uint64
}

// DefaultDriftShift is the second-phase distortion DriftConfig falls back
// to: far enough from DefaultDomains' target in hypervector space that a
// similarity-trajectory detector with a threshold around 0.04 fires, but
// with enough class signal left that a freshly spawned target can adapt to
// it. (Harsher shifts trip the detector sooner but destroy the class
// structure pseudo-labeling bootstraps from, leaving every arm at chance.)
func DefaultDriftShift() data.Shift {
	return data.Shift{Name: "shift-2", AmpScale: 0.85, Offset: 0.5, Phase: 0.6, NoiseStd: 0.1}
}

// DetectorDriftShift is a much harsher distortion that reliably trips the
// similarity detector at the default 0.1 threshold, at the cost of most of
// the class signal. Use it to exercise the spawn/rollback machinery itself
// (the e2e script streams it at the serving layer); use DefaultDriftShift
// when post-spawn adaptation quality matters.
func DetectorDriftShift() data.Shift {
	return data.Shift{Name: "shift-harsh", AmpScale: 0.2, Offset: 2.2, Phase: 1.6, NoiseStd: 0.4}
}

// DriftSplit generates the second-shift sample split a drift replay streams
// after the target domain: same class signatures as the run's dataset
// (unless dcfg.Seed overrides), distorted by dcfg.Shift. Exposed so the
// CLI's -dump-drift can hand scripts the same kind of windows
// StreamEvaluateDrift streams.
func (a *Artifacts) DriftSplit(dcfg DriftConfig) ([]data.Sample, error) {
	if dcfg.Shift == (data.Shift{}) {
		dcfg.Shift = DefaultDriftShift()
	}
	if dcfg.Seed == 0 {
		dcfg.Seed = a.Config.Data.Seed
	}
	bcfg := a.Config.Data
	bcfg.Seed = dcfg.Seed
	bcfg.Domains = []data.Shift{dcfg.Shift}
	ds, err := data.Generate(bcfg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: generating drift phase: %w", err)
	}
	return ds.Domains[0], nil
}

// DriftResult summarizes a two-shift streamed replay: phase A adapts to the
// configured target domain exactly like StreamEvaluate, then phase B streams
// a second, differently-shifted domain through a drift-policy-wired adapter.
type DriftResult struct {
	PhaseA *StreamResult `json:"phase_a"`

	ShiftB   string `json:"shift_b"`
	BatchesB int    `json:"batches_b"`
	// FrozenBaselineB scores the frozen post-phase-A model on the phase-B
	// split: what serving accuracy looks like if adaptation stops at the
	// first target. The drift policy has to beat this.
	FrozenBaselineB float64 `json:"frozen_baseline_b"`
	// TrajectoryB is phase-B accuracy after each phase-B fold.
	TrajectoryB []float64 `json:"trajectory_b"`
	// TrajectoryA tracks phase-A (first target) accuracy alongside, one
	// entry per phase-B fold — the catastrophic-forgetting axis.
	TrajectoryA []float64 `json:"trajectory_a"`
	FinalB      float64   `json:"final_b"`
	FinalA      float64   `json:"final_a"`

	DriftPolicy         string             `json:"drift_policy"`
	TargetsSpawned      int64              `json:"targets_spawned"`
	TargetsRetired      int64              `json:"targets_retired"`
	SpawnedSecondTarget bool               `json:"spawned_second_target"`
	BeatsBaseline       bool               `json:"beats_baseline"`
	Targets             []model.TargetInfo `json:"targets"`
	Elapsed             string             `json:"elapsed,omitempty"`
}

// StreamEvaluateDrift replays a synthetic two-shift sequence as ONE
// continuous stream: the target split arrives first (phase A, building the
// first target and its similarity trajectory — identical fold-for-fold to
// StreamEvaluate), then a second, differently-shifted domain arrives (phase
// B) on the same drift-policy-wired adapter, so the detector sees the shift
// as a similarity cliff against the phase-A trajectory. The model is frozen
// through its codec at the phase boundary and scored on the phase-B split,
// so the result reports whether continual adaptation beat stopping after
// the first shift.
//
// Like StreamEvaluate, it mutates a.Model.
func (a *Artifacts) StreamEvaluateDrift(batchSize int, dcfg DriftConfig) (*DriftResult, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("pipeline: stream batch size %d < 1", batchSize)
	}
	if dcfg.Shift == (data.Shift{}) {
		dcfg.Shift = DefaultDriftShift()
	}
	if dcfg.Seed == 0 {
		dcfg.Seed = a.Config.Data.Seed
	}
	if dcfg.Policy == nil {
		dcfg.Policy = stream.NoDrift{}
	}

	bSamples, err := a.DriftSplit(dcfg)
	if err != nil {
		return nil, err
	}
	bWindows := data.Windows(bSamples)
	workers := a.Config.Workers
	bHVs := make([]hdc.Vector, len(bSamples))
	bClasses := make([]int, len(bSamples))
	{
		hvs, err := a.Encoder.EncodeBatch(bWindows, workers)
		if err != nil {
			return nil, fmt.Errorf("pipeline: encoding drift phase: %w", err)
		}
		for i, s := range bSamples {
			bHVs[i], bClasses[i] = hvs[i], s.Class
		}
	}
	aHVs, aClasses := hvsAndClasses(a.Target)
	if len(aHVs) == 0 {
		return nil, fmt.Errorf("pipeline: no target samples to stream")
	}
	aWindows := a.TargetWindows
	phaseABatches := (len(aWindows) + batchSize - 1) / batchSize

	res := &DriftResult{
		PhaseA: &StreamResult{
			BatchSize:      batchSize,
			Batches:        phaseABatches,
			TargetBaseline: evalBatch(aHVs, aClasses, a.Model.PredictSourceBatch, workers),
		},
		ShiftB:      dcfg.Shift.Name,
		DriftPolicy: dcfg.Policy.Name(),
	}

	// The fold callback runs on the adapter's single worker goroutine and
	// Close joins it, so the fold counter, the trajectories, and the
	// phase-boundary freeze need no locking.
	folds := 0
	var frozen *model.Ensemble
	ad := stream.New(
		stream.Config{
			QueueCap: len(aWindows) + len(bWindows), MaxBatch: batchSize,
			Policy: dcfg.Policy, MaxTargets: dcfg.MaxTargets,
			// The replay owns the model exclusively, so the closures need no
			// locking beyond what the Ensemble does itself.
			Sim: a.Model.BatchSimilarity,
			Spawn: func(maxTargets int, retire bool) (string, string, error) {
				return a.Model.SpawnTarget("", maxTargets, retire)
			},
		},
		func(ws [][][]float64) ([]hdc.Vector, error) {
			return a.Encoder.EncodeBatch(ws, workers)
		},
		func(hvs []hdc.Vector) (model.AdaptStats, error) {
			stats, err := a.Model.AdaptIncremental(hvs, workers)
			if err != nil {
				return stats, err
			}
			if folds < phaseABatches {
				res.PhaseA.Trajectory = append(res.PhaseA.Trajectory, evalBatch(aHVs, aClasses, a.Model.PredictBatch, workers))
			} else {
				res.TrajectoryB = append(res.TrajectoryB, evalBatch(bHVs, bClasses, a.Model.PredictBatch, workers))
				res.TrajectoryA = append(res.TrajectoryA, evalBatch(aHVs, aClasses, a.Model.PredictBatch, workers))
			}
			folds++
			// Freeze the post-phase-A model through its own codec right
			// after the last phase-A fold — before the drift check of the
			// first phase-B batch can spawn — so the frozen ensemble is the
			// exact single-target state the policy arm is compared against.
			if folds == phaseABatches {
				var buf bytes.Buffer
				if _, err := a.Model.WriteTo(&buf); err != nil {
					return stats, fmt.Errorf("freezing phase-A model: %w", err)
				}
				frozen, err = model.Decode(&buf)
				if err != nil {
					return stats, fmt.Errorf("freezing phase-A model: %w", err)
				}
			}
			return stats, nil
		},
	)
	// Both phases are enqueued before the worker starts, so the batch
	// boundaries — and the fold at which the shift arrives — are fully
	// deterministic. Windows from the two phases never share a micro-batch:
	// phase A's window count is a multiple-or-remainder split that ends at
	// the queue boundary, and the worker folds at most batchSize at a time
	// starting from position 0, so phase B starts a fresh batch only when
	// phase A's count is a multiple of batchSize.
	if len(aWindows)%batchSize != 0 {
		return nil, fmt.Errorf("pipeline: phase A window count %d is not a multiple of batch size %d (the phase boundary would share a fold)", len(aWindows), batchSize)
	}
	if _, err := ad.Enqueue(aWindows); err != nil {
		return nil, fmt.Errorf("pipeline: enqueueing phase A: %w", err)
	}
	if _, err := ad.Enqueue(bWindows); err != nil {
		return nil, fmt.Errorf("pipeline: enqueueing phase B: %w", err)
	}
	ad.Start()
	if err := ad.Close(context.Background()); err != nil {
		return nil, err
	}
	st := ad.Stats()
	if st.EncodeErrors > 0 || st.FoldErrors > 0 {
		msg := st.LastError
		if msg == "" {
			msg = fmt.Sprintf("%d encode / %d fold errors (%d windows lost)",
				st.EncodeErrors, st.FoldErrors, st.WindowsLost)
		}
		return nil, fmt.Errorf("pipeline: drift replay failed: %s", msg)
	}
	if len(res.PhaseA.Trajectory) == 0 || len(res.TrajectoryB) == 0 || frozen == nil {
		return nil, fmt.Errorf("pipeline: drift replay folded %d/%d phase batches", len(res.PhaseA.Trajectory), len(res.TrajectoryB))
	}
	res.PhaseA.TargetAdapted = res.PhaseA.Trajectory[len(res.PhaseA.Trajectory)-1]
	res.FrozenBaselineB = evalBatch(bHVs, bClasses, frozen.PredictBatch, workers)
	res.BatchesB = int(st.BatchesFolded) - phaseABatches
	res.TargetsSpawned = st.TargetsSpawned
	res.TargetsRetired = st.TargetsRetired
	res.SpawnedSecondTarget = st.TargetsSpawned > 0
	res.Targets = a.Model.TargetInfos()
	res.FinalB = res.TrajectoryB[len(res.TrajectoryB)-1]
	res.FinalA = res.TrajectoryA[len(res.TrajectoryA)-1]
	res.BeatsBaseline = res.FinalB > res.FrozenBaselineB
	return res, nil
}
