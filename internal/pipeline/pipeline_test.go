package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
)

// e2eConfig is a deliberately small but realistic configuration whose
// behavior is pinned by the fixed seed: the target domain's shift drops the
// no-adapt baseline well below the source accuracy, leaving the adaptation
// loop clear room to improve.
func e2eConfig(seed uint64) Config {
	return Config{
		Encoder: encode.Config{
			Dim: 1024, Sensors: 3, Levels: 16, NGram: 3, Min: -3, Max: 3, Seed: seed,
		},
		Model: model.Config{
			Dim: 1024, Classes: 4, RetrainEpochs: 2, AdaptEpochs: 10,
			Confidence: 0.005, AdaptRate: 2,
		},
		Data: data.Config{
			Sensors: 3, Classes: 4, WindowLen: 48, PerClass: 24, Seed: seed,
			Domains: DefaultDomains(2),
		},
		TrainFrac: 0.75,
	}
}

// TestAdaptationImprovesTargetAccuracy is the acceptance test for SMORE's
// core claim on the seeded synthetic dataset: similarity-based adaptation
// must land strictly above the no-adapt source-ensemble baseline on the
// shifted target domain.
func TestAdaptationImprovesTargetAccuracy(t *testing.T) {
	res, err := Run(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("source=%.3f baseline=%.3f adapted=%.3f pseudo-labels=%d skipped=%d",
		res.SourceAccuracy, res.TargetBaseline, res.TargetAdapted,
		res.Adapt.PseudoLabels, res.Adapt.Skipped)
	if res.SourceAccuracy < 0.9 {
		t.Errorf("source accuracy %.3f, want >= 0.9 (model failed to learn the source domains)", res.SourceAccuracy)
	}
	if res.TargetBaseline >= res.SourceAccuracy {
		t.Errorf("target baseline %.3f not below source accuracy %.3f: the domain shift is not biting",
			res.TargetBaseline, res.SourceAccuracy)
	}
	if res.TargetAdapted <= res.TargetBaseline {
		t.Errorf("adaptation did not improve target accuracy: baseline %.3f, adapted %.3f",
			res.TargetBaseline, res.TargetAdapted)
	}
	if res.Adapt.PseudoLabels == 0 {
		t.Error("adaptation applied no pseudo-labels")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("identical configs produced different results:\n%+v\n%+v", a, b)
	}
}

// TestStreamEvaluateMatchesOneShot is the acceptance test for the streaming
// replay: adapting over an arriving stream of micro-batches must end at the
// same final target accuracy as the one-shot AdaptBatch path on the e2e
// config, with the baseline untouched.
func TestStreamEvaluateMatchesOneShot(t *testing.T) {
	one, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := one.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	str, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := str.StreamEvaluate(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("one-shot baseline=%.3f adapted=%.3f | streamed batches=%d trajectory=%.3v",
		oneShot.TargetBaseline, oneShot.TargetAdapted, streamed.Batches, streamed.Trajectory)
	if streamed.TargetBaseline != oneShot.TargetBaseline {
		t.Errorf("stream baseline %.4f != one-shot baseline %.4f (same model, no folds yet)",
			streamed.TargetBaseline, oneShot.TargetBaseline)
	}
	if streamed.TargetAdapted != oneShot.TargetAdapted {
		t.Errorf("streamed final accuracy %.4f != one-shot adapted accuracy %.4f",
			streamed.TargetAdapted, oneShot.TargetAdapted)
	}
	if streamed.TargetAdapted <= streamed.TargetBaseline {
		t.Errorf("streamed adaptation did not improve: baseline %.4f, final %.4f",
			streamed.TargetBaseline, streamed.TargetAdapted)
	}
	wantBatches := (len(str.Target) + 7) / 8
	if streamed.Batches != wantBatches || len(streamed.Trajectory) != wantBatches {
		t.Errorf("folded %d batches with %d trajectory points, want %d of each",
			streamed.Batches, len(streamed.Trajectory), wantBatches)
	}
	if streamed.Adapt.PseudoLabels == 0 {
		t.Error("streamed adaptation applied no pseudo-labels")
	}
	if !str.Model.Adapted() {
		t.Error("model not adapted after StreamEvaluate")
	}
}

// TestStreamEvaluateDeterministic replays the same stream twice from
// scratch: with a fixed batch order the full trajectory must be
// reproducible bit-for-bit, at any worker count.
func TestStreamEvaluateDeterministic(t *testing.T) {
	replay := func(workers int) *StreamResult {
		cfg := e2eConfig(7)
		cfg.Workers = workers
		art, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := art.StreamEvaluate(8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := replay(1), replay(1), replay(4)
	for name, other := range map[string]*StreamResult{"rerun": b, "workers=4": c} {
		if a.TargetBaseline != other.TargetBaseline || a.TargetAdapted != other.TargetAdapted ||
			a.Batches != other.Batches || a.Adapt != other.Adapt {
			t.Fatalf("%s diverged:\n%+v\n%+v", name, a, other)
		}
		if len(a.Trajectory) != len(other.Trajectory) {
			t.Fatalf("%s trajectory length %d != %d", name, len(other.Trajectory), len(a.Trajectory))
		}
		for i := range a.Trajectory {
			if a.Trajectory[i] != other.Trajectory[i] {
				t.Fatalf("%s trajectory[%d] = %v, want %v", name, i, other.Trajectory[i], a.Trajectory[i])
			}
		}
	}
}

func TestStreamEvaluateRejectsBadBatchSize(t *testing.T) {
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := art.StreamEvaluate(0); err == nil {
		t.Fatal("StreamEvaluate accepted batch size 0")
	}
}

func TestRunConfigErrors(t *testing.T) {
	cfg := e2eConfig(7)
	cfg.Data.Domains = cfg.Data.Domains[:1]
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a single-domain config")
	}
	cfg = e2eConfig(7)
	cfg.TrainFrac = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted TrainFrac > 1")
	}
	cfg = e2eConfig(7)
	cfg.Encoder.Dim = 100
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an invalid encoder dimension")
	}
}

// TestRunEmptySplitError pins the fix for silently reporting 0.0 accuracy:
// a TrainFrac that leaves a source domain with an empty train or test split
// must produce a descriptive error, not a zero-sample evaluation.
func TestRunEmptySplitError(t *testing.T) {
	cfg := e2eConfig(7)
	cfg.Data.PerClass = 1
	cfg.Data.Classes = 2
	cfg.Model.Classes = 2
	cfg.TrainFrac = 0.4 // int(2*0.4) = 0 training samples per source domain
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("Run accepted a config whose source split is empty")
	}
	if !strings.Contains(err.Error(), "TrainFrac") {
		t.Fatalf("error %q does not mention TrainFrac", err)
	}
}

// TestTrainEvaluateMatchesRun checks the train-once/serve-many split stays
// equivalent to the monolithic path.
func TestTrainEvaluateMatchesRun(t *testing.T) {
	want, err := Run(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := art.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("Train+Evaluate result %+v differs from Run %+v", got, want)
	}
	if !art.Model.Adapted() {
		t.Fatal("Evaluate left the artifacts' model unadapted")
	}
}

// TestBundleRoundTrip is the serve-path persistence contract: a bundle
// survives save→load with byte-identical predictions on freshly encoded
// windows, the codec is canonical, and a loaded model keeps evaluating
// exactly like the original via WithModel.
func TestBundleRoundTrip(t *testing.T) {
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := art.Evaluate()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := art.Bundle().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	b, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if b.Encoder != art.Encoder.Config() {
		t.Fatalf("loaded encoder config %+v, want %+v", b.Encoder, art.Encoder.Config())
	}
	if !b.Model.Adapted() {
		t.Fatal("loaded model lost its adapted target model")
	}
	var buf2 bytes.Buffer
	if _, err := b.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatal("bundle load→save is not byte-identical")
	}

	// Loaded model + regenerated eval splits must predict identically to
	// the in-memory original on every held-out sample.
	loadedArt, err := WithModel(e2eConfig(7), b.Model)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range art.Target {
		if a, g := art.Model.Predict(s.HV), loadedArt.Model.Predict(loadedArt.Target[i].HV); a != g {
			t.Fatalf("target sample %d: original predicts %d, loaded predicts %d", i, a, g)
		}
	}
	// Re-running Evaluate re-adapts the loaded model from its sources over
	// the same targets; everything is deterministic, so the numbers match.
	got, err := loadedArt.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("loaded-model Evaluate %+v differs from original %+v", got, want)
	}
}

func TestReadBundleErrors(t *testing.T) {
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := art.Bundle().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	badMagic := bytes.Clone(good)
	copy(badMagic, "NOPE")
	for _, tt := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", badMagic},
		{"truncated header", good[:20]},
		{"truncated model", good[:len(good)/2]},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadBundle(bytes.NewReader(tt.data)); err == nil {
				t.Error("ReadBundle accepted corrupt input")
			}
		})
	}
}

func TestBundleFileRoundTrip(t *testing.T) {
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.smore")
	if err := art.Bundle().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundleFile(path); err != nil {
		t.Fatal(err)
	}
	// Saving over an existing bundle must go through a same-directory temp
	// file + rename, leaving no stragglers.
	if err := art.Bundle().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("bundle directory holds %d entries after re-save, want 1", len(entries))
	}

	// A bare relative filename must also save (temp file staged in the
	// working directory, not the system temp dir on another filesystem).
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd) //nolint:errcheck
	if err := art.Bundle().SaveFile("bare.smore"); err != nil {
		t.Fatalf("SaveFile with a bare filename: %v", err)
	}
	if _, err := LoadBundleFile("bare.smore"); err != nil {
		t.Fatal(err)
	}

	// Trailing garbage after the payload must fail the load, not silently
	// serve the parseable prefix.
	raw, err := os.ReadFile("bare.smore")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("trailing.smore", append(raw, 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundleFile("trailing.smore"); err == nil {
		t.Error("LoadBundleFile accepted a bundle with trailing bytes")
	}
}

func TestWithModelMismatch(t *testing.T) {
	art, err := Train(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := e2eConfig(7)
	cfg.Encoder.Dim = 2048
	cfg.Model.Dim = 2048
	if _, err := WithModel(cfg, art.Model); err == nil {
		t.Error("WithModel accepted a model whose dimension mismatches the encoder")
	}
	cfg = e2eConfig(7)
	cfg.Data.Classes = 5
	cfg.Model.Classes = 5
	if _, err := WithModel(cfg, art.Model); err == nil {
		t.Error("WithModel accepted a model whose class count mismatches the dataset")
	}
}

func TestDefaultDomains(t *testing.T) {
	doms := DefaultDomains(3)
	if len(doms) != 4 {
		t.Fatalf("DefaultDomains(3) returned %d domains, want 4", len(doms))
	}
	if doms[len(doms)-1].Name != "target" {
		t.Fatal("last domain is not the target")
	}
	if len(DefaultDomains(0)) != 2 {
		t.Fatal("DefaultDomains(0) should clamp to one source plus target")
	}
}
