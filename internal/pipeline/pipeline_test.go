package pipeline

import (
	"testing"

	"go-arxiv/smore/internal/data"
	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/model"
)

// e2eConfig is a deliberately small but realistic configuration whose
// behavior is pinned by the fixed seed: the target domain's shift drops the
// no-adapt baseline well below the source accuracy, leaving the adaptation
// loop clear room to improve.
func e2eConfig(seed uint64) Config {
	return Config{
		Encoder: encode.Config{
			Dim: 1024, Sensors: 3, Levels: 16, NGram: 3, Min: -3, Max: 3, Seed: seed,
		},
		Model: model.Config{
			Dim: 1024, Classes: 4, RetrainEpochs: 2, AdaptEpochs: 10,
			Confidence: 0.005, AdaptRate: 2,
		},
		Data: data.Config{
			Sensors: 3, Classes: 4, WindowLen: 48, PerClass: 24, Seed: seed,
			Domains: DefaultDomains(2),
		},
		TrainFrac: 0.75,
	}
}

// TestAdaptationImprovesTargetAccuracy is the acceptance test for SMORE's
// core claim on the seeded synthetic dataset: similarity-based adaptation
// must land strictly above the no-adapt source-ensemble baseline on the
// shifted target domain.
func TestAdaptationImprovesTargetAccuracy(t *testing.T) {
	res, err := Run(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("source=%.3f baseline=%.3f adapted=%.3f pseudo-labels=%d skipped=%d",
		res.SourceAccuracy, res.TargetBaseline, res.TargetAdapted,
		res.Adapt.PseudoLabels, res.Adapt.Skipped)
	if res.SourceAccuracy < 0.9 {
		t.Errorf("source accuracy %.3f, want >= 0.9 (model failed to learn the source domains)", res.SourceAccuracy)
	}
	if res.TargetBaseline >= res.SourceAccuracy {
		t.Errorf("target baseline %.3f not below source accuracy %.3f: the domain shift is not biting",
			res.TargetBaseline, res.SourceAccuracy)
	}
	if res.TargetAdapted <= res.TargetBaseline {
		t.Errorf("adaptation did not improve target accuracy: baseline %.3f, adapted %.3f",
			res.TargetBaseline, res.TargetAdapted)
	}
	if res.Adapt.PseudoLabels == 0 {
		t.Error("adaptation applied no pseudo-labels")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(e2eConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("identical configs produced different results:\n%+v\n%+v", a, b)
	}
}

func TestRunConfigErrors(t *testing.T) {
	cfg := e2eConfig(7)
	cfg.Data.Domains = cfg.Data.Domains[:1]
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a single-domain config")
	}
	cfg = e2eConfig(7)
	cfg.TrainFrac = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted TrainFrac > 1")
	}
	cfg = e2eConfig(7)
	cfg.Encoder.Dim = 100
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an invalid encoder dimension")
	}
}

func TestDefaultDomains(t *testing.T) {
	doms := DefaultDomains(3)
	if len(doms) != 4 {
		t.Fatalf("DefaultDomains(3) returned %d domains, want 4", len(doms))
	}
	if doms[len(doms)-1].Name != "target" {
		t.Fatal("last domain is not the target")
	}
	if len(DefaultDomains(0)) != 2 {
		t.Fatal("DefaultDomains(0) should clamp to one source plus target")
	}
}
