package pipeline

import (
	"encoding/json"
	"strings"
	"testing"

	"go-arxiv/smore/internal/model"
)

// ablateConfig is a deliberately tiny sweep base so the full default grid
// stays fast in the unit suite.
func ablateConfig() Config {
	cfg := e2eConfig(0) // seeds are overridden per cell
	cfg.Encoder.Dim = 512
	cfg.Model.Dim = 512
	cfg.Model.AdaptEpochs = 5
	cfg.Data.WindowLen = 24
	cfg.Data.PerClass = 12
	return cfg
}

// TestAblateSweep is the acceptance test for the ablation runner: the
// default grid (4 strategies × 2 seeds) must produce a cell per
// combination, valid JSON, a Markdown table mentioning every strategy, and
// at least one non-default strategy whose accepted-pseudo-label counts
// differ from the default recipe's on the same seeds.
func TestAblateSweep(t *testing.T) {
	res, err := Ablate(AblateSpec{Base: ablateConfig(), Seeds: []uint64{42, 43}})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(DefaultAblateStrategies()) * 2
	if len(res.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(res.Cells), wantCells)
	}
	if len(res.Summary) != len(DefaultAblateStrategies()) {
		t.Fatalf("%d summaries, want %d", len(res.Summary), len(DefaultAblateStrategies()))
	}

	byStrategy := map[string][]AblateCell{}
	for _, c := range res.Cells {
		byStrategy[c.Strategy] = append(byStrategy[c.Strategy], c)
		if c.Adapt.Epochs == 0 {
			t.Errorf("cell %s/%d ran zero adaptation epochs", c.Strategy, c.Seed)
		}
	}
	def := byStrategy["margin+constant+bundle"]
	if len(def) != 2 {
		t.Fatalf("default strategy has %d cells, want 2", len(def))
	}
	countsDiffer := false
	for name, cells := range byStrategy {
		if name == "margin+constant+bundle" {
			continue
		}
		for i, c := range cells {
			if c.Adapt.PseudoLabels != def[i].Adapt.PseudoLabels {
				countsDiffer = true
			}
		}
	}
	if !countsDiffer {
		t.Error("no non-default strategy changed the accepted-pseudo-label counts: the grid is not exercising the strategies")
	}

	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back AblateResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("ablate JSON does not round-trip: %v", err)
	}

	md := res.Markdown()
	for _, s := range DefaultAblateStrategies() {
		if !strings.Contains(md, "`"+s+"`") {
			t.Errorf("markdown table missing strategy %q:\n%s", s, md)
		}
	}
	if !strings.Contains(md, "| strategy | seed |") {
		t.Errorf("markdown missing per-cell header:\n%s", md)
	}
}

// TestAblateValidatesSpecs pins the fail-fast contract: a bad strategy spec
// must error before any cell trains.
func TestAblateValidatesSpecs(t *testing.T) {
	_, err := Ablate(AblateSpec{Base: ablateConfig(), Strategies: []string{"margin+constant+nope"}})
	if err == nil {
		t.Fatal("bad strategy spec accepted")
	}
}

// TestTrainAppliesStrategy pins that pipeline.Config.Strategy reaches the
// trained ensemble.
func TestTrainAppliesStrategy(t *testing.T) {
	cfg := ablateConfig()
	var err error
	if cfg.Strategy, err = model.ParseStrategySpec("entropy+anneal+ema"); err != nil {
		t.Fatal(err)
	}
	art, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := art.Model.Strategy().String(); got != "entropy+anneal+ema" {
		t.Fatalf("trained model strategy %q, want entropy+anneal+ema", got)
	}
}
