package pipeline

import (
	"fmt"
	"strings"
	"time"

	"go-arxiv/smore/internal/model"
)

// AblateSpec describes an ablation sweep: a strategy grid × seeds over the
// synthetic generator, every cell running the full generate → encode →
// train → adapt → eval pipeline on the deterministic worker pool.
type AblateSpec struct {
	// Base is the pipeline configuration shared by every cell; each cell
	// overrides the data and encoder seeds with its own seed and installs
	// its own adaptation strategy.
	Base Config
	// Strategies are "confidence+schedule+update" specs (the format of
	// model.Strategy.String); empty means DefaultAblateStrategies.
	Strategies []string
	// Seeds are the master seeds swept per strategy; empty means {42, 43}.
	Seeds []uint64
}

// DefaultAblateStrategies is the stock grid: the paper's recipe plus one
// variant along each axis (confidence rule, schedule, update rule).
func DefaultAblateStrategies() []string {
	return []string{
		"margin+constant+bundle",
		"entropy+constant+bundle",
		"margin+anneal+bundle",
		"margin+constant+ema",
	}
}

// AblateCell is one (strategy, seed) run of the sweep.
type AblateCell struct {
	Strategy       string           `json:"strategy"`
	Seed           uint64           `json:"seed"`
	SourceAccuracy float64          `json:"source_accuracy"`
	TargetBaseline float64          `json:"target_baseline"`
	TargetAdapted  float64          `json:"target_adapted"`
	Delta          float64          `json:"delta"`
	Adapt          model.AdaptStats `json:"adapt_stats"`
	WallMillis     float64          `json:"wall_ms"`
}

// AblateSummary aggregates one strategy's cells across seeds.
type AblateSummary struct {
	Strategy      string  `json:"strategy"`
	MeanBaseline  float64 `json:"mean_baseline"`
	MeanAdapted   float64 `json:"mean_adapted"`
	MeanDelta     float64 `json:"mean_delta"`
	PseudoLabels  int     `json:"pseudo_labels"` // total accepted across seeds
	Skipped       int     `json:"skipped"`       // total skipped across seeds
	MeanWallMilli float64 `json:"mean_wall_ms"`
}

// AblateResult is the full sweep output: the grid, every cell, and the
// per-strategy aggregate, ready for JSON emission or Markdown rendering.
type AblateResult struct {
	Strategies []string        `json:"strategies"`
	Seeds      []uint64        `json:"seeds"`
	Cells      []AblateCell    `json:"cells"`
	Summary    []AblateSummary `json:"summary"`
	Elapsed    string          `json:"elapsed,omitempty"`
}

// Ablate runs the sweep cell by cell (each cell already saturates the
// worker pool internally, so cells run sequentially for stable wall-time
// numbers). Strategy specs are validated up front so a typo fails before
// any training starts.
func Ablate(spec AblateSpec) (*AblateResult, error) {
	specs := spec.Strategies
	if len(specs) == 0 {
		specs = DefaultAblateStrategies()
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{42, 43}
	}
	strategies := make([]model.Strategy, len(specs))
	for i, s := range specs {
		strat, err := model.ParseStrategySpec(s)
		if err != nil {
			return nil, fmt.Errorf("pipeline: ablate strategy %d: %w", i, err)
		}
		strategies[i] = strat
	}

	res := &AblateResult{Strategies: specs, Seeds: seeds}
	start := time.Now()
	for i, strat := range strategies {
		sum := AblateSummary{Strategy: specs[i]}
		for _, seed := range seeds {
			cfg := spec.Base
			cfg.Strategy = strat
			cfg.Data.Seed = seed
			cfg.Encoder.Seed = seed
			cellStart := time.Now()
			r, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("pipeline: ablate %s seed %d: %w", specs[i], seed, err)
			}
			wall := float64(time.Since(cellStart).Microseconds()) / 1e3
			res.Cells = append(res.Cells, AblateCell{
				Strategy:       specs[i],
				Seed:           seed,
				SourceAccuracy: r.SourceAccuracy,
				TargetBaseline: r.TargetBaseline,
				TargetAdapted:  r.TargetAdapted,
				Delta:          r.TargetAdapted - r.TargetBaseline,
				Adapt:          r.Adapt,
				WallMillis:     wall,
			})
			sum.MeanBaseline += r.TargetBaseline
			sum.MeanAdapted += r.TargetAdapted
			sum.PseudoLabels += r.Adapt.PseudoLabels
			sum.Skipped += r.Adapt.Skipped
			sum.MeanWallMilli += wall
		}
		n := float64(len(seeds))
		sum.MeanBaseline /= n
		sum.MeanAdapted /= n
		sum.MeanDelta = sum.MeanAdapted - sum.MeanBaseline
		sum.MeanWallMilli /= n
		res.Summary = append(res.Summary, sum)
	}
	res.Elapsed = time.Since(start).Round(time.Millisecond).String()
	return res, nil
}

// Markdown renders the sweep as two GitHub-flavored tables: every cell,
// then the per-strategy aggregate.
func (r *AblateResult) Markdown() string {
	var b strings.Builder
	b.WriteString("### SMORE adaptation-strategy ablation\n\n")
	b.WriteString("| strategy | seed | baseline | adapted | delta | pseudo-labels | skipped | epochs | wall |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "| `%s` | %d | %.3f | %.3f | %+.3f | %d | %d | %d | %.0fms |\n",
			c.Strategy, c.Seed, c.TargetBaseline, c.TargetAdapted, c.Delta,
			c.Adapt.PseudoLabels, c.Adapt.Skipped, c.Adapt.Epochs, c.WallMillis)
	}
	b.WriteString("\n**Per-strategy means over ")
	fmt.Fprintf(&b, "%d seed(s):**\n\n", len(r.Seeds))
	b.WriteString("| strategy | baseline | adapted | delta | pseudo-labels | skipped | wall |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, s := range r.Summary {
		fmt.Fprintf(&b, "| `%s` | %.3f | %.3f | %+.3f | %d | %d | %.0fms |\n",
			s.Strategy, s.MeanBaseline, s.MeanAdapted, s.MeanDelta,
			s.PseudoLabels, s.Skipped, s.MeanWallMilli)
	}
	return b.String()
}
