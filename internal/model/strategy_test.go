package model

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"go-arxiv/smore/internal/hdc"
)

// allStrategyCombos enumerates every registered confidence × schedule ×
// update combination.
func allStrategyCombos(t *testing.T) []Strategy {
	t.Helper()
	var out []Strategy
	for _, c := range ConfidenceRuleNames() {
		for _, s := range ScheduleNames() {
			for _, u := range UpdateRuleNames() {
				strat, err := ParseStrategy(c, s, u)
				if err != nil {
					t.Fatalf("ParseStrategy(%s,%s,%s): %v", c, s, u, err)
				}
				out = append(out, strat)
			}
		}
	}
	return out
}

func TestStrategyParse(t *testing.T) {
	def, err := ParseStrategySpec("")
	if err != nil {
		t.Fatal(err)
	}
	if !def.isDefault() {
		t.Fatalf("empty spec parsed to %v, want default", def)
	}
	if got := def.String(); got != "margin+constant+bundle" {
		t.Fatalf("default String() = %q", got)
	}
	// Every combo's String() must round-trip through ParseStrategySpec.
	for _, strat := range allStrategyCombos(t) {
		back, err := ParseStrategySpec(strat.String())
		if err != nil {
			t.Fatalf("spec %q did not parse back: %v", strat.String(), err)
		}
		if back.String() != strat.String() {
			t.Fatalf("spec round-trip %q -> %q", strat.String(), back.String())
		}
	}
	for _, spec := range []string{"margin", "a+b", "margin+constant+nope", "x+constant+bundle", "margin+x+bundle"} {
		if _, err := ParseStrategySpec(spec); !errors.Is(err, ErrUnknownStrategy) {
			t.Errorf("spec %q: err = %v, want ErrUnknownStrategy", spec, err)
		}
	}
	// Empty piece names select the default piece.
	s, err := ParseStrategy("", "", "")
	if err != nil || !s.isDefault() {
		t.Fatalf("ParseStrategy of empties = %v, %v, want default", s, err)
	}
}

// TestStrategyCombosDeterministicAcrossWorkers is the strategy-API
// determinism contract: for EVERY confidence/schedule/update combination,
// adapting identically trained ensembles with worker counts 1..64 must end
// with byte-identical target prototypes and equal stats. Run under -race in
// CI.
func TestStrategyCombosDeterministicAcrossWorkers(t *testing.T) {
	build := func(strat Strategy) (*Ensemble, []hdc.Vector) {
		rng := testRNG(31)
		protos, samples := cluster(rng, 4, 20, testDim/3, 0)
		m, err := New(testModelConfig())
		if err != nil {
			t.Fatal(err)
		}
		m.SetStrategy(strat)
		if err := m.Train(samples); err != nil {
			t.Fatal(err)
		}
		var targets []hdc.Vector
		for c := range 4 {
			for range 15 {
				targets = append(targets, flip(rng, protos[c], testDim/3))
			}
		}
		return m, targets
	}

	for _, strat := range allStrategyCombos(t) {
		t.Run(strat.String(), func(t *testing.T) {
			ref, targets := build(strat)
			refStats, err := ref.AdaptBatch(targets, 1)
			if err != nil {
				t.Fatal(err)
			}
			if refStats.PseudoLabels == 0 {
				t.Fatalf("strategy %s accepted no pseudo-labels on separable targets", strat)
			}
			refProt := ref.AdaptedPrototypes()
			for _, workers := range []int{4, 64} {
				m, targets := build(strat)
				stats, err := m.AdaptBatch(targets, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if stats != refStats {
					t.Fatalf("workers=%d: stats %+v differ from workers=1 %+v", workers, stats, refStats)
				}
				prot := m.AdaptedPrototypes()
				for c := range prot {
					a, err1 := prot[c].MarshalBinary()
					b, err2 := refProt[c].MarshalBinary()
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if !bytes.Equal(a, b) {
						t.Fatalf("workers=%d: class %d prototype not byte-identical to workers=1", workers, c)
					}
				}
			}
		})
	}
}

// TestStrategyPersistRoundTrip pins the versioned codec per strategy: the
// default serializes in the legacy "SME1" layout, every other combination
// promotes to "SME2", and in both cases the strategy choice plus the model
// state survive save→load→save canonically.
func TestStrategyPersistRoundTrip(t *testing.T) {
	for _, strat := range allStrategyCombos(t) {
		t.Run(strat.String(), func(t *testing.T) {
			m, queries := trainedEnsemble(t, 53, false)
			m.SetStrategy(strat)
			raw := marshalEnsemble(t, m)
			wantMagic := ensembleMagicV2
			if strat.isDefault() {
				wantMagic = ensembleMagic
			}
			if got := string(raw[:4]); got != wantMagic {
				t.Fatalf("magic %q, want %q for strategy %s", got, wantMagic, strat)
			}
			got, err := Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if got.Strategy().String() != strat.String() {
				t.Fatalf("loaded strategy %s, want %s", got.Strategy(), strat)
			}
			for i, q := range queries {
				if a, b := m.Predict(q), got.Predict(q); a != b {
					t.Fatalf("query %d: original predicts %d, loaded predicts %d", i, a, b)
				}
			}
			if !bytes.Equal(raw, marshalEnsemble(t, got)) {
				t.Fatal("load→save is not byte-identical: the codec is not canonical")
			}
			// Persistence must be transparent to the strategy-driven loop:
			// adapting the loaded replica must match adapting the original.
			var targets []hdc.Vector
			rng := testRNG(99)
			protos, _ := cluster(testRNG(53), 4, 1, 0, 0)
			for c := range 4 {
				for range 10 {
					targets = append(targets, flip(rng, protos[c], testDim/3))
				}
			}
			s1, err1 := m.Adapt(targets)
			s2, err2 := got.Adapt(targets)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if s1 != s2 {
				t.Fatalf("adapt stats diverged after reload: %+v vs %+v", s1, s2)
			}
			if !bytes.Equal(marshalEnsemble(t, m), marshalEnsemble(t, got)) {
				t.Fatal("adapted state diverged after reload")
			}
		})
	}
}

// TestStrategyCorruptNames pins the decode-side validation of the SME2
// strategy section.
func TestStrategyCorruptNames(t *testing.T) {
	m, _ := trainedEnsemble(t, 54, false)
	strat, err := ParseStrategy("entropy", "anneal", "ema")
	if err != nil {
		t.Fatal(err)
	}
	m.SetStrategy(strat)
	raw := marshalEnsemble(t, m)
	if string(raw[:4]) != ensembleMagicV2 {
		t.Fatalf("magic %q, want SME2", raw[:4])
	}
	// The first strategy name starts after magic(4) + config(4*4+3*8).
	nameOff := 4 + 16 + 24
	corrupt := func(mutate func(b []byte)) error {
		b := bytes.Clone(raw)
		mutate(b)
		_, err := Decode(bytes.NewReader(b))
		return err
	}
	if err := corrupt(func(b []byte) { b[nameOff] = 0xff }); err == nil {
		t.Error("oversized strategy-name length accepted")
	}
	if err := corrupt(func(b []byte) { b[nameOff+4] ^= 0xff }); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("garbled strategy name: err = %v, want ErrUnknownStrategy", err)
	}
}

// TestStrategyChangesAcceptedCounts backs the ablation claim: at least one
// non-default strategy must change which/how many pseudo-labels are
// accepted relative to the default recipe on the same data.
func TestStrategyChangesAcceptedCounts(t *testing.T) {
	run := func(strat Strategy) AdaptStats {
		rng := testRNG(41)
		protos, samples := cluster(rng, 4, 20, testDim/3, 0)
		m, err := New(testModelConfig())
		if err != nil {
			t.Fatal(err)
		}
		m.SetStrategy(strat)
		if err := m.Train(samples); err != nil {
			t.Fatal(err)
		}
		var targets []hdc.Vector
		for c := range 4 {
			for range 15 {
				targets = append(targets, flip(rng, protos[c], 2*testDim/5))
			}
		}
		stats, err := m.Adapt(targets)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	def := run(DefaultStrategy())
	anneal, err := ParseStrategySpec("margin+anneal+bundle")
	if err != nil {
		t.Fatal(err)
	}
	if got := run(anneal); got.PseudoLabels == def.PseudoLabels && got.Skipped == def.Skipped {
		t.Fatalf("anneal schedule accepted exactly the default's counts %+v — the schedule is not plugged in", got)
	}
}

// TestEntropyCalAcceptsSaneFraction pins the calibration contract of the
// entropy-cal confidence rule: at the default margin-tuned threshold the raw
// entropy rule's near-uniform vote weights make it nearly inert (H within
// rounding of ln(n)), while the min-shifted calibrated variant must accept a
// sane fraction of pseudo-labels — well above raw entropy, and not every
// sample of a noisy stream either.
func TestEntropyCalAcceptsSaneFraction(t *testing.T) {
	run := func(rule string) (AdaptStats, int) {
		rng := testRNG(47)
		protos, samples := cluster(rng, 4, 20, testDim/3, 0)
		m, err := New(testModelConfig())
		if err != nil {
			t.Fatal(err)
		}
		strat, err := ParseStrategy(rule, "", "")
		if err != nil {
			t.Fatal(err)
		}
		m.SetStrategy(strat)
		if err := m.Train(samples); err != nil {
			t.Fatal(err)
		}
		var targets []hdc.Vector
		for c := range 4 {
			for range 15 {
				// Heavier noise than the separable combo test: 2/5 of the
				// bits flipped leaves genuinely ambiguous samples for the
				// confidence gate to reject.
				targets = append(targets, flip(rng, protos[c], 2*testDim/5))
			}
		}
		stats, err := m.Adapt(targets)
		if err != nil {
			t.Fatal(err)
		}
		return stats, len(targets) * stats.Epochs
	}
	cal, calSeen := run("entropy-cal")
	raw, _ := run("entropy")
	margin, _ := run("margin")
	calFrac := float64(cal.PseudoLabels) / float64(calSeen)
	if calFrac < 0.1 {
		t.Fatalf("entropy-cal accepted %d/%d (%.1f%%) pseudo-labels at the default threshold — still starved",
			cal.PseudoLabels, calSeen, 100*calFrac)
	}
	if cal.PseudoLabels <= raw.PseudoLabels {
		t.Fatalf("entropy-cal accepted %d pseudo-labels, raw entropy %d — calibration should raise acceptance",
			cal.PseudoLabels, raw.PseudoLabels)
	}
	if lo, hi := margin.PseudoLabels/2, margin.PseudoLabels*2; cal.PseudoLabels < lo || cal.PseudoLabels > hi {
		t.Fatalf("entropy-cal accepted %d pseudo-labels, margin %d — not on the margin-calibrated scale",
			cal.PseudoLabels, margin.PseudoLabels)
	}

	// The calibration contract in the small: two classes reduce exactly to
	// the margin rule, and an uninformative all-equal vector scores 0.
	rule := EntropyCalConfidence{}
	if class, conf, _ := rule.Assess([]float64{0.31, 0.28}); class != 0 || math.Abs(conf-0.03) > 1e-12 {
		t.Fatalf("two-class Assess = (%d, %v), want the margin (0, 0.03)", class, conf)
	}
	if _, conf, _ := rule.Assess([]float64{0.2, 0.2, 0.2, 0.2}); conf != 0 {
		t.Fatalf("all-equal Assess conf = %v, want exactly 0", conf)
	}
	if class, conf, _ := rule.Assess([]float64{0.3, math.Inf(-1), 0.1, math.NaN()}); class != 0 || !(conf > 0) {
		t.Fatalf("Assess with -Inf/NaN slots = (%d, %v), want class 0 with positive confidence", class, conf)
	}
}

// TestEMAUpdateBoundsPrototypeMass pins the semantic difference of the EMA
// update: under momentum μ the class accumulators are geometric sums, so
// repeated adaptation cannot grow them without bound the way permanent
// bundling does.
func TestEMAUpdateBoundsPrototypeMass(t *testing.T) {
	ema, err := ParseStrategySpec("margin+constant+ema")
	if err != nil {
		t.Fatal(err)
	}
	build := func(strat Strategy) (*Ensemble, []hdc.Vector) {
		rng := testRNG(61)
		protos, samples := cluster(rng, 4, 20, testDim/3, 0)
		m, errN := New(testModelConfig())
		if errN != nil {
			t.Fatal(errN)
		}
		m.SetStrategy(strat)
		if err := m.Train(samples); err != nil {
			t.Fatal(err)
		}
		var targets []hdc.Vector
		for c := range 4 {
			for range 10 {
				targets = append(targets, flip(rng, protos[c], testDim/3))
			}
		}
		return m, targets
	}
	mass := func(m *Ensemble, targets []hdc.Vector) float64 {
		for range 6 {
			if _, err := m.AdaptIncremental(targets, 1); err != nil {
				t.Fatal(err)
			}
		}
		s := 0.0
		m.mu.Lock()
		defer m.mu.Unlock()
		for _, acc := range m.activeLocked().classAcc {
			s += accumulatorAbsMass(t, acc)
		}
		return s
	}
	mDef, tgtDef := build(DefaultStrategy())
	mEMA, tgtEMA := build(ema)
	if md, me := mass(mDef, tgtDef), mass(mEMA, tgtEMA); me >= md {
		t.Fatalf("EMA accumulator mass %.0f not below permanent bundling's %.0f after repeated adaptation", me, md)
	}
}

// accumulatorAbsMass sums |counter| over an accumulator's marshaled int32
// fixed-point counters (header layout: see hdc.Accumulator.MarshalBinary).
func accumulatorAbsMass(t *testing.T, acc *hdc.Accumulator) float64 {
	t.Helper()
	b, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Skip the header: magic(4) + dim(4); counters follow as int32 LE.
	s := 0.0
	for off := 8; off+4 <= len(b); off += 4 {
		v := int32(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
		s += math.Abs(float64(v))
	}
	return s
}

// TestEntropyConfidenceAssess pins the rule's shape: peaked score vectors
// are confident, uniform ones are not, and -Inf/NaN scores are ignored.
func TestEntropyConfidenceAssess(t *testing.T) {
	r := EntropyConfidence{}
	clsPeaked, confPeaked, _ := r.Assess([]float64{0.9, -0.8, -0.9, -0.85})
	if clsPeaked != 0 {
		t.Fatalf("peaked vector classified as %d", clsPeaked)
	}
	_, confFlat, _ := r.Assess([]float64{0.01, 0.01, 0.01, 0.01})
	if confPeaked <= confFlat {
		t.Fatalf("peaked conf %.4f not above uniform conf %.4f", confPeaked, confFlat)
	}
	if confFlat < 0 || confFlat > 1e-9 {
		t.Fatalf("uniform conf = %.6g, want ~0", confFlat)
	}
	cls, conf, _ := r.Assess([]float64{math.Inf(-1), 0.9, math.NaN(), -0.9})
	if cls != 1 {
		t.Fatalf("class %d with -Inf/NaN entries, want 1", cls)
	}
	if conf <= 0 || conf > 1 {
		t.Fatalf("conf %.4f out of (0,1] with non-finite entries", conf)
	}
	// Single finite class: no distribution to measure, maximally confident.
	if _, c, _ := r.Assess([]float64{math.Inf(-1), 0.5}); c != 1 {
		t.Fatalf("single finite class conf = %.4f, want 1", c)
	}
}

// TestAnnealScheduleShape pins the schedule endpoints: strict start, the
// configured threshold/TopFrac by the final epoch.
func TestAnnealScheduleShape(t *testing.T) {
	cfg := testModelConfig()
	cfg.TopFrac = 0.4
	s := AnnealSchedule{}
	th0, top0 := s.Epoch(0, 5, cfg)
	if want := cfg.Confidence * annealStartFactor; math.Abs(th0-want) > 1e-12 {
		t.Fatalf("epoch 0 threshold %.6f, want %.6f", th0, want)
	}
	if want := cfg.TopFrac / 2; math.Abs(top0-want) > 1e-12 {
		t.Fatalf("epoch 0 topFrac %.3f, want %.3f", top0, want)
	}
	thN, topN := s.Epoch(4, 5, cfg)
	if math.Abs(thN-cfg.Confidence) > 1e-12 || math.Abs(topN-cfg.TopFrac) > 1e-12 {
		t.Fatalf("final epoch = (%.6f, %.3f), want (%.6f, %.3f)", thN, topN, cfg.Confidence, cfg.TopFrac)
	}
	// A single-epoch run must use the fully relaxed values.
	th1, top1 := s.Epoch(0, 1, cfg)
	if th1 != cfg.Confidence || top1 != cfg.TopFrac {
		t.Fatalf("single-epoch schedule = (%.6f, %.3f), want configured values", th1, top1)
	}
}

func TestErrInvalidConfigTyped(t *testing.T) {
	cfg := testModelConfig()
	cfg.Classes = 1
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Validate err = %v, want ErrInvalidConfig", err)
	}
	cfg = testModelConfig()
	cfg.Dim = 7
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("dim Validate err = %v, want ErrInvalidConfig", err)
	}
}
