//go:build !race

package model

// raceEnabled gates allocation pins: under the race detector sync.Pool
// deliberately drops items to expose races, so zero-alloc steady states do
// not hold there.
const raceEnabled = false
