package model

import (
	"fmt"
	"math"
	"sync"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/parallel"
)

// Snapshot is an immutable, self-contained view of a trained ensemble: the
// packed per-domain class-prototype matrices, the packed domain-prototype
// matrix, the per-class sample counts, the configuration, and the adapted
// target models if any exist. An Ensemble publishes a fresh snapshot after
// every successful Train, Adapt*, ReadFrom, SpawnTarget, RetireTarget,
// Rollback, and ResetAdaptation via a single atomic pointer swap, so every
// scoring method on a snapshot is lock-free, allocation-free in steady
// state, and safe for any number of concurrent callers: a prediction either
// sees the state before a fold or after it, never a half-rebuilt prototype
// matrix.
//
// Snapshots share nothing mutable with the ensemble that produced them —
// the matrices are deep copies — so holding one across further adaptation
// is safe and keeps answering with the state it captured.
type Snapshot struct {
	cfg     Config
	domains []snapDomain
	domMat  *hdc.Matrix // packed source domain prototypes for weighting

	// targets holds the initialized adapted target domains, in spawn order.
	// One target is scored directly (the historical single-target fast
	// path, byte-identical); several vote weighted by the similarity of the
	// query to each target's domain prototype, packed in tgtMat (nil until
	// a second target exists). active indexes the fold destination, -1 when
	// none is initialized.
	targets []snapDomain
	tgtMat  *hdc.Matrix
	active  int

	// pool is shared with the publishing ensemble across snapshots, so a
	// fold does not cold-start the zero-alloc scratch on the predict path.
	pool *scratchPool
}

// snapDomain is the read-only scoring state of one domain: its packed
// binarized class prototypes and per-class training counts.
type snapDomain struct {
	protMat    *hdc.Matrix
	classCount []int64
}

func (d *snapDomain) scores(hv hdc.Vector, dst []float64) {
	protoScores(d.protMat, d.classCount, hv, dst)
}

// protoScores fills dst with the cosine similarity of hv to each class
// prototype in one contiguous kernel pass. A class the domain has never
// seen has an empty accumulator whose Majority is pure tie-break noise;
// scoring it at full strength would let noise win argmax, so never-trained
// classes are excluded with a -Inf score.
func protoScores(protMat *hdc.Matrix, classCount []int64, hv hdc.Vector, dst []float64) {
	protMat.CosineInto(hv, dst)
	for c, n := range classCount {
		if n == 0 {
			dst[c] = math.Inf(-1)
		}
	}
}

// scoreScratch is the per-call float buffer set one scoring pass needs.
type scoreScratch struct {
	scores, total, wsum, weights []float64
}

// scratchPool pools scoreScratch buffers so concurrent scoring allocates
// nothing in steady state; buffers are resized on Get, so one pool serves
// snapshots of any shape.
type scratchPool struct {
	p sync.Pool
}

func (sp *scratchPool) get(classes, domains int) *scoreScratch {
	sc, _ := sp.p.Get().(*scoreScratch)
	if sc == nil {
		sc = &scoreScratch{}
	}
	sc.scores = resize(sc.scores, classes)
	sc.total = resize(sc.total, classes)
	sc.wsum = resize(sc.wsum, classes)
	sc.weights = resize(sc.weights, domains)
	return sc
}

func (sp *scratchPool) put(sc *scoreScratch) { sp.p.Put(sc) }

// resize reuses s's backing array when it is large enough (the steady
// state) and reallocates only when the model shape grew.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Config returns the configuration the snapshot was published with.
func (s *Snapshot) Config() Config { return s.cfg }

// Adapted reports whether the snapshot carries at least one adapted target
// model.
func (s *Snapshot) Adapted() bool { return len(s.targets) > 0 }

// NumDomains returns the number of source domains.
func (s *Snapshot) NumDomains() int { return len(s.domains) }

// NumTargets returns the number of initialized adapted target domains.
func (s *Snapshot) NumTargets() int { return len(s.targets) }

// weightsInto fills w (one slot per row of domMat) with
// similarity-proportional weights of hv against every domain prototype,
// normalized to sum to 1, scoring the packed domain matrix in one kernel
// pass. Cosine is mapped through (1+cos)/2 so weights stay non-negative and
// a domain nearly as similar as the best one keeps a proportional share of
// the vote (rather than a min-shift that would zero it out entirely).
func weightsInto(domMat *hdc.Matrix, hv hdc.Vector, w []float64) {
	domMat.CosineInto(hv, w)
	sum := 0.0
	for i, cos := range w {
		w[i] = simWeight(cos)
		sum += w[i]
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= sum
	}
}

// ensembleScoresInto writes per-class scores of hv under the
// similarity-weighted source ensemble into dst, using sc for intermediate
// buffers. Each class's score is the weighted mean over the domains that
// have actually seen the class, so a domain missing a class abstains on it
// instead of voting noise; a class no domain has seen scores -Inf and can
// never win.
func (s *Snapshot) ensembleScoresInto(hv hdc.Vector, dst []float64, sc *scoreScratch) {
	wsum, scores, weights := sc.wsum, sc.scores, sc.weights
	for c := range dst {
		dst[c] = 0
		wsum[c] = 0
	}
	weightsInto(s.domMat, hv, weights)
	for i := range s.domains {
		dm := &s.domains[i]
		dm.scores(hv, scores)
		for c, sv := range scores {
			if dm.classCount[c] == 0 {
				continue
			}
			dst[c] += weights[i] * sv
			wsum[c] += weights[i]
		}
	}
	for c := range dst {
		if wsum[c] == 0 {
			dst[c] = math.Inf(-1)
			continue
		}
		dst[c] /= wsum[c]
	}
}

// targetScoresInto writes per-class scores of hv under the
// similarity-weighted target ensemble into dst — the same abstaining
// weighted mean as ensembleScoresInto, but over the adapted target domains
// with weights from the packed target-prototype matrix. Only called with
// two or more targets; a single target is scored directly (byte-identical
// to the historical single-target path).
func (s *Snapshot) targetScoresInto(hv hdc.Vector, dst []float64, sc *scoreScratch) {
	wsum, scores, weights := sc.wsum, sc.scores, sc.weights
	for c := range dst {
		dst[c] = 0
		wsum[c] = 0
	}
	weightsInto(s.tgtMat, hv, weights[:len(s.targets)])
	for i := range s.targets {
		tm := &s.targets[i]
		tm.scores(hv, scores)
		for c, sv := range scores {
			if tm.classCount[c] == 0 {
				continue
			}
			dst[c] += weights[i] * sv
			wsum[c] += weights[i]
		}
	}
	for c := range dst {
		if wsum[c] == 0 {
			dst[c] = math.Inf(-1)
			continue
		}
		dst[c] /= wsum[c]
	}
}

// scratch returns a pooled scoring scratch sized for every vote the
// snapshot can run (source-domain or multi-target weights).
func (s *Snapshot) scratch() *scoreScratch {
	return s.pool.get(s.cfg.Classes, max(len(s.domains), len(s.targets)))
}

// ScoreInto writes the snapshot's per-class scores for hv into dst, which
// must hold exactly Config().Classes slots: a single adapted target model's
// prototype similarities when one exists, the similarity-weighted vote over
// all targets when several do, otherwise the similarity-weighted
// source-ensemble scores. Classes the active model has never seen score
// -Inf. The pass allocates nothing in steady state, so batch callers can
// reuse one dst across queries.
//
//smore:hotpath
func (s *Snapshot) ScoreInto(hv hdc.Vector, dst []float64) error {
	if hv.Dim() != s.cfg.Dim {
		return fmt.Errorf("%w: query has dimension %d, model wants %d", ErrInvalidTargets, hv.Dim(), s.cfg.Dim)
	}
	if len(dst) != s.cfg.Classes {
		return fmt.Errorf("%w: dst holds %d scores, want %d", ErrInvalidTargets, len(dst), s.cfg.Classes)
	}
	if len(s.targets) == 1 {
		s.targets[0].scores(hv, dst)
		return nil
	}
	sc := s.scratch()
	if len(s.targets) > 1 {
		s.targetScoresInto(hv, dst, sc)
	} else {
		s.ensembleScoresInto(hv, dst, sc)
	}
	s.pool.put(sc)
	return nil
}

// Predict classifies hv: with the adapted target model(s) when the snapshot
// carries any, otherwise with the similarity-weighted source ensemble.
//
//smore:hotpath
func (s *Snapshot) Predict(hv hdc.Vector) int {
	sc := s.scratch()
	defer s.pool.put(sc)
	switch {
	case len(s.targets) == 1:
		s.targets[0].scores(hv, sc.scores)
		return argmax(sc.scores)
	case len(s.targets) > 1:
		s.targetScoresInto(hv, sc.total, sc)
		return argmax(sc.total)
	}
	s.ensembleScoresInto(hv, sc.total, sc)
	return argmax(sc.total)
}

// PredictSource classifies hv with the source ensemble only, ignoring any
// adapted model. This is the no-adapt baseline.
func (s *Snapshot) PredictSource(hv hdc.Vector) int {
	sc := s.scratch()
	defer s.pool.put(sc)
	s.ensembleScoresInto(hv, sc.total, sc)
	return argmax(sc.total)
}

// PredictBatch classifies every query concurrently on a pool of the given
// worker count (workers <= 0 means GOMAXPROCS). The whole batch is scored
// against this one snapshot, so the results are mutually consistent even
// while the publishing ensemble keeps adapting.
//
//smore:hotpath
func (s *Snapshot) PredictBatch(hvs []hdc.Vector, workers int) []int {
	out := make([]int, len(hvs))
	parallel.NewPool(workers).ForEach(len(hvs), func(i int) {
		out[i] = s.Predict(hvs[i])
	})
	return out
}

// PredictSourceBatch is PredictBatch against the source ensemble only.
func (s *Snapshot) PredictSourceBatch(hvs []hdc.Vector, workers int) []int {
	out := make([]int, len(hvs))
	parallel.NewPool(workers).ForEach(len(hvs), func(i int) {
		out[i] = s.PredictSource(hvs[i])
	})
	return out
}

// AdaptedPrototypes returns the binarized class prototypes of the active
// adapted target model, or nil when the snapshot carries none. The vectors
// are read-only views into the snapshot's immutable packed matrix, so they
// stay stable no matter how much the publishing ensemble keeps adapting.
func (s *Snapshot) AdaptedPrototypes() []hdc.Vector {
	if s.active < 0 || s.active >= len(s.targets) {
		return nil
	}
	tm := &s.targets[s.active]
	out := make([]hdc.Vector, tm.protMat.Rows())
	for c := range out {
		out[c] = tm.protMat.Row(c)
	}
	return out
}
