package model

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"go-arxiv/smore/internal/hdc"
)

const testDim = 2048

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x30de1))
}

func testModelConfig() Config {
	return Config{
		Dim: testDim, Classes: 4,
		RetrainEpochs: 2, AdaptEpochs: 5,
		Confidence: 0.005, AdaptRate: 2,
	}
}

// flip returns v with n distinct random bits flipped.
func flip(rng *rand.Rand, v hdc.Vector, n int) hdc.Vector {
	out := v.Clone()
	for _, i := range rng.Perm(v.Dim())[:n] {
		out.FlipBit(i)
	}
	return out
}

// cluster generates per-class prototypes and noisy samples around them.
func cluster(rng *rand.Rand, classes, perClass, noiseBits, domain int) ([]hdc.Vector, []Sample) {
	protos := make([]hdc.Vector, classes)
	for c := range protos {
		protos[c] = hdc.Random(rng, testDim)
	}
	var samples []Sample
	for c := range classes {
		for range perClass {
			samples = append(samples, Sample{
				HV: flip(rng, protos[c], noiseBits), Class: c, Domain: domain,
			})
		}
	}
	return protos, samples
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"bad dim", func(c *Config) { c.Dim = 7 }, false},
		{"one class", func(c *Config) { c.Classes = 1 }, false},
		{"negative retrain", func(c *Config) { c.RetrainEpochs = -1 }, false},
		{"zero adapt epochs", func(c *Config) { c.AdaptEpochs = 0 }, false},
		{"confidence over 1", func(c *Config) { c.Confidence = 1.5 }, false},
		{"nan confidence", func(c *Config) { c.Confidence = math.NaN() }, false},
		{"zero rate", func(c *Config) { c.AdaptRate = 0 }, false},
		{"nan rate", func(c *Config) { c.AdaptRate = math.NaN() }, false},
		{"inf rate", func(c *Config) { c.AdaptRate = math.Inf(1) }, false},
		{"huge rate", func(c *Config) { c.AdaptRate = 2e7 }, false},
		{"sub-resolution rate", func(c *Config) { c.AdaptRate = 0.001 }, false},
		{"bad topfrac", func(c *Config) { c.TopFrac = 1.5 }, false},
		{"nan topfrac", func(c *Config) { c.TopFrac = math.NaN() }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testModelConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestTrainPredictSeparableClusters(t *testing.T) {
	rng := testRNG(1)
	_, samples := cluster(rng, 4, 20, testDim/3, 0)
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	hvs := make([]hdc.Vector, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		hvs[i], labels[i] = s.HV, s.Class
	}
	if acc := m.Accuracy(hvs, labels); acc < 0.95 {
		t.Fatalf("training accuracy %.3f on separable clusters, want >= 0.95", acc)
	}
	// Fresh samples from the same clusters must also classify correctly.
	protos, _ := cluster(testRNG(1), 4, 1, 0, 0) // same RNG stream ⇒ same prototypes
	for c, p := range protos {
		if got := m.Predict(flip(rng, p, testDim/4)); got != c {
			t.Fatalf("fresh sample of class %d predicted as %d", c, got)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(nil); err == nil {
		t.Error("Train accepted an empty sample set")
	}
	bad := []Sample{{HV: hdc.New(testDim), Class: 99, Domain: 0}}
	if err := m.Train(bad); err == nil {
		t.Error("Train accepted an out-of-range class")
	}
	if _, err := m.Adapt([]hdc.Vector{hdc.New(testDim)}); err == nil {
		t.Error("Adapt before Train did not error")
	}
}

// TestAdaptErrorClassification pins the typed-error split the serving layer
// maps to HTTP statuses: untrained state is ErrNotTrained (409), bad inputs
// are ErrInvalidTargets (400), and the two are disjoint.
func TestAdaptErrorClassification(t *testing.T) {
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Adapt([]hdc.Vector{hdc.New(testDim)})
	if !errors.Is(err, ErrNotTrained) {
		t.Errorf("Adapt before Train error = %v, want ErrNotTrained", err)
	}
	if errors.Is(err, ErrInvalidTargets) {
		t.Errorf("Adapt before Train error %v must not classify as ErrInvalidTargets", err)
	}

	rng := testRNG(3)
	_, samples := cluster(rng, 4, 8, testDim/4, 0)
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	_, err = m.Adapt(nil)
	if !errors.Is(err, ErrInvalidTargets) {
		t.Errorf("empty-target Adapt error = %v, want ErrInvalidTargets", err)
	}
	_, err = m.AdaptIncremental([]hdc.Vector{hdc.New(testDim * 2)}, 1)
	if !errors.Is(err, ErrInvalidTargets) {
		t.Errorf("dimension-mismatch Adapt error = %v, want ErrInvalidTargets", err)
	}
	if errors.Is(err, ErrNotTrained) {
		t.Errorf("dimension-mismatch error %v must not classify as ErrNotTrained", err)
	}
	// Valid targets still adapt after the rejected calls.
	if _, err := m.AdaptIncremental([]hdc.Vector{samples[0].HV}, 1); err != nil {
		t.Errorf("valid adapt after rejected calls: %v", err)
	}
}

func TestMultiDomainEnsemble(t *testing.T) {
	rng := testRNG(2)
	protos, samples := cluster(rng, 4, 15, testDim/3, 0)
	// Second source domain: same classes, consistently distorted by a
	// fixed domain mask on top of per-sample noise.
	mask := rng.Perm(testDim)[:testDim/5]
	for c := range 4 {
		for range 15 {
			hv := flip(rng, protos[c], testDim/3)
			for _, b := range mask {
				hv.FlipBit(b)
			}
			samples = append(samples, Sample{HV: hv, Class: c, Domain: 1})
		}
	}
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	// Queries from each domain must classify correctly through the
	// similarity-weighted ensemble.
	for c, p := range protos {
		if got := m.Predict(flip(rng, p, testDim/4)); got != c {
			t.Fatalf("domain-0 query of class %d predicted as %d", c, got)
		}
	}
}

func TestAdaptMechanics(t *testing.T) {
	rng := testRNG(3)
	protos, samples := cluster(rng, 4, 20, testDim/3, 0)
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	if m.Adapted() {
		t.Fatal("Adapted() true before Adapt")
	}
	if _, err := m.Adapt(nil); err == nil {
		t.Error("Adapt accepted an empty target set")
	}
	var targets []hdc.Vector
	for c := range 4 {
		for range 10 {
			targets = append(targets, flip(rng, protos[c], testDim/3))
		}
	}
	stats, err := m.Adapt(targets)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Adapted() {
		t.Fatal("Adapted() false after Adapt")
	}
	if stats.PseudoLabels == 0 {
		t.Fatal("adaptation applied no pseudo-labels on well-separated targets")
	}
	// On an unshifted target the adapted model must retain the class
	// structure.
	for c, p := range protos {
		if got := m.Predict(flip(rng, p, testDim/4)); got != c {
			t.Fatalf("adapted model predicts class %d as %d", c, got)
		}
	}
	m.ResetAdaptation()
	if m.Adapted() {
		t.Fatal("ResetAdaptation did not clear the adapted model")
	}
}

// TestAdaptBatchDeterministicAcrossWorkers is the batch-API determinism
// contract: two identically trained ensembles adapted with worker counts 1
// and N must end with byte-identical target prototypes and equal stats.
// Run under -race in CI.
func TestAdaptBatchDeterministicAcrossWorkers(t *testing.T) {
	build := func() (*Ensemble, []hdc.Vector) {
		rng := testRNG(21)
		protos, samples := cluster(rng, 4, 20, testDim/3, 0)
		m, err := New(testModelConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Train(samples); err != nil {
			t.Fatal(err)
		}
		var targets []hdc.Vector
		for c := range 4 {
			for range 15 {
				targets = append(targets, flip(rng, protos[c], testDim/3))
			}
		}
		return m, targets
	}

	ref, targets := build()
	refStats, err := ref.AdaptBatch(targets, 1)
	if err != nil {
		t.Fatal(err)
	}
	refProt := ref.AdaptedPrototypes()
	for _, workers := range []int{0, 3, 16} {
		m, targets := build()
		stats, err := m.AdaptBatch(targets, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats != refStats {
			t.Fatalf("workers=%d: stats %+v differ from workers=1 %+v", workers, stats, refStats)
		}
		prot := m.AdaptedPrototypes()
		if len(prot) != len(refProt) {
			t.Fatalf("workers=%d: %d prototypes, want %d", workers, len(prot), len(refProt))
		}
		for c := range prot {
			a, err1 := prot[c].MarshalBinary()
			b, err2 := refProt[c].MarshalBinary()
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("workers=%d: class %d prototype not byte-identical to workers=1", workers, c)
			}
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := testRNG(22)
	_, samples := cluster(rng, 4, 10, testDim/3, 0)
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	hvs := make([]hdc.Vector, len(samples))
	for i, s := range samples {
		hvs[i] = s.HV
	}
	for _, workers := range []int{1, 4} {
		for i, pred := range m.PredictBatch(hvs, workers) {
			if want := m.Predict(hvs[i]); pred != want {
				t.Fatalf("workers=%d: PredictBatch[%d] = %d, Predict = %d", workers, i, pred, want)
			}
		}
		for i, pred := range m.PredictSourceBatch(hvs, workers) {
			if want := m.PredictSource(hvs[i]); pred != want {
				t.Fatalf("workers=%d: PredictSourceBatch[%d] = %d, PredictSource = %d", workers, i, pred, want)
			}
		}
	}
	if m.AdaptedPrototypes() != nil {
		t.Fatal("AdaptedPrototypes non-nil before Adapt")
	}
}

func TestTop2(t *testing.T) {
	nan, ninf := math.NaN(), math.Inf(-1)
	tests := []struct {
		xs           []float64
		best, second int
	}{
		{[]float64{0.9, 0.1}, 0, 1},
		{[]float64{0.1, 0.9}, 1, 0},
		{[]float64{0.1, 0.5, 0.9}, 2, 1},
		{[]float64{0.9, 0.5, 0.1}, 0, 1},
		{[]float64{0.5, 0.9, 0.7, 0.8}, 1, 3},
		{[]float64{-0.2, -0.1, -0.3}, 1, 0},
		// NaN hygiene: a NaN score ranks below everything and must not make
		// the selection order-dependent.
		{[]float64{nan, 0.5, 0.2}, 1, 2},
		{[]float64{0.5, nan, 0.2}, 0, 2},
		{[]float64{0.5, 0.2, nan}, 0, 1},
		{[]float64{nan, nan, 0.2}, 2, 0},
		{[]float64{nan, nan}, 0, 1},
		{[]float64{ninf, 0.3, nan}, 1, 0},
	}
	for _, tt := range tests {
		best, second := top2(tt.xs)
		if best != tt.best || second != tt.second {
			t.Errorf("top2(%v) = %d,%d want %d,%d", tt.xs, best, second, tt.best, tt.second)
		}
	}
}

func TestArgmaxNaN(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		xs   []float64
		want int
	}{
		{[]float64{nan, 0.5, 0.9}, 2},
		{[]float64{0.9, nan, 0.5}, 0},
		{[]float64{nan, nan}, 0},
		{[]float64{nan, math.Inf(-1)}, 0}, // NaN ranks with -Inf; tie → lowest index
		{[]float64{math.Inf(-1), nan, 0.1}, 2},
	}
	for _, tt := range tests {
		if got := argmax(tt.xs); got != tt.want {
			t.Errorf("argmax(%v) = %d, want %d", tt.xs, got, tt.want)
		}
	}
}

func TestSimWeightClampsNaN(t *testing.T) {
	if got := simWeight(math.NaN()); got != 0.5 {
		t.Errorf("simWeight(NaN) = %v, want 0.5 (similarity clamped to 0)", got)
	}
	if got := simWeight(1); got != 1 {
		t.Errorf("simWeight(1) = %v, want 1", got)
	}
	if got := simWeight(-1); got != 0 {
		t.Errorf("simWeight(-1) = %v, want 0", got)
	}
}

// TestTrainMissingClassExcluded pins the fix for classes absent from some
// source domain: their empty accumulators must abstain instead of competing
// with tie-break noise, and a class absent from every domain must never be
// predicted.
func TestTrainMissingClassExcluded(t *testing.T) {
	rng := testRNG(31)
	protos, samples := cluster(rng, 4, 15, testDim/3, 0)
	// Strip classes 2 and 3 from domain 0; domain 1 sees 0..2 but never 3,
	// so class 3 is absent from the whole ensemble.
	var trimmed []Sample
	for _, s := range samples {
		if s.Class < 2 {
			trimmed = append(trimmed, s)
		}
	}
	for c := range 3 {
		for range 15 {
			trimmed = append(trimmed, Sample{
				HV: flip(rng, protos[c], testDim/3), Class: c, Domain: 1,
			})
		}
	}
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(trimmed); err != nil {
		t.Fatal(err)
	}
	// Class 2 lives only in domain 1: domain 0 must abstain on it rather
	// than out-vote it with noise.
	for range 20 {
		q := flip(rng, protos[2], testDim/4)
		if got := m.Predict(q); got != 2 {
			t.Fatalf("class-2 query predicted as %d (domain without the class out-voted it)", got)
		}
	}
	// Class 3 was never trained anywhere: its ensemble score must be -Inf
	// and it must never win, even on its own cluster's queries.
	for range 20 {
		q := flip(rng, protos[3], testDim/4)
		scores := make([]float64, 4)
		if err := m.ScoreInto(q, scores); err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(scores[3], -1) {
			t.Fatalf("never-trained class scored %v, want -Inf", scores[3])
		}
		if got := m.Predict(q); got == 3 {
			t.Fatal("never-trained class was predicted")
		}
	}
}

// TestAdaptIncremental checks the streaming adaptation path: the first call
// matches AdaptBatch exactly, and later calls keep refining the same target
// model instead of rebuilding it from the source mixture.
func TestAdaptIncremental(t *testing.T) {
	build := func() (*Ensemble, []hdc.Vector) {
		rng := testRNG(41)
		protos, samples := cluster(rng, 4, 20, testDim/3, 0)
		m, err := New(testModelConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Train(samples); err != nil {
			t.Fatal(err)
		}
		var targets []hdc.Vector
		for c := range 4 {
			for range 12 {
				targets = append(targets, flip(rng, protos[c], testDim/3))
			}
		}
		return m, targets
	}

	batch, targets := build()
	if _, err := batch.AdaptBatch(targets, 1); err != nil {
		t.Fatal(err)
	}
	incr, targets2 := build()
	if _, err := incr.AdaptIncremental(targets2, 1); err != nil {
		t.Fatal(err)
	}
	a, b := batch.AdaptedPrototypes(), incr.AdaptedPrototypes()
	for c := range a {
		if !a[c].Equal(b[c]) {
			t.Fatalf("first AdaptIncremental call diverged from AdaptBatch at class %d", c)
		}
	}

	// A second incremental batch must keep the model adapted and usable.
	rng := testRNG(41)
	protos, _ := cluster(rng, 4, 0, 0, 0) // same stream ⇒ same prototypes
	var more []hdc.Vector
	for c := range 4 {
		for range 8 {
			more = append(more, flip(rng, protos[c], testDim/3))
		}
	}
	stats, err := incr.AdaptIncremental(more, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PseudoLabels == 0 {
		t.Fatal("incremental batch applied no pseudo-labels on separable targets")
	}
	for c, p := range protos {
		if got := incr.Predict(flip(rng, p, testDim/4)); got != c {
			t.Fatalf("after incremental adaptation class %d predicted as %d", c, got)
		}
	}
}

func BenchmarkSimilaritySearch(b *testing.B) {
	rng := testRNG(4)
	_, samples := cluster(rng, 8, 25, testDim/3, 0)
	m, err := New(Config{Dim: testDim, Classes: 8, RetrainEpochs: 1, AdaptEpochs: 1, Confidence: 0.005, AdaptRate: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		b.Fatal(err)
	}
	query := samples[0].HV
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		m.Predict(query)
	}
}

func BenchmarkAdapt(b *testing.B) {
	rng := testRNG(5)
	protos, samples := cluster(rng, 4, 20, testDim/3, 0)
	m, err := New(Config{Dim: testDim, Classes: 4, RetrainEpochs: 1, AdaptEpochs: 3, Confidence: 0.005, AdaptRate: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		b.Fatal(err)
	}
	var targets []hdc.Vector
	for c := range 4 {
		for range 25 {
			targets = append(targets, flip(rng, protos[c], testDim/3))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := m.Adapt(targets); err != nil {
			b.Fatal(err)
		}
		m.ResetAdaptation()
	}
}
