package model

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"go-arxiv/smore/internal/hdc"
)

// snapshotFixture builds a trained ensemble, a byte-identical replica of it
// (round-tripped through the wire format), a probe query, and the fold
// batches both copies will see.
func snapshotFixture(t *testing.T) (orig, replica *Ensemble, probe hdc.Vector, batches [][]hdc.Vector) {
	t.Helper()
	rng := testRNG(91)
	_, samples := cluster(rng, 4, 10, testDim/3, 0)
	_, more := cluster(rng, 4, 10, testDim/3, 1)
	samples = append(samples, more...)
	orig, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Train(samples); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	replica, err = Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	probe = samples[0].HV
	for b := range 6 {
		var batch []hdc.Vector
		for i := range 8 {
			batch = append(batch, samples[(b*8+i)%len(samples)].HV)
		}
		batches = append(batches, batch)
	}
	return orig, replica, probe, batches
}

// TestSnapshotPublicationIsAtomic is the -race acceptance test for the
// copy-on-write serving path: predictions racing adaptation folds and wire
// exports must always score against a fully-published model version.
//
// Folds are deterministic for any worker count, so the exact per-version
// score vector of a probe query is precomputable on a byte-identical
// replica folded serially. Concurrent lock-free ScoreInto calls on the
// original must then return a vector exactly equal to one of those
// versions — a half-rebuilt prototype matrix would produce a vector outside
// the set.
func TestSnapshotPublicationIsAtomic(t *testing.T) {
	orig, replica, probe, batches := snapshotFixture(t)
	classes := orig.Config().Classes

	// Expected score vector per model version: v0 before any fold, then one
	// per folded batch.
	expected := make([][]float64, 0, len(batches)+1)
	record := func(m *Ensemble) {
		scores := make([]float64, classes)
		if err := m.ScoreInto(probe, scores); err != nil {
			t.Fatal(err)
		}
		expected = append(expected, scores)
	}
	record(replica)
	for _, batch := range batches {
		if _, err := replica.AdaptIncremental(batch, 2); err != nil {
			t.Fatal(err)
		}
		record(replica)
	}

	matches := func(scores []float64) bool {
		for _, want := range expected {
			same := true
			for c := range want {
				if scores[c] != want[c] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
		return false
	}

	var wg sync.WaitGroup
	errCh := make(chan string, 1)
	report := func(msg string) {
		select {
		case errCh <- msg:
		default:
		}
	}
	stop := make(chan struct{})
	for range 4 { // lock-free readers
		wg.Add(1)
		go func() {
			defer wg.Done()
			scores := make([]float64, classes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := orig.ScoreInto(probe, scores); err != nil {
					report(err.Error())
					return
				}
				if !matches(scores) {
					report("ScoreInto returned a vector matching no published model version (torn snapshot?)")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // concurrent exporter: WriteTo flushes staging under the mutator lock
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := orig.WriteTo(io.Discard); err != nil {
				report(err.Error())
				return
			}
		}
	}()

	for _, batch := range batches {
		if _, err := orig.AdaptIncremental(batch, 2); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}

	// After the same folds in the same order, the original must sit exactly
	// on the final version.
	final := make([]float64, classes)
	if err := orig.ScoreInto(probe, final); err != nil {
		t.Fatal(err)
	}
	for c, want := range expected[len(expected)-1] {
		if final[c] != want {
			t.Fatalf("final score[%d] = %v, want %v (replica and original diverged)", c, final[c], want)
		}
	}
}

// TestSnapshotIsImmutableAcrossFolds pins the copy-on-write contract: a
// snapshot held across further adaptation keeps answering with the state it
// captured, and its adapted prototypes never change underneath the holder.
func TestSnapshotIsImmutableAcrossFolds(t *testing.T) {
	orig, _, probe, batches := snapshotFixture(t)
	classes := orig.Config().Classes

	if _, err := orig.AdaptIncremental(batches[0], 1); err != nil {
		t.Fatal(err)
	}
	held := orig.Snapshot()
	if !held.Adapted() {
		t.Fatal("snapshot after a fold does not report adapted")
	}
	before := make([]float64, classes)
	if err := held.ScoreInto(probe, before); err != nil {
		t.Fatal(err)
	}
	protosBefore := held.AdaptedPrototypes()
	frozen := make([]hdc.Vector, len(protosBefore))
	for i, p := range protosBefore {
		frozen[i] = p.Clone()
	}

	for _, batch := range batches[1:] {
		if _, err := orig.AdaptIncremental(batch, 1); err != nil {
			t.Fatal(err)
		}
	}
	if orig.Snapshot() == held {
		t.Fatal("folds did not publish a new snapshot")
	}

	after := make([]float64, classes)
	if err := held.ScoreInto(probe, after); err != nil {
		t.Fatal(err)
	}
	for c := range before {
		if before[c] != after[c] {
			t.Fatalf("held snapshot's score[%d] changed %v -> %v across folds", c, before[c], after[c])
		}
	}
	for i, p := range held.AdaptedPrototypes() {
		if !p.Equal(frozen[i]) {
			t.Fatalf("held snapshot's adapted prototype %d mutated across folds", i)
		}
	}
}

// TestSnapshotNilBeforeTrain pins the untrained contract: Snapshot is nil,
// ScoreInto errors, and the predict paths panic like they always have.
func TestSnapshotNilBeforeTrain(t *testing.T) {
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Snapshot() != nil {
		t.Fatal("untrained ensemble published a snapshot")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Train did not panic")
		}
	}()
	m.Predict(hdc.New(testDim))
}

// TestResetAdaptationRepublishes pins that discarding the adapted model is
// itself a publication: predictions immediately revert to the source
// ensemble without waiting for another fold.
func TestResetAdaptationRepublishes(t *testing.T) {
	orig, _, probe, batches := snapshotFixture(t)
	classes := orig.Config().Classes
	sourceScores := make([]float64, classes)
	if err := orig.ScoreInto(probe, sourceScores); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.AdaptIncremental(batches[0], 1); err != nil {
		t.Fatal(err)
	}
	if !orig.Snapshot().Adapted() {
		t.Fatal("fold did not publish an adapted snapshot")
	}
	orig.ResetAdaptation()
	snap := orig.Snapshot()
	if snap == nil || snap.Adapted() {
		t.Fatal("ResetAdaptation did not republish a source-only snapshot")
	}
	got := make([]float64, classes)
	if err := orig.ScoreInto(probe, got); err != nil {
		t.Fatal(err)
	}
	for c := range sourceScores {
		if got[c] != sourceScores[c] {
			t.Fatalf("post-reset score[%d] = %v, want the source-ensemble score %v", c, got[c], sourceScores[c])
		}
	}
}
