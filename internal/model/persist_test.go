package model

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"go-arxiv/smore/internal/hdc"
)

// trainedEnsemble builds a deterministic trained (and optionally adapted)
// two-domain ensemble plus a set of query vectors for prediction checks.
func trainedEnsemble(t *testing.T, seed uint64, adapt bool) (*Ensemble, []hdc.Vector) {
	t.Helper()
	rng := testRNG(seed)
	protos, samples := cluster(rng, 4, 12, testDim/3, 0)
	for c := range 4 {
		for range 12 {
			samples = append(samples, Sample{
				HV: flip(rng, protos[c], testDim/3), Class: c, Domain: 1,
			})
		}
	}
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	var queries []hdc.Vector
	for c := range 4 {
		for range 6 {
			queries = append(queries, flip(rng, protos[c], testDim/4))
		}
	}
	if adapt {
		var targets []hdc.Vector
		for c := range 4 {
			for range 10 {
				targets = append(targets, flip(rng, protos[c], testDim/3))
			}
		}
		if _, err := m.Adapt(targets); err != nil {
			t.Fatal(err)
		}
	}
	return m, queries
}

func marshalEnsemble(t *testing.T, m *Ensemble) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestEnsembleRoundTrip is the core persistence contract: a trained+adapted
// ensemble survives save→load with byte-identical predictions, and the codec
// is canonical (load→save is byte-identical too).
func TestEnsembleRoundTrip(t *testing.T) {
	for _, adapt := range []bool{false, true} {
		name := "trained"
		if adapt {
			name = "adapted"
		}
		t.Run(name, func(t *testing.T) {
			m, queries := trainedEnsemble(t, 51, adapt)
			raw := marshalEnsemble(t, m)
			got, err := Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if got.Config() != m.Config() {
				t.Fatalf("loaded config %+v, want %+v", got.Config(), m.Config())
			}
			if got.Adapted() != adapt {
				t.Fatalf("loaded Adapted() = %v, want %v", got.Adapted(), adapt)
			}
			for i, q := range queries {
				if a, b := m.Predict(q), got.Predict(q); a != b {
					t.Fatalf("query %d: original predicts %d, loaded predicts %d", i, a, b)
				}
				if a, b := m.PredictSource(q), got.PredictSource(q); a != b {
					t.Fatalf("query %d: source prediction diverged after load: %d vs %d", i, a, b)
				}
			}
			if !bytes.Equal(raw, marshalEnsemble(t, got)) {
				t.Fatal("load→save is not byte-identical: the codec is not canonical")
			}
		})
	}
}

// TestResumeAdaptationEquivalence checks that persistence is transparent to
// the adaptation loop: train→save→load→Adapt must produce exactly the same
// adapted model as training and adapting straight through.
func TestResumeAdaptationEquivalence(t *testing.T) {
	straight, _ := trainedEnsemble(t, 52, false)
	loaded, err := Decode(bytes.NewReader(marshalEnsemble(t, straight)))
	if err != nil {
		t.Fatal(err)
	}

	rng := testRNG(520)
	protos, _ := cluster(testRNG(52), 4, 0, 0, 0) // same stream ⇒ same prototypes
	var targets []hdc.Vector
	for c := range 4 {
		for range 10 {
			targets = append(targets, flip(rng, protos[c], testDim/3))
		}
	}
	sStats, err := straight.Adapt(targets)
	if err != nil {
		t.Fatal(err)
	}
	lStats, err := loaded.Adapt(targets)
	if err != nil {
		t.Fatal(err)
	}
	if sStats != lStats {
		t.Fatalf("adaptation stats diverged: straight %+v, resumed %+v", sStats, lStats)
	}
	sp, lp := straight.AdaptedPrototypes(), loaded.AdaptedPrototypes()
	for c := range sp {
		if !sp[c].Equal(lp[c]) {
			t.Fatalf("class %d adapted prototype diverged after save→load→Adapt", c)
		}
	}
	if !bytes.Equal(marshalEnsemble(t, straight), marshalEnsemble(t, loaded)) {
		t.Fatal("serialized adapted ensembles diverged after save→load→Adapt")
	}
}

// goldenEnsemble is a small fixed build pinned by the committed golden file;
// any codec or training-path change that alters the bytes must be deliberate
// (regenerate with UPDATE_GOLDEN=1 go test ./internal/model -run Golden).
func goldenEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	const dim = 256
	rng := testRNG(0x901d)
	m, err := New(Config{
		Dim: dim, Classes: 3, RetrainEpochs: 1, AdaptEpochs: 3,
		Confidence: 0.005, AdaptRate: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]hdc.Vector, 3)
	for c := range protos {
		protos[c] = hdc.Random(rng, dim)
	}
	var samples []Sample
	for d := range 2 {
		for c := range 3 {
			for range 8 {
				hv := protos[c].Clone()
				for _, b := range rng.Perm(dim)[:dim/4] {
					hv.FlipBit(b)
				}
				samples = append(samples, Sample{HV: hv, Class: c, Domain: d})
			}
		}
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	var targets []hdc.Vector
	for c := range 3 {
		for range 6 {
			hv := protos[c].Clone()
			for _, b := range rng.Perm(dim)[:dim/4] {
				hv.FlipBit(b)
			}
			targets = append(targets, hv)
		}
	}
	if _, err := m.Adapt(targets); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEnsembleGolden(t *testing.T) {
	path := filepath.Join("testdata", "ensemble_golden.bin")
	raw := marshalEnsemble(t, goldenEnsemble(t))
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("serialized ensemble differs from golden file (%d vs %d bytes); if the codec or training path changed deliberately, regenerate with UPDATE_GOLDEN=1", len(raw), len(want))
	}
	// The committed artifact must still load and predict like a fresh build.
	loaded, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	fresh := goldenEnsemble(t)
	rng := testRNG(0x90)
	for range 25 {
		q := hdc.Random(rng, 256)
		if a, b := fresh.Predict(q), loaded.Predict(q); a != b {
			t.Fatalf("golden-loaded ensemble predicts %d, fresh build predicts %d", b, a)
		}
	}
}

func TestWriteToUntrained(t *testing.T) {
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("WriteTo accepted an untrained ensemble")
	}
}

func TestDecodeErrors(t *testing.T) {
	m, _ := trainedEnsemble(t, 53, true)
	good := marshalEnsemble(t, m)

	corrupt := func(mutate func([]byte)) []byte {
		b := bytes.Clone(good)
		mutate(b)
		return b
	}
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", corrupt(func(b []byte) { copy(b, "NOPE") })},
		{"truncated header", good[:10]},
		{"truncated body", good[:len(good)/2]},
		{"bad dim", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 100) })},
		{"huge classes", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 1<<30) })},
		{"huge adapt epochs", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 1<<30) })},
		{"huge domain count", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[44:], 1<<31) })},
		{"zero domains", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[44:], 0) })},
		{"bad adapted flag", corrupt(func(b []byte) { b[48] = 7 })},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(tt.data)); err == nil {
				t.Error("Decode accepted corrupt input")
			}
		})
	}
}
