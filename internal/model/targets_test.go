package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"

	"go-arxiv/smore/internal/hdc"
)

// targetFixture builds a trained two-domain ensemble plus per-class target
// batches drawn from two distinct synthetic distributions ("phases"), so
// tests can fold coherent batches into distinct target domains.
func targetFixture(t *testing.T, seed uint64) (m *Ensemble, queries []hdc.Vector, phaseA, phaseB [][]hdc.Vector) {
	t.Helper()
	rng := testRNG(seed)
	protosA, samples := cluster(rng, 4, 12, testDim/3, 0)
	_, more := cluster(rng, 4, 12, testDim/3, 1)
	samples = append(samples, more...)
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	for c := range 4 {
		for range 4 {
			queries = append(queries, flip(rng, protosA[c], testDim/4))
		}
	}
	batch := func(protos []hdc.Vector, noise int) []hdc.Vector {
		var out []hdc.Vector
		for c := range 4 {
			for range 6 {
				out = append(out, flip(rng, protos[c], noise))
			}
		}
		return out
	}
	protosB := make([]hdc.Vector, 4)
	for c := range protosB {
		// Phase B shifts every class prototype by a common heavy
		// perturbation, emulating a distribution shift.
		protosB[c] = flip(rng, protosA[c], testDim/2)
	}
	for range 3 {
		phaseA = append(phaseA, batch(protosA, testDim/3))
		phaseB = append(phaseB, batch(protosB, testDim/3))
	}
	return m, queries, phaseA, phaseB
}

func scoresOf(t *testing.T, m *Ensemble, q hdc.Vector) []float64 {
	t.Helper()
	out := make([]float64, m.Config().Classes)
	if err := m.ScoreInto(q, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSpawnFoldVote walks the core multi-target lifecycle: the implicit
// first target is t0, a spawned target stays pending (excluded from voting)
// until its first fold, and after that fold both targets are ready and the
// vote runs over the target set.
func TestSpawnFoldVote(t *testing.T) {
	m, queries, phaseA, phaseB := targetFixture(t, 71)
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil {
		t.Fatal(err)
	}
	infos := m.TargetInfos()
	if len(infos) != 1 || infos[0].Name != "t0" || !infos[0].Active || !infos[0].Ready {
		t.Fatalf("after first fold TargetInfos = %+v, want single active ready t0", infos)
	}
	pre := scoresOf(t, m, queries[0])

	spawned, retired, err := m.SpawnTarget("", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if spawned != "t1" || retired != "" {
		t.Fatalf("SpawnTarget = (%q, %q), want (t1, none)", spawned, retired)
	}
	// A pending spawn must not change what the model serves.
	if s := m.Snapshot(); s.NumTargets() != 1 {
		t.Fatalf("pending spawn published %d targets, want 1", s.NumTargets())
	}
	if got := scoresOf(t, m, queries[0]); !floatsEqual(got, pre) {
		t.Fatalf("pending spawn changed served scores: %v -> %v", pre, got)
	}

	if _, err := m.AdaptIncremental(phaseB[0], 2); err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.NumTargets() != 2 {
		t.Fatalf("after fold into spawned target snapshot has %d targets, want 2", s.NumTargets())
	}
	infos = m.TargetInfos()
	if len(infos) != 2 || infos[0].Name != "t0" || infos[1].Name != "t1" ||
		infos[0].Active || !infos[1].Active || !infos[1].Ready {
		t.Fatalf("after second fold TargetInfos = %+v, want ready t0 + active ready t1", infos)
	}
	// The multi-target vote must produce finite scores for trained classes
	// and classify every in-distribution query.
	for _, q := range queries {
		for c, s := range scoresOf(t, m, q) {
			if s != s || s < -1.5 {
				t.Fatalf("multi-target score[%d] = %v for a trained class", c, s)
			}
		}
	}

	// AdaptTarget re-addresses an older target by name and makes it active.
	if _, err := m.AdaptTarget("t0", phaseA[1], 2); err != nil {
		t.Fatal(err)
	}
	infos = m.TargetInfos()
	if !infos[0].Active || infos[0].Folds != 2 {
		t.Fatalf("AdaptTarget(t0) did not reactivate t0: %+v", infos)
	}
	if _, err := m.AdaptTarget("nope", phaseA[1], 2); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("AdaptTarget(unknown) err = %v, want ErrUnknownTarget", err)
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSpawnTargetValidation(t *testing.T) {
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SpawnTarget("x", 0, false); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("SpawnTarget before Train err = %v, want ErrNotTrained", err)
	}
	m, _, phaseA, _ := targetFixture(t, 72)
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SpawnTarget(strings.Repeat("x", maxTargetName+1), 0, false); !errors.Is(err, ErrInvalidTargets) {
		t.Fatalf("oversized name err = %v, want ErrInvalidTargets", err)
	}
	if _, _, err := m.SpawnTarget("t0", 0, false); !errors.Is(err, ErrInvalidTargets) {
		t.Fatalf("duplicate name err = %v, want ErrInvalidTargets", err)
	}
	if err := m.RetireTarget("nope"); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("RetireTarget(unknown) err = %v, want ErrUnknownTarget", err)
	}
}

// TestRollbackRestoresBytes is the rollback acceptance contract: the export
// after a rollback is byte-identical to the export taken right before the
// spawn that checkpointed it, and rollback is idempotent.
func TestRollbackRestoresBytes(t *testing.T) {
	m, queries, phaseA, phaseB := targetFixture(t, 73)
	if err := func() error { _, err := m.AdaptIncremental(phaseA[0], 2); return err }(); err != nil {
		t.Fatal(err)
	}
	if m.HasCheckpoint() {
		t.Fatal("HasCheckpoint true before any spawn/retire")
	}
	if err := m.Rollback(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Rollback with no checkpoint err = %v, want ErrNoCheckpoint", err)
	}
	preSpawn := marshalEnsemble(t, m)
	preScores := scoresOf(t, m, queries[0])

	if _, _, err := m.SpawnTarget("", 0, false); err != nil {
		t.Fatal(err)
	}
	if !m.HasCheckpoint() {
		t.Fatal("spawn did not checkpoint")
	}
	if _, err := m.AdaptIncremental(phaseB[0], 2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(preSpawn, marshalEnsemble(t, m)) {
		t.Fatal("folding into the spawned target did not change the export — the drift fold is a no-op")
	}

	for round := range 2 { // second round proves idempotence
		if err := m.Rollback(); err != nil {
			t.Fatalf("rollback round %d: %v", round, err)
		}
		if got := marshalEnsemble(t, m); !bytes.Equal(preSpawn, got) {
			t.Fatalf("rollback round %d: export not byte-identical to the pre-spawn export (%d vs %d bytes)",
				round, len(got), len(preSpawn))
		}
		if got := scoresOf(t, m, queries[0]); !floatsEqual(got, preScores) {
			t.Fatalf("rollback round %d: served scores %v, want pre-spawn %v", round, got, preScores)
		}
	}

	m.ResetAdaptation()
	if m.HasCheckpoint() {
		t.Fatal("ResetAdaptation kept the rollback checkpoint")
	}
	if err := m.Rollback(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Rollback after reset err = %v, want ErrNoCheckpoint", err)
	}
}

// TestRetireLRU pins spawn-with-retirement: past MaxTargets the
// least-recently-folded non-active target leaves, and retiring the active
// target hands the fold destination to the most recently folded survivor.
func TestRetireLRU(t *testing.T) {
	m, _, phaseA, phaseB := targetFixture(t, 74)
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil { // t0
		t.Fatal(err)
	}
	if _, _, err := m.SpawnTarget("", 0, false); err != nil { // t1
		t.Fatal(err)
	}
	if _, err := m.AdaptIncremental(phaseB[0], 2); err != nil {
		t.Fatal(err)
	}
	spawned, retired, err := m.SpawnTarget("", 2, true) // t2 pushes past MaxTargets=2
	if err != nil {
		t.Fatal(err)
	}
	if spawned != "t2" || retired != "t0" {
		t.Fatalf("SpawnTarget = (%q, %q), want t2 spawned and LRU t0 retired", spawned, retired)
	}
	if _, err := m.AdaptIncremental(phaseB[1], 2); err != nil {
		t.Fatal(err)
	}
	names := func() []string {
		var out []string
		for _, ti := range m.TargetInfos() {
			out = append(out, ti.Name)
		}
		return out
	}
	if got := names(); len(got) != 2 || got[0] != "t1" || got[1] != "t2" {
		t.Fatalf("targets after LRU retirement = %v, want [t1 t2]", got)
	}

	// Retiring the active target (t2) must hand folds to the most recently
	// folded survivor (t1) without dropping anything.
	if err := m.RetireTarget("t2"); err != nil {
		t.Fatal(err)
	}
	infos := m.TargetInfos()
	if len(infos) != 1 || infos[0].Name != "t1" || !infos[0].Active {
		t.Fatalf("after retiring active target TargetInfos = %+v, want active t1", infos)
	}
	foldsBefore := infos[0].Folds
	if _, err := m.AdaptIncremental(phaseB[2], 2); err != nil {
		t.Fatal(err)
	}
	if got := m.TargetInfos(); got[0].Folds != foldsBefore+1 {
		t.Fatalf("fold after retirement landed nowhere: %+v", got)
	}
}

// TestMultiTargetPersistSME3 pins the SME3 codec: a multi-target (or
// non-default-named) state promotes the magic, survives save→load with
// identical predictions and target books, and stays canonical.
func TestMultiTargetPersistSME3(t *testing.T) {
	m, queries, phaseA, phaseB := targetFixture(t, 75)
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SpawnTarget("shift-1", 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdaptIncremental(phaseB[0], 2); err != nil {
		t.Fatal(err)
	}
	raw := marshalEnsemble(t, m)
	if got := string(raw[:4]); got != ensembleMagicV3 {
		t.Fatalf("multi-target magic %q, want %q", got, ensembleMagicV3)
	}
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	wantInfos, gotInfos := m.TargetInfos(), got.TargetInfos()
	if len(gotInfos) != len(wantInfos) {
		t.Fatalf("loaded %d targets, want %d", len(gotInfos), len(wantInfos))
	}
	for i := range wantInfos {
		if gotInfos[i] != wantInfos[i] {
			t.Fatalf("target %d books diverged after load: %+v vs %+v", i, gotInfos[i], wantInfos[i])
		}
	}
	for i, q := range queries {
		if a, b := m.Predict(q), got.Predict(q); a != b {
			t.Fatalf("query %d: original predicts %d, loaded predicts %d", i, a, b)
		}
	}
	if !bytes.Equal(raw, marshalEnsemble(t, got)) {
		t.Fatal("SME3 load→save is not byte-identical: the codec is not canonical")
	}

	// A custom-named single target is not the legacy shape either.
	m2, _, pa, _ := targetFixture(t, 76)
	if _, _, err := m2.SpawnTarget("custom", 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.AdaptIncremental(pa[0], 2); err != nil {
		t.Fatal(err)
	}
	if raw := marshalEnsemble(t, m2); string(raw[:4]) != ensembleMagicV3 {
		t.Fatalf("custom-named single target serialized as %q, want SME3", raw[:4])
	}

	// The default single-target shape must keep the legacy SME1 magic even
	// after the target machinery has churned (spawn + rollback).
	m3, _, pa3, _ := targetFixture(t, 77)
	if _, err := m3.AdaptIncremental(pa3[0], 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m3.SpawnTarget("", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := m3.Rollback(); err != nil {
		t.Fatal(err)
	}
	if raw := marshalEnsemble(t, m3); string(raw[:4]) != ensembleMagic {
		t.Fatalf("post-rollback default shape serialized as %q, want SME1", raw[:4])
	}
}

func TestBatchSimilarity(t *testing.T) {
	m, _, phaseA, phaseB := targetFixture(t, 78)
	if _, ok, err := m.BatchSimilarity(phaseA[0]); err != nil || ok {
		t.Fatalf("BatchSimilarity before any target = (ok=%v, err=%v), want not-ok", ok, err)
	}
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil {
		t.Fatal(err)
	}
	simA, ok, err := m.BatchSimilarity(phaseA[1])
	if err != nil || !ok {
		t.Fatalf("BatchSimilarity(in-distribution) = (ok=%v, err=%v)", ok, err)
	}
	simB, ok, err := m.BatchSimilarity(phaseB[0])
	if err != nil || !ok {
		t.Fatalf("BatchSimilarity(shifted) = (ok=%v, err=%v)", ok, err)
	}
	if simA <= simB {
		t.Fatalf("in-distribution similarity %.4f not above shifted %.4f — the drift signal is dead", simA, simB)
	}
	if _, _, err := m.BatchSimilarity(nil); !errors.Is(err, ErrInvalidTargets) {
		t.Fatalf("empty batch err = %v, want ErrInvalidTargets", err)
	}
	if _, _, err := m.BatchSimilarity([]hdc.Vector{hdc.New(64)}); !errors.Is(err, ErrInvalidTargets) {
		t.Fatalf("dim-mismatch err = %v, want ErrInvalidTargets", err)
	}
}

// TestConcurrentPredictsAcrossSpawnFoldRollback extends the torn-snapshot
// -race test across the drift lifecycle: lock-free ScoreInto calls racing a
// spawn→fold→fold→rollback→fold sequence must only ever observe exact
// published versions, which are precomputed on a byte-identical replica
// driven through the same sequence serially.
func TestConcurrentPredictsAcrossSpawnFoldRollback(t *testing.T) {
	m, queries, phaseA, phaseB := targetFixture(t, 79)
	probe := queries[0]
	classes := m.Config().Classes
	replica, err := Decode(bytes.NewReader(marshalEnsemble(t, m)))
	if err != nil {
		t.Fatal(err)
	}

	type step func(*Ensemble) error
	fold := func(batch []hdc.Vector) step {
		return func(e *Ensemble) error { _, err := e.AdaptIncremental(batch, 2); return err }
	}
	sequence := []step{
		fold(phaseA[0]),
		func(e *Ensemble) error { _, _, err := e.SpawnTarget("", 0, false); return err },
		fold(phaseB[0]),
		fold(phaseB[1]),
		func(e *Ensemble) error { return e.Rollback() },
		fold(phaseA[1]),
	}

	var expected [][]float64
	record := func(e *Ensemble) {
		scores := make([]float64, classes)
		if err := e.ScoreInto(probe, scores); err != nil {
			t.Fatal(err)
		}
		expected = append(expected, scores)
	}
	record(replica)
	for _, s := range sequence {
		if err := s(replica); err != nil {
			t.Fatal(err)
		}
		record(replica)
	}

	matches := func(scores []float64) bool {
		for _, want := range expected {
			if floatsEqual(scores, want) {
				return true
			}
		}
		return false
	}

	var wg sync.WaitGroup
	errCh := make(chan string, 1)
	report := func(msg string) {
		select {
		case errCh <- msg:
		default:
		}
	}
	stop := make(chan struct{})
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scores := make([]float64, classes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.ScoreInto(probe, scores); err != nil {
					report(err.Error())
					return
				}
				if !matches(scores) {
					report("ScoreInto saw a vector matching no published version across spawn/fold/rollback (torn snapshot?)")
					return
				}
			}
		}()
	}
	for _, s := range sequence {
		if err := s(m); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
	final := scoresOf(t, m, probe)
	if !floatsEqual(final, expected[len(expected)-1]) {
		t.Fatalf("final scores %v, want replica's %v", final, expected[len(expected)-1])
	}
}

// TestRetireNeverDropsInFlightFolds races concurrent incremental folds
// against target spawns and retirements: every fold must either land in the
// target it addressed or the reassigned destination — never error, never
// vanish into a half-removed target.
func TestRetireNeverDropsInFlightFolds(t *testing.T) {
	m, _, phaseA, phaseB := targetFixture(t, 80)
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	const folders, foldsEach = 4, 6
	for w := range folders {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range foldsEach {
				batch := phaseB[(w+i)%len(phaseB)]
				if _, err := m.AdaptIncremental(batch, 1); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for i := range 6 {
		name, _, err := m.SpawnTarget("", 3, i%2 == 1)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := m.RetireTarget(name); err != nil && !errors.Is(err, ErrUnknownTarget) {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent fold failed during spawn/retire churn: %v", err)
	}
	total := int64(0)
	for _, ti := range m.TargetInfos() {
		total += ti.Folds
	}
	if total == 0 {
		t.Fatal("no folds survived the spawn/retire churn")
	}
	// The surviving state must still round-trip canonically.
	raw := marshalEnsemble(t, m)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, marshalEnsemble(t, got)) {
		t.Fatal("post-churn state does not round-trip canonically")
	}
}

// fuzzEnsemble builds a tiny trained ensemble for fuzz seeds.
func fuzzEnsemble(f *testing.F, targets int) []byte {
	f.Helper()
	const dim = 64
	rng := testRNG(0xfe)
	m, err := New(Config{Dim: dim, Classes: 2, RetrainEpochs: 0, AdaptEpochs: 1, Confidence: 0.005, AdaptRate: 2})
	if err != nil {
		f.Fatal(err)
	}
	var samples []Sample
	for c := range 2 {
		for range 4 {
			samples = append(samples, Sample{HV: hdc.Random(rng, dim), Class: c, Domain: 0})
		}
	}
	if err := m.Train(samples); err != nil {
		f.Fatal(err)
	}
	batch := []hdc.Vector{hdc.Random(rng, dim), hdc.Random(rng, dim)}
	for i := range targets {
		if i > 0 {
			if _, _, err := m.SpawnTarget("", 0, false); err != nil {
				f.Fatal(err)
			}
		}
		if _, err := m.AdaptIncremental(batch, 1); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzEnsembleReadFrom drives the versioned codec (SME1/SME2/SME3 headers,
// target counts, name frames, accumulator frames) with corrupt and
// truncated inputs: parsing must never panic, and anything that parses must
// re-encode canonically (encode→decode→encode is a fixed point).
func FuzzEnsembleReadFrom(f *testing.F) {
	sme1 := fuzzEnsemble(f, 1)
	sme3 := fuzzEnsemble(f, 3)
	f.Add(sme1)
	f.Add(fuzzEnsemble(f, 0))
	f.Add(sme3)
	// Corrupt target count in the SME3 header (magic + config + strategy
	// names "margin"+"constant"+"bundle" + domain count).
	tcOff := 4 + 16 + 24 + (4 + 6) + (4 + 8) + (4 + 6) + 4
	corrupt := bytes.Clone(sme3)
	binary.LittleEndian.PutUint32(corrupt[tcOff:], 1<<30)
	f.Add(corrupt)
	corrupt = bytes.Clone(sme3)
	binary.LittleEndian.PutUint32(corrupt[tcOff+4:], 17) // active outside target count
	f.Add(corrupt)
	f.Add(sme3[:len(sme3)-7]) // truncated target record
	f.Add(sme1[:50])
	f.Add([]byte("SME3"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if _, err := m.WriteTo(&b1); err != nil {
			t.Fatalf("re-encode of a successfully decoded ensemble failed: %v", err)
		}
		m2, err := Decode(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("decode of a re-encoded ensemble failed: %v", err)
		}
		var b2 bytes.Buffer
		if _, err := m2.WriteTo(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("codec not canonical: %d vs %d bytes", b1.Len(), b2.Len())
		}
	})
}
