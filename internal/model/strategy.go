package model

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"go-arxiv/smore/internal/hdc"
)

// ErrUnknownStrategy marks a strategy name that does not resolve to a
// registered rule — a caller error (HTTP 400 at the serving layer).
var ErrUnknownStrategy = errors.New("model: unknown strategy")

// ConfidenceRule turns one sample's per-class score vector into a
// pseudo-label candidate: the predicted class, a confidence value that the
// schedule's threshold is compared against, and the similarity that scales
// the update weight. Assess runs concurrently on the scoring worker pool,
// so implementations must be stateless (or otherwise safe for concurrent
// calls) and must not retain the scores slice.
type ConfidenceRule interface {
	Name() string
	Assess(scores []float64) (class int, conf, sim float64)
}

// Schedule yields the acceptance threshold and the per-class TopFrac cap
// for each adaptation epoch (0-based), so variants can anneal either knob
// across the adaptation run instead of holding them constant.
type Schedule interface {
	Name() string
	Epoch(epoch, total int, cfg Config) (threshold, topFrac float64)
}

// UpdateRule decides how accepted pseudo-labeled samples fold into the
// target model's class accumulators. NewUpdater is called once per Adapt*
// call; the returned Updater may carry state across that call's epochs
// (e.g. EMA staging accumulators) and is only ever driven from a single
// goroutine, in a deterministic order.
type UpdateRule interface {
	Name() string
	NewUpdater(cfg Config) Updater
}

// Updater is the per-adaptation-run state of an UpdateRule. Apply folds
// one accepted sample into class acc[class]; calls arrive in a fixed order
// (class ascending, most confident first within a class), so the adapted
// model is byte-identical for every worker count. FinishEpoch runs after
// every accepted sample of an epoch has been applied, before the
// prototypes are rebuilt.
type Updater interface {
	Apply(acc []*hdc.Accumulator, class int, hv hdc.Vector, sim float64)
	FinishEpoch(acc []*hdc.Accumulator)
}

// Strategy bundles the three pluggable pieces of the adaptation loop. The
// zero value (all nil) means the default recipe — MarginConfidence +
// ConstantSchedule + BundleUpdate — which reproduces the historical fixed
// loop byte-identically.
type Strategy struct {
	Confidence ConfidenceRule
	Schedule   Schedule
	Update     UpdateRule
}

// DefaultStrategy returns the paper's recipe: confidence-margin
// pseudo-labels, constant threshold/TopFrac, direct bundling updates.
func DefaultStrategy() Strategy {
	return Strategy{
		Confidence: MarginConfidence{},
		Schedule:   ConstantSchedule{},
		Update:     BundleUpdate{},
	}
}

// withDefaults fills nil pieces with the default recipe's.
func (s Strategy) withDefaults() Strategy {
	if s.Confidence == nil {
		s.Confidence = MarginConfidence{}
	}
	if s.Schedule == nil {
		s.Schedule = ConstantSchedule{}
	}
	if s.Update == nil {
		s.Update = BundleUpdate{}
	}
	return s
}

// Names returns the registered names of the three pieces (nil pieces
// report the default piece's name).
func (s Strategy) Names() (confidence, schedule, update string) {
	s = s.withDefaults()
	return s.Confidence.Name(), s.Schedule.Name(), s.Update.Name()
}

// String renders the strategy as the canonical "confidence+schedule+update"
// spec accepted by ParseStrategySpec.
func (s Strategy) String() string {
	c, sc, u := s.Names()
	return c + "+" + sc + "+" + u
}

// isDefault reports whether the strategy is the default recipe, which is
// persisted in the legacy "SME1" layout for byte-compatibility.
func (s Strategy) isDefault() bool {
	c, sc, u := s.Names()
	return c == "margin" && sc == "constant" && u == "bundle"
}

// ParseConfidenceRule resolves a registered confidence rule by name; the
// empty string means the default (margin).
func ParseConfidenceRule(name string) (ConfidenceRule, error) {
	switch name {
	case "", "margin":
		return MarginConfidence{}, nil
	case "entropy":
		return EntropyConfidence{}, nil
	case "entropy-cal":
		return EntropyCalConfidence{}, nil
	}
	return nil, fmt.Errorf("%w: confidence rule %q (have: %s)", ErrUnknownStrategy, name, strings.Join(ConfidenceRuleNames(), ", "))
}

// ParseSchedule resolves a registered schedule by name; the empty string
// means the default (constant).
func ParseSchedule(name string) (Schedule, error) {
	switch name {
	case "", "constant":
		return ConstantSchedule{}, nil
	case "anneal":
		return AnnealSchedule{}, nil
	}
	return nil, fmt.Errorf("%w: schedule %q (have: %s)", ErrUnknownStrategy, name, strings.Join(ScheduleNames(), ", "))
}

// ParseUpdateRule resolves a registered update rule by name; the empty
// string means the default (bundle).
func ParseUpdateRule(name string) (UpdateRule, error) {
	switch name {
	case "", "bundle":
		return BundleUpdate{}, nil
	case "ema":
		return EMAUpdate{}, nil
	}
	return nil, fmt.Errorf("%w: update rule %q (have: %s)", ErrUnknownStrategy, name, strings.Join(UpdateRuleNames(), ", "))
}

// ConfidenceRuleNames lists the registered confidence rules.
func ConfidenceRuleNames() []string { return []string{"margin", "entropy", "entropy-cal"} }

// ScheduleNames lists the registered schedules.
func ScheduleNames() []string { return []string{"constant", "anneal"} }

// UpdateRuleNames lists the registered update rules.
func UpdateRuleNames() []string { return []string{"bundle", "ema"} }

// ParseStrategy assembles a strategy from the three piece names; empty
// names select the default piece.
func ParseStrategy(confidence, schedule, update string) (Strategy, error) {
	c, err := ParseConfidenceRule(confidence)
	if err != nil {
		return Strategy{}, err
	}
	sc, err := ParseSchedule(schedule)
	if err != nil {
		return Strategy{}, err
	}
	u, err := ParseUpdateRule(update)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Confidence: c, Schedule: sc, Update: u}, nil
}

// ParseStrategySpec parses a "confidence+schedule+update" spec (the format
// String renders). The empty spec means the default strategy.
func ParseStrategySpec(spec string) (Strategy, error) {
	if spec == "" {
		return DefaultStrategy(), nil
	}
	parts := strings.Split(spec, "+")
	if len(parts) != 3 {
		return Strategy{}, fmt.Errorf("%w: spec %q must be confidence+schedule+update", ErrUnknownStrategy, spec)
	}
	return ParseStrategy(parts[0], parts[1], parts[2])
}

// MarginConfidence is the paper's rule: a sample is confident when the
// cosine margin between its best and second-best class clears the
// threshold. The similarity of the winning class weights the update.
type MarginConfidence struct{}

// Name implements ConfidenceRule.
func (MarginConfidence) Name() string { return "margin" }

// Assess implements ConfidenceRule.
func (MarginConfidence) Assess(scores []float64) (int, float64, float64) {
	best, second := top2(scores)
	return best, scores[best] - scores[second], scores[best]
}

// EntropyConfidence scores a sample by how peaked its class-similarity
// distribution is: confidence is 1 − H(p)/ln(n) where p normalizes the
// (1+cos)/2 vote weights over the n classes with finite scores. Near-zero
// for an uninformative (uniform) score vector and 1 for a one-class field,
// it lives on a scale comparable to the margin rule's, so the same
// Config.Confidence threshold remains a sensible knob.
type EntropyConfidence struct{}

// Name implements ConfidenceRule.
func (EntropyConfidence) Name() string { return "entropy" }

// Assess implements ConfidenceRule.
func (EntropyConfidence) Assess(scores []float64) (int, float64, float64) {
	best := argmax(scores)
	sum, wlogw := 0.0, 0.0
	finite := 0
	for _, s := range scores {
		// Never-trained classes score -Inf (and poisoned entries NaN);
		// they carry no probability mass and must not dilute the entropy.
		if math.IsNaN(s) || math.IsInf(s, -1) {
			continue
		}
		finite++
		if w := simWeight(s); w > 0 {
			sum += w
			wlogw += w * math.Log(w)
		}
	}
	conf := 1.0
	if finite > 1 && sum > 0 {
		// H of the normalized weights, computed without materializing p:
		// H = ln(sum) − Σ w·ln(w) / sum.
		h := math.Log(sum) - wlogw/sum
		conf = 1 - h/math.Log(float64(finite))
		if conf < 0 { // guard float rounding below the H ≤ ln(n) bound
			conf = 0
		}
	}
	return best, conf, scores[best]
}

// EntropyCalConfidence is the entropy rule calibrated to the margin
// threshold scale. The raw entropy rule normalizes (1+cos)/2 vote weights,
// and on realistic score vectors — cosines clustered in a narrow positive
// band — those weights are near-uniform, so H sits within rounding of
// ln(n) and the confidence collapses to ~1e-4: below any usable margin
// threshold, so almost no pseudo-label is ever accepted. The calibrated
// rule min-shifts first — weights are s_i − s_min over the classes with
// finite scores, zeroing the weakest class and spending the entropy budget
// on the contrast that actually separates the candidates — and then scales
// the peakedness 1 − H/ln(n) by the score spread s_best − s_min, putting
// the result in cosine-difference units. For two classes this reduces
// exactly to the margin rule (H is 0, the spread is the margin), and for
// more classes it is the spread discounted by how much of the mass the
// runner-up classes hold, so Config.Confidence keeps meaning one thing
// across rules. An uninformative all-equal vector still scores exactly 0.
type EntropyCalConfidence struct{}

// Name implements ConfidenceRule.
func (EntropyCalConfidence) Name() string { return "entropy-cal" }

// Assess implements ConfidenceRule.
func (EntropyCalConfidence) Assess(scores []float64) (int, float64, float64) {
	best := argmax(scores)
	low := math.Inf(1)
	finite := 0
	for _, s := range scores {
		// Never-trained classes score -Inf (and poisoned entries NaN);
		// they carry no probability mass and must not dilute the entropy.
		if math.IsNaN(s) || math.IsInf(s, -1) {
			continue
		}
		finite++
		if s < low {
			low = s
		}
	}
	sum, wlogw := 0.0, 0.0
	for _, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, -1) {
			continue
		}
		if w := s - low; w > 0 {
			sum += w
			wlogw += w * math.Log(w)
		}
	}
	conf := 0.0
	if finite > 1 && sum > 0 {
		// H of the normalized min-shifted weights, computed without
		// materializing p: H = ln(sum) − Σ w·ln(w) / sum.
		h := math.Log(sum) - wlogw/sum
		peak := 1 - h/math.Log(float64(finite))
		if peak < 0 { // guard float rounding below the H ≤ ln(n) bound
			peak = 0
		}
		conf = peak * (rank(scores[best]) - low)
	}
	return best, conf, scores[best]
}

// ConstantSchedule holds the configured threshold and TopFrac for every
// epoch — the paper's fixed recipe.
type ConstantSchedule struct{}

// Name implements Schedule.
func (ConstantSchedule) Name() string { return "constant" }

// Epoch implements Schedule.
func (ConstantSchedule) Epoch(_, _ int, cfg Config) (float64, float64) {
	return cfg.Confidence, effTopFrac(cfg.TopFrac)
}

// annealStartFactor is how much stricter than Config.Confidence the
// annealed schedule starts.
const annealStartFactor = 4.0

// AnnealSchedule starts strict and relaxes linearly over the adaptation
// run: the acceptance threshold decays from annealStartFactor×Confidence
// down to Confidence by the final epoch, while the per-class TopFrac cap
// ramps from half its configured value up to full. Early epochs therefore
// fold only the most trustworthy pseudo-labels — before the target
// prototypes have moved — and later epochs open the gates once the model
// has adapted toward the target distribution.
type AnnealSchedule struct{}

// Name implements Schedule.
func (AnnealSchedule) Name() string { return "anneal" }

// Epoch implements Schedule.
func (AnnealSchedule) Epoch(epoch, total int, cfg Config) (float64, float64) {
	frac := 1.0
	if total > 1 {
		frac = float64(epoch) / float64(total-1)
	}
	top := effTopFrac(cfg.TopFrac)
	return cfg.Confidence * (annealStartFactor - (annealStartFactor-1)*frac),
		top * (0.5 + 0.5*frac)
}

// effTopFrac applies the historical TopFrac default: zero means 0.5.
func effTopFrac(f float64) float64 {
	if f == 0 {
		return 0.5
	}
	return f
}

// BundleUpdate is the paper's update: each accepted sample is added to its
// pseudo-class accumulator with weight AdaptRate·(1+sim)/2, permanently.
type BundleUpdate struct{}

// Name implements UpdateRule.
func (BundleUpdate) Name() string { return "bundle" }

// NewUpdater implements UpdateRule.
func (BundleUpdate) NewUpdater(cfg Config) Updater { return bundleUpdater{rate: cfg.AdaptRate} }

type bundleUpdater struct{ rate float64 }

func (u bundleUpdater) Apply(acc []*hdc.Accumulator, class int, hv hdc.Vector, sim float64) {
	// Similarity-proportional update: the closer the sample already is to
	// the winning prototype, the more it reinforces it.
	acc[class].Add(hv, u.rate*simWeight(sim))
}

func (bundleUpdater) FinishEpoch([]*hdc.Accumulator) {}

// defaultEMAMomentum is the history weight μ of EMAUpdate when Momentum is
// left zero.
const defaultEMAMomentum = 0.9

// EMAUpdate is a momentum prototype update in the spirit of MoSSDA's
// momentum encoder: accepted samples of one epoch are staged into per-class
// delta accumulators, and at epoch end each touched class accumulator is
// replaced by μ·acc + Δ, computed entirely on the existing accumulator
// counters via AddScaled. History decays geometrically, so the target
// prototypes track the pseudo-label stream instead of being permanently
// anchored by the earliest (least adapted) epochs.
type EMAUpdate struct {
	// Momentum is the history weight μ in (0,1); zero means 0.9.
	Momentum float64
}

// Name implements UpdateRule.
func (EMAUpdate) Name() string { return "ema" }

// NewUpdater implements UpdateRule.
func (u EMAUpdate) NewUpdater(cfg Config) Updater {
	mom := u.Momentum
	if mom == 0 {
		mom = defaultEMAMomentum
	}
	return &emaUpdater{
		rate:     cfg.AdaptRate,
		momentum: mom,
		dim:      cfg.Dim,
		delta:    make([]*hdc.Accumulator, cfg.Classes),
		touched:  make([]bool, cfg.Classes),
	}
}

type emaUpdater struct {
	rate     float64
	momentum float64
	dim      int
	delta    []*hdc.Accumulator // per-class epoch staging, lazily allocated
	touched  []bool
}

func (u *emaUpdater) Apply(acc []*hdc.Accumulator, class int, hv hdc.Vector, sim float64) {
	d := u.delta[class]
	if d == nil {
		d = hdc.NewAccumulator(u.dim)
		u.delta[class] = d
	}
	d.Add(hv, u.rate*simWeight(sim))
	u.touched[class] = true
}

func (u *emaUpdater) FinishEpoch(acc []*hdc.Accumulator) {
	for c, d := range u.delta {
		if !u.touched[c] {
			continue
		}
		ema := hdc.NewAccumulator(u.dim)
		ema.AddScaled(acc[c], u.momentum)
		ema.AddScaled(d, 1)
		acc[c] = ema
		d.Reset()
		u.touched[c] = false
	}
}
