package model

import (
	"math"
	"testing"

	"go-arxiv/smore/internal/hdc"
)

// fastpathEnsemble builds a small trained ensemble plus aligned queries
// for the fast-path tests and benchmarks.
func fastpathEnsemble(t testing.TB, classes int) (*Ensemble, []hdc.Vector) {
	t.Helper()
	rng := testRNG(61)
	_, samples := cluster(rng, classes, 12, testDim/3, 0)
	m, err := New(Config{Dim: testDim, Classes: classes, RetrainEpochs: 1, AdaptEpochs: 2, Confidence: 0.005, AdaptRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	hvs := make([]hdc.Vector, len(samples))
	for i, s := range samples {
		hvs[i] = s.HV
	}
	return m, hvs
}

func TestScoreIntoMatchesPredict(t *testing.T) {
	m, hvs := fastpathEnsemble(t, 6)
	scores := make([]float64, 6)
	for _, hv := range hvs {
		if err := m.ScoreInto(hv, scores); err != nil {
			t.Fatal(err)
		}
		if got, want := argmax(scores), m.Predict(hv); got != want {
			t.Fatalf("argmax(ScoreInto) = %d, Predict = %d", got, want)
		}
	}
	// After adaptation ScoreInto must switch to the adapted model, exactly
	// like Predict does.
	if _, err := m.Adapt(hvs); err != nil {
		t.Fatal(err)
	}
	for _, hv := range hvs {
		if err := m.ScoreInto(hv, scores); err != nil {
			t.Fatal(err)
		}
		if got, want := argmax(scores), m.Predict(hv); got != want {
			t.Fatalf("adapted: argmax(ScoreInto) = %d, Predict = %d", got, want)
		}
	}
}

func TestScoreIntoErrors(t *testing.T) {
	m, err := New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := hdc.New(testDim)
	if err := m.ScoreInto(q, make([]float64, 4)); err == nil {
		t.Error("ScoreInto before Train did not error")
	}
	trained, _ := fastpathEnsemble(t, 4)
	if err := trained.ScoreInto(q, make([]float64, 3)); err == nil {
		t.Error("ScoreInto with a short dst did not error")
	}
	if err := trained.ScoreInto(hdc.New(64), make([]float64, 4)); err == nil {
		t.Error("ScoreInto with a mismatched query dimension did not error")
	}
	scores := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	if err := trained.ScoreInto(trained.domains[0].classProt[0], scores); err != nil {
		t.Fatal(err)
	}
	for c, s := range scores {
		if math.IsNaN(s) {
			t.Fatalf("class %d score left NaN", c)
		}
	}
}

// TestPredictZeroAllocs pins the pooled-scratch predict paths at zero
// steady-state allocations, before and after adaptation, so the serving
// hot path cannot silently regress.
func TestPredictZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	m, hvs := fastpathEnsemble(t, 5)
	q := hvs[0]
	m.Predict(q) // warm the pool
	if allocs := testing.AllocsPerRun(100, func() { m.Predict(q) }); allocs != 0 {
		t.Fatalf("source-ensemble Predict allocated %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { m.PredictSource(q) }); allocs != 0 {
		t.Fatalf("PredictSource allocated %.1f times per run, want 0", allocs)
	}
	if _, err := m.Adapt(hvs); err != nil {
		t.Fatal(err)
	}
	m.Predict(q)
	if allocs := testing.AllocsPerRun(100, func() { m.Predict(q) }); allocs != 0 {
		t.Fatalf("adapted Predict allocated %.1f times per run, want 0", allocs)
	}
}

// TestScoreIntoZeroAllocs pins ScoreInto's caller-owned-buffer contract.
func TestScoreIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	m, hvs := fastpathEnsemble(t, 5)
	q := hvs[0]
	scores := make([]float64, 5)
	if err := m.ScoreInto(q, scores); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.ScoreInto(q, scores); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ScoreInto allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkScoreInto is the contiguous similarity kernel over the full
// source ensemble (domain weighting plus per-domain class scoring).
func BenchmarkScoreInto(b *testing.B) {
	m, hvs := fastpathEnsemble(b, 8)
	q := hvs[0]
	scores := make([]float64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if err := m.ScoreInto(q, scores); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch is the serving-layer inference path: a batch of
// queries fanned out over the worker pool against the packed prototypes.
func BenchmarkPredictBatch(b *testing.B) {
	m, hvs := fastpathEnsemble(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		m.PredictBatch(hvs, 0)
	}
}
