// Package model implements SMORE's associative-memory classifier and its
// similarity-based domain adaptation. Training builds one class-prototype
// set per source domain plus a domain prototype (the bundle of all of the
// domain's samples). Inference on an unseen domain weights every source
// model by the similarity of the query to that domain's prototype.
// Adaptation scores unlabeled target samples against the ensemble,
// pseudo-labels the high-confidence ones, and folds them into a dedicated
// target model with similarity-proportional weights.
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/parallel"
)

// ErrNotTrained marks operations that need a trained ensemble first — a
// state conflict (HTTP 409 at the serving layer), not a bad request.
var ErrNotTrained = errors.New("model: not trained")

// ErrInvalidTargets marks adaptation inputs that can never succeed (empty
// batch, dimension mismatch) — a caller error (HTTP 400 at the serving
// layer), distinct from state conflicts like ErrNotTrained.
var ErrInvalidTargets = errors.New("model: invalid targets")

// ErrInvalidConfig marks configuration values Validate rejects, so callers
// (the serving layer mapping upload errors to HTTP 400, the CLI) can detect
// a config problem with errors.Is instead of string matching.
var ErrInvalidConfig = errors.New("model: invalid config")

// Config parameterizes a Model.
type Config struct {
	Dim     int // hypervector dimension, must match the encoder
	Classes int // number of classes

	// RetrainEpochs is how many perceptron-style passes Train makes over
	// the labeled data after the initial single-shot bundling.
	RetrainEpochs int

	// AdaptEpochs is how many passes Adapt makes over the unlabeled
	// target samples.
	AdaptEpochs int

	// Confidence is the minimum similarity margin between the best and
	// second-best class for a target sample to be pseudo-labeled.
	Confidence float64

	// AdaptRate scales the similarity-proportional weight of each
	// pseudo-labeled update.
	AdaptRate float64

	// TopFrac caps, per pseudo-class and per epoch, the fraction of
	// confident samples actually applied (most-confident first). This
	// keeps one noisy class from flooding the update and collapsing the
	// prototypes. Zero means the default of 0.5.
	TopFrac float64
}

// Validate reports the first configuration error, if any. Every failure
// wraps ErrInvalidConfig.
func (c Config) Validate() error {
	if err := hdc.CheckDim(c.Dim); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	switch {
	case c.Classes < 2:
		return fmt.Errorf("%w: Classes %d < 2", ErrInvalidConfig, c.Classes)
	case c.RetrainEpochs < 0:
		return fmt.Errorf("%w: RetrainEpochs %d < 0", ErrInvalidConfig, c.RetrainEpochs)
	case c.AdaptEpochs < 1:
		return fmt.Errorf("%w: AdaptEpochs %d < 1", ErrInvalidConfig, c.AdaptEpochs)
	case !(c.Confidence >= 0 && c.Confidence <= 1): // rejects NaN too
		return fmt.Errorf("%w: Confidence %v outside [0,1]", ErrInvalidConfig, c.Confidence)
	// The bounds rail against hdc's fixed-point accumulator: rates below
	// 1/128 can quantize every update to a no-op (the per-sample weight is
	// AdaptRate*(1+sim)/2, and the accumulator resolves 1/256 steps), and
	// rates above 2^20 exceed its weight range. NaN/Inf fail both bounds.
	case !(c.AdaptRate >= 1.0/128 && c.AdaptRate <= 1<<20):
		return fmt.Errorf("%w: AdaptRate %v outside [1/128, 2^20]", ErrInvalidConfig, c.AdaptRate)
	case !(c.TopFrac >= 0 && c.TopFrac <= 1):
		return fmt.Errorf("%w: TopFrac %v outside [0,1]", ErrInvalidConfig, c.TopFrac)
	}
	return nil
}

// Sample is one encoded training example.
type Sample struct {
	HV     hdc.Vector
	Class  int
	Domain int
}

// domainModel is the associative memory of a single domain.
type domainModel struct {
	id         int
	classAcc   []*hdc.Accumulator
	classCount []int64 // training samples (or pseudo-labels) seen per class

	// protMat packs the binarized class prototypes row-major into one
	// contiguous allocation, rebuilt in place by rebuildPrototypes, so
	// scores streams a single cache-friendly popcount pass over all
	// classes instead of chasing per-class heap slices.
	protMat   *hdc.Matrix
	classProt []hdc.Vector // row views into protMat, shared storage
	domAcc    *hdc.Accumulator
	domProt   hdc.Vector
}

func newDomainModel(id int, cfg Config) *domainModel {
	dm := &domainModel{
		id:         id,
		classAcc:   make([]*hdc.Accumulator, cfg.Classes),
		classCount: make([]int64, cfg.Classes),
		domAcc:     hdc.NewAccumulator(cfg.Dim),
	}
	for c := range dm.classAcc {
		dm.classAcc[c] = hdc.NewAccumulator(cfg.Dim)
	}
	return dm
}

// rebuildPrototypes binarizes the accumulators straight into the packed
// prototype matrix (allocating it on first use), overwriting the previous
// prototypes in place.
func (dm *domainModel) rebuildPrototypes() {
	if dm.protMat == nil {
		dim := dm.domAcc.Dim()
		dm.protMat = hdc.NewMatrix(len(dm.classAcc), dim)
		dm.classProt = make([]hdc.Vector, len(dm.classAcc))
		for c := range dm.classProt {
			dm.classProt[c] = dm.protMat.Row(c)
		}
		dm.domProt = hdc.New(dim)
	}
	for c, acc := range dm.classAcc {
		row := dm.protMat.Row(c)
		acc.MajorityInto(&row)
	}
	dm.domAcc.MajorityInto(&dm.domProt)
}

// scores fills dst with the cosine similarity of hv to each class prototype
// in one contiguous kernel pass (see protoScores for the never-trained-class
// -Inf exclusion).
func (dm *domainModel) scores(hv hdc.Vector, dst []float64) {
	protoScores(dm.protMat, dm.classCount, hv, dst)
}

// targetModel is one named continual-adaptation target domain: a domainModel
// plus the bookkeeping the drift machinery needs. A target spawned by
// SpawnTarget starts pending (protMat nil) and is initialized from the
// similarity-weighted source mixture by the first fold addressed to it;
// pending targets take no part in voting or persistence.
type targetModel struct {
	*domainModel
	name     string
	folds    int64 // folds applied to this target (Adapt*, AdaptTarget)
	lastFold int64 // ensemble foldClock at the most recent fold; drives LRU retirement
}

// ready reports whether the target has been initialized by a fold and
// therefore participates in voting and persistence.
func (t *targetModel) ready() bool { return t.protMat != nil }

// Ensemble is the multi-domain associative memory: one model per source
// domain, combined at inference time by similarity-weighted voting, plus a
// set of named adapted target models (continual adaptation spawns one per
// detected distribution shift; see SpawnTarget/RetireTarget/Rollback).
//
// Concurrency: the ensemble is a copy-on-write shadow behind an immutable
// published Snapshot. Mutators — Train, Adapt*, ReadFrom, WriteTo,
// SpawnTarget, RetireTarget, Rollback, ResetAdaptation — serialize on an
// internal mutex, fold into the shadow state, and publish a fresh Snapshot
// with one atomic pointer swap. Every read path (Predict*, ScoreInto,
// Adapted, AdaptedPrototypes, Accuracy) goes through the current snapshot
// and is completely lock-free, so predictions never stall behind an
// adaptation fold and always see either the state before a fold or after
// it, never a half-rebuilt prototype.
type Ensemble struct {
	mu      sync.Mutex // serializes mutators; read paths never take it
	cfg     Config
	domains []*domainModel
	domMat  *hdc.Matrix // packed source domain prototypes for domainWeights

	// targets is the set of adapted target domains, in spawn order. active
	// indexes the fold destination (-1 when none); folds address it, or a
	// target by name via AdaptTarget. foldClock is the logical clock behind
	// LRU retirement; spawnSeq numbers auto-generated target names.
	// checkpoint holds the canonical encoding of the state captured by the
	// last SpawnTarget/RetireTarget, for Rollback; nil when none exists.
	targets    []*targetModel
	active     int
	spawnSeq   int
	foldClock  int64
	checkpoint []byte

	// strategy is the pluggable adaptation recipe (zero value = default).
	// It has its own short mutex so Strategy() never blocks behind a long
	// adaptation fold holding mu; stratMu is only ever taken on its own or
	// inside mu, never the other way around.
	stratMu  sync.Mutex
	strategy Strategy

	snap atomic.Pointer[Snapshot] // current published read-only view
	pool scratchPool              // zero-alloc scoring scratch, shared across snapshots
}

// publish deep-copies the current prototype state into a fresh immutable
// Snapshot and swaps it in as the served view. Callers must hold m.mu and
// have rebuilt the prototypes first.
//
//smore:locked
func (m *Ensemble) publish() {
	s := &Snapshot{
		cfg:     m.cfg,
		domains: make([]snapDomain, len(m.domains)),
		domMat:  m.domMat.Clone(),
		active:  -1,
		pool:    &m.pool,
	}
	for i, dm := range m.domains {
		s.domains[i] = snapDomain{
			protMat:    dm.protMat.Clone(),
			classCount: append([]int64(nil), dm.classCount...),
		}
	}
	// Only ready targets vote; a pending spawn has no prototypes yet.
	for i, t := range m.targets {
		if !t.ready() {
			continue
		}
		if i == m.active {
			s.active = len(s.targets)
		}
		s.targets = append(s.targets, snapDomain{
			protMat:    t.protMat.Clone(),
			classCount: append([]int64(nil), t.classCount...),
		})
	}
	if len(s.targets) > 1 {
		// Pack the target domain prototypes so the multi-target vote can
		// weight every target in one kernel pass, mirroring domMat.
		s.tgtMat = hdc.NewMatrix(len(s.targets), m.cfg.Dim)
		row := 0
		for _, t := range m.targets {
			if !t.ready() {
				continue
			}
			s.tgtMat.SetRow(row, t.domProt)
			row++
		}
	}
	m.snap.Store(s)
}

// activeLocked returns the current fold-destination target, or nil when none
// exists. Callers must hold m.mu.
func (m *Ensemble) activeLocked() *targetModel {
	if m.active < 0 || m.active >= len(m.targets) {
		return nil
	}
	return m.targets[m.active]
}

// Snapshot returns the currently published immutable view, or nil before
// Train (or a successful ReadFrom) has run. The snapshot's scoring methods
// are lock-free and safe for any number of concurrent callers; hold it to
// score a whole batch against one consistent model state.
func (m *Ensemble) Snapshot() *Snapshot { return m.snap.Load() }

// mustSnapshot is the read-path entry: panics like the historical scoring
// paths did when the ensemble has never been trained.
func (m *Ensemble) mustSnapshot() *Snapshot {
	s := m.snap.Load()
	if s == nil {
		panic("model: Predict before Train")
	}
	return s
}

// rebuildDomainMatrix packs the source domain prototypes row-major so
// domainWeights scores them in one kernel pass. Called whenever the set of
// source domains (re)forms: after Train and after ReadFrom.
func (m *Ensemble) rebuildDomainMatrix() {
	m.domMat = hdc.NewMatrix(len(m.domains), m.cfg.Dim)
	for i, dm := range m.domains {
		m.domMat.SetRow(i, dm.domProt)
	}
}

// New returns an untrained ensemble.
func New(cfg Config) (*Ensemble, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Ensemble{cfg: cfg, active: -1}, nil
}

// SetStrategy installs the adaptation strategy used by subsequent Adapt*
// calls (nil pieces fall back to the default recipe). It is safe to call
// concurrently with every other method; an adaptation fold already in
// flight finishes under the strategy it started with.
func (m *Ensemble) SetStrategy(s Strategy) {
	m.stratMu.Lock()
	m.strategy = s.withDefaults()
	m.stratMu.Unlock()
}

// Strategy returns the currently installed adaptation strategy (the
// default recipe until SetStrategy or a strategy-carrying ReadFrom runs).
func (m *Ensemble) Strategy() Strategy {
	m.stratMu.Lock()
	defer m.stratMu.Unlock()
	return m.strategy.withDefaults()
}

// Config returns the ensemble's configuration. Like every other read path
// it goes through the published snapshot, so it is safe concurrently with
// mutators (ReadFrom replaces cfg); before the first Train/ReadFrom there
// is no snapshot yet and it falls back to the mutator lock.
func (m *Ensemble) Config() Config {
	if s := m.snap.Load(); s != nil {
		return s.cfg
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg
}

// Train builds per-domain class prototypes from labeled samples: a
// single-shot bundling pass followed by cfg.RetrainEpochs perceptron-style
// correction passes that add each misclassified sample to its true class
// and subtract it from the predicted class.
func (m *Ensemble) Train(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("model: no training samples")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	byDomain := map[int]*domainModel{}
	for _, s := range samples {
		if s.Class < 0 || s.Class >= m.cfg.Classes {
			return fmt.Errorf("model: class %d outside [0,%d)", s.Class, m.cfg.Classes)
		}
		dm, ok := byDomain[s.Domain]
		if !ok {
			dm = newDomainModel(s.Domain, m.cfg)
			byDomain[s.Domain] = dm
		}
		dm.classAcc[s.Class].Add(s.HV, 1)
		dm.classCount[s.Class]++
		dm.domAcc.Add(s.HV, 1)
	}
	m.domains = make([]*domainModel, 0, len(byDomain))
	for _, dm := range byDomain {
		dm.rebuildPrototypes()
		m.domains = append(m.domains, dm)
	}
	sort.Slice(m.domains, func(i, j int) bool { return m.domains[i].id < m.domains[j].id })
	m.rebuildDomainMatrix()

	scores := make([]float64, m.cfg.Classes)
	for range m.cfg.RetrainEpochs {
		for _, dm := range m.domains {
			changed := false
			for _, s := range samples {
				if s.Domain != dm.id {
					continue
				}
				dm.scores(s.HV, scores)
				pred := argmax(scores)
				if pred != s.Class {
					dm.classAcc[s.Class].Add(s.HV, 1)
					dm.classAcc[pred].Add(s.HV, -1)
					changed = true
				}
			}
			if changed {
				dm.rebuildPrototypes()
			}
		}
	}
	m.publish()
	return nil
}

// simWeight maps a cosine similarity to a non-negative vote weight through
// (1+cos)/2, clamping NaN to similarity 0 (the unrelated-vector score) so a
// degenerate prototype cannot poison the normalized weight vector.
func simWeight(cos float64) float64 {
	if math.IsNaN(cos) {
		cos = 0
	}
	return (1 + cos) / 2
}

// domainWeights returns similarity-proportional weights of hv against every
// source domain prototype (see weightsInto). Allocating, used off the hot
// path (adaptation setup). Callers must hold m.mu.
func (m *Ensemble) domainWeights(hv hdc.Vector) []float64 {
	w := make([]float64, len(m.domains))
	weightsInto(m.domMat, hv, w)
	return w
}

// ScoreInto writes the active model's per-class scores for hv into dst
// through the current snapshot (see Snapshot.ScoreInto). It is lock-free
// and allocation-free in steady state.
//
//smore:hotpath
func (m *Ensemble) ScoreInto(hv hdc.Vector, dst []float64) error {
	s := m.snap.Load()
	if s == nil {
		return fmt.Errorf("%w: ScoreInto before Train", ErrNotTrained)
	}
	return s.ScoreInto(hv, dst)
}

// Predict classifies hv through the current snapshot. After Adapt has run,
// the adapted target model is used; otherwise the similarity-weighted
// source ensemble decides. Lock-free: a concurrent adaptation fold never
// stalls it, and it sees either the pre-fold or post-fold model.
//
//smore:hotpath
func (m *Ensemble) Predict(hv hdc.Vector) int {
	return m.mustSnapshot().Predict(hv)
}

// PredictSource classifies hv with the source ensemble only, ignoring any
// adapted model. This is the no-adapt baseline.
func (m *Ensemble) PredictSource(hv hdc.Vector) int {
	return m.mustSnapshot().PredictSource(hv)
}

// PredictBatch classifies every query concurrently on a pool of the given
// worker count (workers <= 0 means GOMAXPROCS). The whole batch is scored
// against one snapshot, so the output is identical for every worker count
// and mutually consistent under concurrent adaptation.
//
//smore:hotpath
func (m *Ensemble) PredictBatch(hvs []hdc.Vector, workers int) []int {
	return m.mustSnapshot().PredictBatch(hvs, workers)
}

// PredictSourceBatch is PredictBatch against the source ensemble only.
func (m *Ensemble) PredictSourceBatch(hvs []hdc.Vector, workers int) []int {
	return m.mustSnapshot().PredictSourceBatch(hvs, workers)
}

// AdaptStats reports what the adaptation loop did.
type AdaptStats struct {
	Epochs       int `json:"epochs"`
	PseudoLabels int `json:"pseudo_labels"` // confident updates applied across all epochs
	Skipped      int `json:"skipped"`       // samples below the confidence margin
}

// Accumulate folds another run's counters into s (the streaming adapter
// sums per-fold stats into its cumulative books with it).
func (s *AdaptStats) Accumulate(o AdaptStats) {
	s.Epochs += o.Epochs
	s.PseudoLabels += o.PseudoLabels
	s.Skipped += o.Skipped
}

// Adapt runs SMORE's similarity-based adaptation on unlabeled target
// samples, using all available workers for the scoring passes. It is
// exactly AdaptBatch(targets, 0).
func (m *Ensemble) Adapt(targets []hdc.Vector) (AdaptStats, error) {
	return m.AdaptBatch(targets, 0)
}

// AdaptBatch runs SMORE's similarity-based adaptation on unlabeled target
// samples. The target model starts as the similarity-weighted mixture of
// the source class accumulators (weighted by how close the bundled target
// distribution is to each source domain prototype). Each epoch then scores
// every target sample and hands the score vectors to the installed
// Strategy: the ConfidenceRule picks pseudo-label candidates, the Schedule
// sets that epoch's acceptance threshold and per-class TopFrac cap, and
// the UpdateRule folds the accepted samples into the target accumulators.
// The default strategy reproduces the paper's fixed recipe byte-for-byte:
// best-vs-second-best margin against cfg.Confidence, constant TopFrac,
// similarity-weighted bundling.
//
// Scoring runs concurrently on a pool of the given worker count (workers
// <= 0 means GOMAXPROCS). Scores land in per-sample slots and candidates
// are ranked by (confidence, index), so the adapted model and the returned
// stats are byte-identical for every worker count.
func (m *Ensemble) AdaptBatch(targets []hdc.Vector, workers int) (AdaptStats, error) {
	return m.adapt(targets, workers, false)
}

// AdaptIncremental folds one more batch of unlabeled target samples into the
// existing adapted model instead of rebuilding it from the source mixture,
// so target data can arrive in batches (the streaming/serving path). The
// first call behaves exactly like AdaptBatch; later calls keep the adapted
// prototypes and extend the target domain prototype with the new batch.
// Workers <= 0 means GOMAXPROCS.
func (m *Ensemble) AdaptIncremental(targets []hdc.Vector, workers int) (AdaptStats, error) {
	return m.adapt(targets, workers, true)
}

func (m *Ensemble) adapt(targets []hdc.Vector, workers int, incremental bool) (AdaptStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.adaptLocked(targets, workers, incremental, m.activeLocked())
}

// AdaptTarget folds one batch of unlabeled target samples into the named
// target domain (incrementally, like AdaptIncremental) and makes it the
// active fold destination. The target must exist (spawn it first);
// addressing an unknown name returns ErrUnknownTarget.
func (m *Ensemble) AdaptTarget(name string, targets []hdc.Vector, workers int) (AdaptStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tgt := m.findTargetLocked(name)
	if tgt == nil {
		return AdaptStats{}, fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	return m.adaptLocked(targets, workers, true, tgt)
}

// adaptLocked runs one adaptation fold into tgt (nil means the implicit
// first target, created on demand). Callers must hold m.mu.
func (m *Ensemble) adaptLocked(targets []hdc.Vector, workers int, incremental bool, tgt *targetModel) (AdaptStats, error) {
	if len(m.domains) == 0 {
		return AdaptStats{}, fmt.Errorf("%w: Adapt before Train", ErrNotTrained)
	}
	if len(targets) == 0 {
		return AdaptStats{}, fmt.Errorf("%w: no target samples", ErrInvalidTargets)
	}
	for i, hv := range targets {
		if hv.Dim() != m.cfg.Dim {
			return AdaptStats{}, fmt.Errorf("%w: target %d has dimension %d, model wants %d",
				ErrInvalidTargets, i, hv.Dim(), m.cfg.Dim)
		}
	}
	cfg := m.cfg
	strat := m.Strategy() // stratMu nests inside mu, never the reverse
	pool := parallel.NewPool(workers)
	if tgt == nil {
		tgt = m.addTargetLocked("")
	}
	if !incremental || !tgt.ready() {
		dm := newDomainModel(-1, cfg)
		// Bundle the target distribution and weight each source domain's
		// contribution to the initial target prototypes by its similarity.
		for _, hv := range targets {
			dm.domAcc.Add(hv, 1)
		}
		weights := m.domainWeights(dm.domAcc.Majority())
		for i, src := range m.domains {
			for c := range dm.classAcc {
				dm.classAcc[c].AddScaled(src.classAcc[c], weights[i])
				dm.classCount[c] += src.classCount[c]
			}
		}
		dm.rebuildPrototypes()
		tgt.domainModel = dm
	} else {
		// Fold the new batch into the target domain prototype so later
		// domain-similarity decisions see the full target distribution.
		for _, hv := range targets {
			tgt.domAcc.Add(hv, 1)
		}
		tgt.domProt = tgt.domAcc.Majority()
	}

	updater := strat.Update.NewUpdater(cfg)
	stats := AdaptStats{}
	type candidate struct {
		idx  int
		conf float64
		sim  float64
	}
	// Per-sample scoring results and scratch; slot i (and its stripe of
	// scoreBuf) is only written by the worker handling sample i.
	preds := make([]candidate, len(targets))
	confident := make([]bool, len(targets))
	byClass := make([][]candidate, cfg.Classes)
	classOf := make([]int, len(targets))
	scoreBuf := make([]float64, len(targets)*cfg.Classes)
	for epoch := range cfg.AdaptEpochs {
		threshold, topFrac := strat.Schedule.Epoch(epoch, cfg.AdaptEpochs, cfg)
		stats.Epochs++
		pool.ForEach(len(targets), func(i int) {
			scores := scoreBuf[i*cfg.Classes : (i+1)*cfg.Classes]
			tgt.scores(targets[i], scores)
			class, conf, sim := strat.Confidence.Assess(scores)
			confident[i] = conf >= threshold
			classOf[i] = class
			preds[i] = candidate{idx: i, conf: conf, sim: sim}
		})
		for c := range byClass {
			byClass[c] = byClass[c][:0]
		}
		for i := range targets {
			if !confident[i] {
				stats.Skipped++
				continue
			}
			byClass[classOf[i]] = append(byClass[classOf[i]], preds[i])
		}
		// Apply only the most confident fraction per pseudo-class so a
		// single over-predicted class cannot drown out the others. Ties
		// on confidence break on the sample index to keep the update
		// order fully deterministic.
		updated := false
		for c, cands := range byClass {
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].conf != cands[j].conf {
					return cands[i].conf > cands[j].conf
				}
				return cands[i].idx < cands[j].idx
			})
			if len(cands) == 0 {
				continue
			}
			keep := max(1, int(float64(len(cands))*topFrac))
			for _, cand := range cands[:min(keep, len(cands))] {
				updater.Apply(tgt.classAcc, c, targets[cand.idx], cand.sim)
				tgt.classCount[c]++
				stats.PseudoLabels++
				updated = true
			}
		}
		updater.FinishEpoch(tgt.classAcc)
		if !updated {
			// An empty epoch implies every later epoch is empty too — the
			// prototypes didn't move, so identical scores meet identical
			// gates — UNLESS the schedule relaxes the gates later. Only
			// bail early once the schedule has nothing further to give.
			if next := epoch + 1; next >= cfg.AdaptEpochs {
				break
			} else if nextTh, nextTop := strat.Schedule.Epoch(next, cfg.AdaptEpochs, cfg); nextTh == threshold && nextTop == topFrac {
				break
			}
			continue
		}
		tgt.rebuildPrototypes()
	}
	tgt.folds++
	m.foldClock++
	tgt.lastFold = m.foldClock
	for i, t := range m.targets {
		if t == tgt {
			m.active = i
			break
		}
	}
	m.publish()
	return stats, nil
}

// AdaptedPrototypes returns the binarized class prototypes of the adapted
// target model from the current snapshot, or nil if Adapt has not run. The
// vectors are views into the snapshot's immutable packed matrix, so they
// stay stable no matter how much further adaptation runs.
func (m *Ensemble) AdaptedPrototypes() []hdc.Vector {
	s := m.snap.Load()
	if s == nil {
		return nil
	}
	return s.AdaptedPrototypes()
}

// Adapted reports whether Adapt has produced a target model.
func (m *Ensemble) Adapted() bool {
	s := m.snap.Load()
	return s != nil && s.Adapted()
}

// ResetAdaptation discards every adapted target model — and the rollback
// checkpoint — and republishes the source-only snapshot (when the ensemble
// has been trained).
func (m *Ensemble) ResetAdaptation() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.targets = nil
	m.active = -1
	m.spawnSeq = 0
	m.foldClock = 0
	m.checkpoint = nil
	if len(m.domains) > 0 {
		m.publish()
	}
}

// Accuracy scores hvs against labels with Predict.
func (m *Ensemble) Accuracy(hvs []hdc.Vector, labels []int) float64 {
	return accuracy(hvs, labels, m.Predict)
}

// SourceAccuracy scores hvs against labels with PredictSource.
func (m *Ensemble) SourceAccuracy(hvs []hdc.Vector, labels []int) float64 {
	return accuracy(hvs, labels, m.PredictSource)
}

func accuracy(hvs []hdc.Vector, labels []int, predict func(hdc.Vector) int) float64 {
	if len(hvs) != len(labels) {
		panic("model: hvs and labels length mismatch")
	}
	if len(hvs) == 0 {
		return 0
	}
	hits := 0
	for i, hv := range hvs {
		if predict(hv) == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(hvs))
}

// rank maps a score to a total order for argmax/top2: NaN ranks with -Inf,
// below every real score, so a poisoned entry can never beat one and the
// selected indices do not depend on where the NaN sits in the slice (ties
// resolve to the lowest index).
func rank(x float64) float64 {
	if math.IsNaN(x) {
		return math.Inf(-1)
	}
	return x
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if rank(x) > rank(xs[best]) {
			best = i
		}
	}
	return best
}

// top2 returns the indices of the largest and second-largest scores. Ties
// (and NaNs, which rank below -Inf) resolve to the lowest index, so the
// result is independent of evaluation order.
func top2(xs []float64) (best, second int) {
	best, second = 0, 1
	if rank(xs[1]) > rank(xs[0]) {
		best, second = 1, 0
	}
	for i := 2; i < len(xs); i++ {
		switch {
		case rank(xs[i]) > rank(xs[best]):
			second, best = best, i
		case rank(xs[i]) > rank(xs[second]):
			second = i
		}
	}
	return best, second
}
