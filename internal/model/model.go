// Package model implements SMORE's associative-memory classifier and its
// similarity-based domain adaptation. Training builds one class-prototype
// set per source domain plus a domain prototype (the bundle of all of the
// domain's samples). Inference on an unseen domain weights every source
// model by the similarity of the query to that domain's prototype.
// Adaptation scores unlabeled target samples against the ensemble,
// pseudo-labels the high-confidence ones, and folds them into a dedicated
// target model with similarity-proportional weights.
package model

import (
	"fmt"
	"sort"

	"go-arxiv/smore/internal/hdc"
)

// Config parameterizes a Model.
type Config struct {
	Dim     int // hypervector dimension, must match the encoder
	Classes int // number of classes

	// RetrainEpochs is how many perceptron-style passes Train makes over
	// the labeled data after the initial single-shot bundling.
	RetrainEpochs int

	// AdaptEpochs is how many passes Adapt makes over the unlabeled
	// target samples.
	AdaptEpochs int

	// Confidence is the minimum similarity margin between the best and
	// second-best class for a target sample to be pseudo-labeled.
	Confidence float64

	// AdaptRate scales the similarity-proportional weight of each
	// pseudo-labeled update.
	AdaptRate float64

	// TopFrac caps, per pseudo-class and per epoch, the fraction of
	// confident samples actually applied (most-confident first). This
	// keeps one noisy class from flooding the update and collapsing the
	// prototypes. Zero means the default of 0.5.
	TopFrac float64
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if err := hdc.CheckDim(c.Dim); err != nil {
		return err
	}
	switch {
	case c.Classes < 2:
		return fmt.Errorf("model: Classes %d < 2", c.Classes)
	case c.RetrainEpochs < 0:
		return fmt.Errorf("model: RetrainEpochs %d < 0", c.RetrainEpochs)
	case c.AdaptEpochs < 1:
		return fmt.Errorf("model: AdaptEpochs %d < 1", c.AdaptEpochs)
	case c.Confidence < 0 || c.Confidence > 1:
		return fmt.Errorf("model: Confidence %v outside [0,1]", c.Confidence)
	case c.AdaptRate <= 0:
		return fmt.Errorf("model: AdaptRate %v <= 0", c.AdaptRate)
	case c.TopFrac < 0 || c.TopFrac > 1:
		return fmt.Errorf("model: TopFrac %v outside [0,1]", c.TopFrac)
	}
	return nil
}

// Sample is one encoded training example.
type Sample struct {
	HV     hdc.Vector
	Class  int
	Domain int
}

// domainModel is the associative memory of a single domain.
type domainModel struct {
	id        int
	classAcc  []*hdc.Accumulator
	classProt []hdc.Vector // binarized prototypes, rebuilt after updates
	domAcc    *hdc.Accumulator
	domProt   hdc.Vector
}

func newDomainModel(id int, cfg Config) *domainModel {
	dm := &domainModel{
		id:       id,
		classAcc: make([]*hdc.Accumulator, cfg.Classes),
		domAcc:   hdc.NewAccumulator(cfg.Dim),
	}
	for c := range dm.classAcc {
		dm.classAcc[c] = hdc.NewAccumulator(cfg.Dim)
	}
	return dm
}

func (dm *domainModel) rebinarize() {
	dm.classProt = make([]hdc.Vector, len(dm.classAcc))
	for c, acc := range dm.classAcc {
		dm.classProt[c] = acc.Majority()
	}
	dm.domProt = dm.domAcc.Majority()
}

// scores fills dst with the cosine similarity of hv to each class prototype.
func (dm *domainModel) scores(hv hdc.Vector, dst []float64) {
	for c, p := range dm.classProt {
		dst[c] = hv.Cosine(p)
	}
}

// Model is the multi-domain associative memory.
type Model struct {
	cfg     Config
	domains []*domainModel
	adapted *domainModel // set by Adapt; nil until then
}

// New returns an untrained model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Train builds per-domain class prototypes from labeled samples: a
// single-shot bundling pass followed by cfg.RetrainEpochs perceptron-style
// correction passes that add each misclassified sample to its true class
// and subtract it from the predicted class.
func (m *Model) Train(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("model: no training samples")
	}
	byDomain := map[int]*domainModel{}
	for _, s := range samples {
		if s.Class < 0 || s.Class >= m.cfg.Classes {
			return fmt.Errorf("model: class %d outside [0,%d)", s.Class, m.cfg.Classes)
		}
		dm, ok := byDomain[s.Domain]
		if !ok {
			dm = newDomainModel(s.Domain, m.cfg)
			byDomain[s.Domain] = dm
		}
		dm.classAcc[s.Class].Add(s.HV, 1)
		dm.domAcc.Add(s.HV, 1)
	}
	m.domains = make([]*domainModel, 0, len(byDomain))
	for _, dm := range byDomain {
		dm.rebinarize()
		m.domains = append(m.domains, dm)
	}
	sort.Slice(m.domains, func(i, j int) bool { return m.domains[i].id < m.domains[j].id })

	scores := make([]float64, m.cfg.Classes)
	for range m.cfg.RetrainEpochs {
		for _, dm := range m.domains {
			changed := false
			for _, s := range samples {
				if s.Domain != dm.id {
					continue
				}
				dm.scores(s.HV, scores)
				pred := argmax(scores)
				if pred != s.Class {
					dm.classAcc[s.Class].Add(s.HV, 1)
					dm.classAcc[pred].Add(s.HV, -1)
					changed = true
				}
			}
			if changed {
				dm.rebinarize()
			}
		}
	}
	return nil
}

// domainWeights returns similarity-proportional weights of hv against
// every source domain prototype, normalized to sum to 1. Cosine is mapped
// through (1+cos)/2 so weights stay non-negative and a domain nearly as
// similar as the best one keeps a proportional share of the vote (rather
// than a min-shift that would zero it out entirely).
func (m *Model) domainWeights(hv hdc.Vector) []float64 {
	w := make([]float64, len(m.domains))
	sum := 0.0
	for i, dm := range m.domains {
		w[i] = (1 + hv.Cosine(dm.domProt)) / 2
		sum += w[i]
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ensembleScores returns per-class scores of hv under the
// similarity-weighted source ensemble.
func (m *Model) ensembleScores(hv hdc.Vector) []float64 {
	if len(m.domains) == 0 {
		panic("model: Predict before Train")
	}
	total := make([]float64, m.cfg.Classes)
	scores := make([]float64, m.cfg.Classes)
	weights := m.domainWeights(hv)
	for i, dm := range m.domains {
		dm.scores(hv, scores)
		for c, s := range scores {
			total[c] += weights[i] * s
		}
	}
	return total
}

// Predict classifies hv. After Adapt has run, the adapted target model is
// used; otherwise the similarity-weighted source ensemble decides.
func (m *Model) Predict(hv hdc.Vector) int {
	if m.adapted != nil {
		scores := make([]float64, m.cfg.Classes)
		m.adapted.scores(hv, scores)
		return argmax(scores)
	}
	return argmax(m.ensembleScores(hv))
}

// PredictSource classifies hv with the source ensemble only, ignoring any
// adapted model. This is the no-adapt baseline.
func (m *Model) PredictSource(hv hdc.Vector) int {
	return argmax(m.ensembleScores(hv))
}

// AdaptStats reports what the adaptation loop did.
type AdaptStats struct {
	Epochs       int
	PseudoLabels int // confident updates applied across all epochs
	Skipped      int // samples below the confidence margin
}

// Adapt runs SMORE's similarity-based adaptation on unlabeled target
// samples. The target model starts as the similarity-weighted mixture of
// the source class accumulators (weighted by how close the bundled target
// distribution is to each source domain prototype). Each epoch then scores
// every target sample, pseudo-labels those whose best-vs-second-best margin
// clears cfg.Confidence, and adds them to the pseudo class with weight
// proportional to their similarity to the current prototype.
func (m *Model) Adapt(targets []hdc.Vector) (AdaptStats, error) {
	if len(m.domains) == 0 {
		return AdaptStats{}, fmt.Errorf("model: Adapt before Train")
	}
	if len(targets) == 0 {
		return AdaptStats{}, fmt.Errorf("model: no target samples")
	}
	cfg := m.cfg
	tgt := newDomainModel(-1, cfg)
	// Bundle the target distribution and weight each source domain's
	// contribution to the initial target prototypes by its similarity.
	for _, hv := range targets {
		tgt.domAcc.Add(hv, 1)
	}
	weights := m.domainWeights(tgt.domAcc.Majority())
	for i, dm := range m.domains {
		for c := range tgt.classAcc {
			tgt.classAcc[c].AddScaled(dm.classAcc[c], weights[i])
		}
	}
	tgt.rebinarize()

	topFrac := cfg.TopFrac
	if topFrac == 0 {
		topFrac = 0.5
	}
	stats := AdaptStats{}
	scores := make([]float64, cfg.Classes)
	type candidate struct {
		idx    int
		margin float64
		sim    float64
	}
	byClass := make([][]candidate, cfg.Classes)
	for range cfg.AdaptEpochs {
		stats.Epochs++
		for c := range byClass {
			byClass[c] = byClass[c][:0]
		}
		for i, hv := range targets {
			tgt.scores(hv, scores)
			best, second := top2(scores)
			if scores[best]-scores[second] < cfg.Confidence {
				stats.Skipped++
				continue
			}
			byClass[best] = append(byClass[best], candidate{
				idx: i, margin: scores[best] - scores[second], sim: scores[best],
			})
		}
		// Apply only the most confident fraction per pseudo-class so a
		// single over-predicted class cannot drown out the others.
		updated := false
		for c, cands := range byClass {
			sort.Slice(cands, func(i, j int) bool { return cands[i].margin > cands[j].margin })
			keep := max(1, int(float64(len(cands))*topFrac))
			if len(cands) == 0 {
				continue
			}
			for _, cand := range cands[:min(keep, len(cands))] {
				// Similarity-proportional update: the closer the
				// sample already is to the winning prototype, the
				// more it reinforces it.
				tgt.classAcc[c].Add(targets[cand.idx], cfg.AdaptRate*(1+cand.sim)/2)
				stats.PseudoLabels++
				updated = true
			}
		}
		if !updated {
			break
		}
		tgt.rebinarize()
	}
	m.adapted = tgt
	return stats, nil
}

// Adapted reports whether Adapt has produced a target model.
func (m *Model) Adapted() bool { return m.adapted != nil }

// ResetAdaptation discards the adapted target model.
func (m *Model) ResetAdaptation() { m.adapted = nil }

// Accuracy scores hvs against labels with Predict.
func (m *Model) Accuracy(hvs []hdc.Vector, labels []int) float64 {
	return accuracy(hvs, labels, m.Predict)
}

// SourceAccuracy scores hvs against labels with PredictSource.
func (m *Model) SourceAccuracy(hvs []hdc.Vector, labels []int) float64 {
	return accuracy(hvs, labels, m.PredictSource)
}

func accuracy(hvs []hdc.Vector, labels []int, predict func(hdc.Vector) int) float64 {
	if len(hvs) != len(labels) {
		panic("model: hvs and labels length mismatch")
	}
	if len(hvs) == 0 {
		return 0
	}
	hits := 0
	for i, hv := range hvs {
		if predict(hv) == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(hvs))
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// top2 returns the indices of the largest and second-largest scores.
func top2(xs []float64) (best, second int) {
	best, second = 0, 1
	if xs[1] > xs[0] {
		best, second = 1, 0
	}
	for i := 2; i < len(xs); i++ {
		switch {
		case xs[i] > xs[best]:
			second, best = best, i
		case xs[i] > xs[second]:
			second = i
		}
	}
	return best, second
}
