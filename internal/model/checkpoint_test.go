package model

import (
	"bytes"
	"testing"
)

// TestCheckpointBytesRestoreRoundTrip proves the serving layer's durability
// contract: the rollback checkpoint exported from one ensemble, restored
// into a freshly decoded copy (as startup recovery does), yields a rollback
// byte-identical to the original pre-drift state.
func TestCheckpointBytesRestoreRoundTrip(t *testing.T) {
	m, _, phaseA, phaseB := targetFixture(t, 91)
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil {
		t.Fatal(err)
	}
	if m.CheckpointBytes() != nil {
		t.Fatal("checkpoint exists before any spawn")
	}
	if _, _, err := m.SpawnTarget("shift", 4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdaptIncremental(phaseB[0], 2); err != nil {
		t.Fatal(err)
	}
	cp := m.CheckpointBytes()
	if cp == nil {
		t.Fatal("no checkpoint after spawn")
	}
	// The returned slice is a copy: corrupting it must not touch the live
	// checkpoint.
	cp2 := bytes.Clone(cp)
	for i := range cp {
		cp[i] ^= 0xFF
	}
	cp = cp2

	// Persist the adapted ensemble and decode it fresh — the in-memory
	// rollback checkpoint does not travel with the wire format.
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m2.HasCheckpoint() {
		t.Fatal("decoded ensemble has a checkpoint; expected none persisted")
	}
	if err := m2.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if !m2.HasCheckpoint() {
		t.Fatal("RestoreCheckpoint did not install the checkpoint")
	}
	if err := m2.Rollback(); err != nil {
		t.Fatal(err)
	}
	var rolled bytes.Buffer
	if _, err := m2.WriteTo(&rolled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rolled.Bytes(), cp) {
		t.Fatal("rollback after RestoreCheckpoint is not byte-identical to the checkpoint")
	}
}

func TestRestoreCheckpointRejectsGarbage(t *testing.T) {
	m, _, phaseA, _ := targetFixture(t, 92)
	if _, err := m.AdaptIncremental(phaseA[0], 2); err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]byte{nil, {}, []byte("SMEX"), bytes.Repeat([]byte{0x7F}, 128)} {
		if err := m.RestoreCheckpoint(b); err == nil {
			t.Fatalf("RestoreCheckpoint accepted %d garbage bytes", len(b))
		}
	}
	if m.HasCheckpoint() {
		t.Fatal("rejected restore left a checkpoint behind")
	}
	// A truncated-but-prefixed copy of a real checkpoint must also fail.
	if _, _, err := m.SpawnTarget("", 4, false); err != nil {
		t.Fatal(err)
	}
	cp := m.CheckpointBytes()
	if err := m.RestoreCheckpoint(cp[:len(cp)/2]); err == nil {
		t.Fatal("RestoreCheckpoint accepted a truncated checkpoint")
	}
}
