package model

import (
	"bytes"
	"errors"
	"fmt"

	"go-arxiv/smore/internal/hdc"
)

// ErrNoCheckpoint marks a Rollback with no checkpointed state to restore —
// a state conflict (HTTP 409 at the serving layer), like ErrNotTrained.
var ErrNoCheckpoint = errors.New("model: no checkpoint to roll back to")

// ErrUnknownTarget marks an operation addressing a target name that does not
// exist — a caller error (HTTP 400/404 at the serving layer).
var ErrUnknownTarget = errors.New("model: unknown target")

// maxTargetName bounds target names, both on SpawnTarget and on load, so
// names stay cheap to serialize and safe in logs and metrics labels.
const maxTargetName = 64

// TargetInfo describes one adapted target domain for stats surfaces.
type TargetInfo struct {
	Name   string `json:"name"`
	Folds  int64  `json:"folds"`
	Active bool   `json:"active"` // the current fold destination
	Ready  bool   `json:"ready"`  // initialized by a fold; votes and persists
}

// TargetInfos lists the adapted target domains in spawn order.
func (m *Ensemble) TargetInfos() []TargetInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TargetInfo, len(m.targets))
	for i, t := range m.targets {
		out[i] = TargetInfo{Name: t.name, Folds: t.folds, Active: i == m.active, Ready: t.ready()}
	}
	return out
}

// NumTargets returns how many target domains exist (including pending spawns
// that have not yet received a fold).
func (m *Ensemble) NumTargets() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.targets)
}

// HasCheckpoint reports whether a Rollback has checkpointed state to restore.
func (m *Ensemble) HasCheckpoint() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpoint != nil
}

func (m *Ensemble) findTargetLocked(name string) *targetModel {
	for _, t := range m.targets {
		if t.name == name {
			return t
		}
	}
	return nil
}

// addTargetLocked appends a fresh pending target under name (empty means the
// next auto-generated "t<n>") and makes it the active fold destination. It
// does not checkpoint; that is SpawnTarget's job. Callers must hold m.mu and
// have checked the name is free.
func (m *Ensemble) addTargetLocked(name string) *targetModel {
	for name == "" {
		candidate := fmt.Sprintf("t%d", m.spawnSeq)
		m.spawnSeq++
		if m.findTargetLocked(candidate) == nil {
			name = candidate
		}
	}
	t := &targetModel{domainModel: newDomainModel(-1, m.cfg), name: name}
	m.targets = append(m.targets, t)
	m.active = len(m.targets) - 1
	return t
}

// SpawnTarget checkpoints the current adapted state and opens a fresh target
// domain under name (empty means the next auto-generated "t<n>"), making it
// the active fold destination; the next fold initializes it from the
// similarity-weighted source mixture of its own batch. When retire is true
// and the spawn pushes the target count past maxTargets (> 0), the
// least-recently-folded non-active target is retired in the same transition.
// Rollback restores the checkpointed pre-spawn state byte-identically.
func (m *Ensemble) SpawnTarget(name string, maxTargets int, retire bool) (spawned, retired string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.domains) == 0 {
		return "", "", fmt.Errorf("%w: SpawnTarget before Train", ErrNotTrained)
	}
	if len(name) > maxTargetName {
		return "", "", fmt.Errorf("%w: target name %d bytes long exceeds maximum %d", ErrInvalidTargets, len(name), maxTargetName)
	}
	if name != "" && m.findTargetLocked(name) != nil {
		return "", "", fmt.Errorf("%w: target %q already exists", ErrInvalidTargets, name)
	}
	if err := m.checkpointLocked(); err != nil {
		return "", "", err
	}
	t := m.addTargetLocked(name)
	if retire && maxTargets > 0 && len(m.targets) > maxTargets {
		if victim := m.lruTargetLocked(); victim != nil {
			retired = victim.name
			m.removeTargetLocked(victim)
		}
	}
	m.publish()
	return t.name, retired, nil
}

// RetireTarget checkpoints the current adapted state and removes the named
// target. Retiring the active target hands the fold destination to the most
// recently folded remaining target (none left means folds start a fresh
// implicit target). In-flight folds are never dropped: folds serialize with
// retirement on the ensemble mutex, so a fold either completes into the
// target before it leaves or addresses the reassigned destination after.
func (m *Ensemble) RetireTarget(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.findTargetLocked(name)
	if t == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	if err := m.checkpointLocked(); err != nil {
		return err
	}
	m.removeTargetLocked(t)
	if len(m.domains) > 0 {
		m.publish()
	}
	return nil
}

// lruTargetLocked picks the least-recently-folded target other than the
// active one. Callers must hold m.mu.
func (m *Ensemble) lruTargetLocked() *targetModel {
	var victim *targetModel
	for i, t := range m.targets {
		if i == m.active {
			continue
		}
		if victim == nil || t.lastFold < victim.lastFold {
			victim = t
		}
	}
	return victim
}

// removeTargetLocked drops t from the target set, reassigning the active
// fold destination to the most recently folded remaining target when t held
// it. Callers must hold m.mu.
func (m *Ensemble) removeTargetLocked(t *targetModel) {
	keep := m.activeLocked()
	m.targets = slicesDelete(m.targets, t)
	m.active = -1
	if keep != nil && keep != t {
		for i, o := range m.targets {
			if o == keep {
				m.active = i
			}
		}
		return
	}
	if keep == t {
		var best int64 = -1
		for i, o := range m.targets {
			if o.lastFold > best {
				best = o.lastFold
				m.active = i
			}
		}
	}
}

func slicesDelete(ts []*targetModel, t *targetModel) []*targetModel {
	out := ts[:0]
	for _, o := range ts {
		if o != t {
			out = append(out, o)
		}
	}
	// Clear the freed tail slot so the retired target is not pinned.
	for i := len(out); i < len(ts); i++ {
		ts[i] = nil
	}
	return out
}

// checkpointLocked captures the canonical encoding of the current state so
// Rollback can restore it. An untrained ensemble cannot be encoded (and has
// nothing to protect), so spawning before Train fails earlier. Callers must
// hold m.mu.
func (m *Ensemble) checkpointLocked() error {
	b, err := m.encodeLocked()
	if err != nil {
		return fmt.Errorf("model: checkpointing for rollback: %w", err)
	}
	m.checkpoint = b
	return nil
}

// Rollback restores the state checkpointed by the most recent SpawnTarget or
// RetireTarget — configuration, strategy, source domains, and the full
// pre-transition target set — byte-identically (the codec is canonical). The
// checkpoint survives the rollback, so repeating it is idempotent. With no
// checkpoint it returns ErrNoCheckpoint.
func (m *Ensemble) Rollback() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.checkpoint == nil {
		return ErrNoCheckpoint
	}
	cp := m.checkpoint
	st, _, err := readState(bytes.NewReader(cp))
	if err != nil {
		return fmt.Errorf("model: decoding checkpoint: %w", err)
	}
	m.installLocked(st)
	m.checkpoint = cp
	return nil
}

// CheckpointBytes returns a copy of the pre-drift rollback checkpoint (the
// canonical encoding captured by the last SpawnTarget/RetireTarget), or nil
// when none exists. The serving layer persists it next to the durable bundle
// so POST /v1/stream/rollback survives a process restart.
func (m *Ensemble) CheckpointBytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return bytes.Clone(m.checkpoint)
}

// RestoreCheckpoint installs b as the rollback checkpoint, validating it
// through the same parser Rollback uses so a torn or foreign checkpoint file
// recovered from disk can never wedge a later rollback. The checkpoint must
// describe an ensemble of this ensemble's dimension.
func (m *Ensemble) RestoreCheckpoint(b []byte) error {
	st, _, err := readState(bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("model: invalid rollback checkpoint: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if st.cfg.Dim != m.cfg.Dim {
		return fmt.Errorf("model: rollback checkpoint dimension %d does not match model dimension %d",
			st.cfg.Dim, m.cfg.Dim)
	}
	m.checkpoint = bytes.Clone(b)
	return nil
}

// BatchSimilarity bundles the batch into a majority hypervector and returns
// its cosine similarity to the active target's domain prototype — the signal
// the streaming drift detector tracks. ok is false when no initialized
// target exists yet (nothing to compare against). The comparison is made
// against the state before any fold of this batch, so a drift decision made
// on it can spawn a fresh target for the batch to fold into.
func (m *Ensemble) BatchSimilarity(hvs []hdc.Vector) (sim float64, ok bool, err error) {
	if len(hvs) == 0 {
		return 0, false, fmt.Errorf("%w: no target samples", ErrInvalidTargets)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, hv := range hvs {
		if hv.Dim() != m.cfg.Dim {
			return 0, false, fmt.Errorf("%w: target %d has dimension %d, model wants %d",
				ErrInvalidTargets, i, hv.Dim(), m.cfg.Dim)
		}
	}
	t := m.activeLocked()
	if t == nil || !t.ready() {
		return 0, false, nil
	}
	acc := hdc.NewAccumulator(m.cfg.Dim)
	for _, hv := range hvs {
		acc.Add(hv, 1)
	}
	return acc.Majority().Cosine(t.domProt), true, nil
}
