package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"go-arxiv/smore/internal/hdc"
)

// Wire format (all integers little-endian):
//
//	magic "SME1", "SME2", or "SME3"
//	config: uint32 Dim, uint32 Classes, uint32 RetrainEpochs,
//	        uint32 AdaptEpochs, float64 Confidence, float64 AdaptRate,
//	        float64 TopFrac
//	(SME2/SME3) strategy section: 3 × (uint32 length + name bytes) for the
//	        confidence rule, schedule, and update rule
//	SME1/SME2 body:
//	    uint32 domain count, uint8 adapted flag
//	    per domain (then the adapted target model, if the flag is set):
//	        int32 id
//	        Classes × int64 per-class sample count
//	        Classes × framed class accumulator (uint32 length + hdc bytes)
//	        framed domain accumulator
//	SME3 body (multi-target):
//	    uint32 domain count, uint32 target count,
//	    uint32 active target index (0xFFFFFFFF when none)
//	    per domain: the same domain record as SME1
//	    per target: uint32 name length + name bytes, uint64 fold count,
//	        then the same domain record as SME1
//
// The binarized prototypes are not stored: Majority is deterministic, so
// they are rebuilt bit-identically on load. The magic doubles as the format
// version. An ensemble whose adapted state has the default single-target
// shape — no target, or exactly one named "t0" and active — serializes as
// "SME1" on the default strategy (byte-identical to every pre-strategy
// artifact, including the committed golden) or "SME2" on a non-default one;
// only a genuinely multi-target (or renamed/inactive-target) state promotes
// the output to "SME3". All versions stay readable, and every choice
// round-trips: the codec is canonical (save → load → save is
// byte-identical), which is what makes checkpoints and Rollback exact.
const (
	ensembleMagic   = "SME1"
	ensembleMagicV2 = "SME2"
	ensembleMagicV3 = "SME3"

	// maxDomains bounds the domain count accepted by ReadFrom so a corrupt
	// header cannot drive an unbounded allocation loop.
	maxDomains = 1 << 16
	// maxClasses bounds cfg.Classes on load for the same reason; Validate
	// has no upper bound because in-process construction is trusted.
	maxClasses = 1 << 20
	// maxEpochs bounds the loaded retrain/adapt epoch counts: a corrupt
	// bundle declaring billions of adapt epochs would otherwise hang the
	// first Adapt call (and, in a server, every reader behind its lock).
	maxEpochs = 1 << 20
	// maxStrategyName bounds the length of a serialized strategy name so a
	// corrupt SME2/SME3 header cannot drive a huge allocation.
	maxStrategyName = 64
	// maxTargetsLoad bounds the SME3 target count on load. Far above what
	// any sane drift policy spawns, far below an allocation bomb.
	maxTargetsLoad = 256
	// noActiveTarget is the SME3 sentinel for "no active target" (the
	// active slot was a pending spawn, which does not persist).
	noActiveTarget = 0xFFFFFFFF
)

// ensembleState is a fully parsed, validated serialized ensemble — the
// bridge between readState (pure parsing, no locks) and installLocked
// (state swap under the mutator lock). Rollback reuses the same pair to
// restore a checkpoint.
type ensembleState struct {
	cfg     Config
	strat   Strategy
	domains []*domainModel
	targets []*targetModel
	active  int
}

// persistedTargets returns the ready targets (pending spawns have no
// prototypes and do not persist) and the index of the active target within
// that order, or -1 when the active target is pending or absent. Callers
// must hold m.mu.
func (m *Ensemble) persistedTargets() ([]*targetModel, int) {
	var out []*targetModel
	active := -1
	for i, t := range m.targets {
		if !t.ready() {
			continue
		}
		if i == m.active {
			active = len(out)
		}
		out = append(out, t)
	}
	return out, active
}

// encodeLocked serializes the ensemble into the newest format that can
// represent it losslessly (see the wire-format comment), returning the
// bytes. Serialization flushes staged accumulator state, so it is a mutator
// even though the accumulated values don't change; callers must hold m.mu.
func (m *Ensemble) encodeLocked() ([]byte, error) {
	if len(m.domains) == 0 {
		return nil, fmt.Errorf("model: cannot serialize an untrained ensemble")
	}
	strat := m.Strategy() // stratMu nests inside mu, never the reverse
	targets, active := m.persistedTargets()
	// The historical single-target shape: nothing adapted, or exactly one
	// target with the auto-generated first name that is also the fold
	// destination. Anything else needs the SME3 target section.
	simple := len(targets) == 0 || (len(targets) == 1 && targets[0].name == "t0" && active == 0)
	var buf bytes.Buffer
	switch {
	case simple && strat.isDefault():
		buf.WriteString(ensembleMagic)
	case simple:
		buf.WriteString(ensembleMagicV2)
	default:
		buf.WriteString(ensembleMagicV3)
	}
	version := buf.String()
	putUint32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	putUint64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	putFloat64 := func(v float64) { putUint64(math.Float64bits(v)) }
	putUint32(uint32(m.cfg.Dim))
	putUint32(uint32(m.cfg.Classes))
	putUint32(uint32(m.cfg.RetrainEpochs))
	putUint32(uint32(m.cfg.AdaptEpochs))
	putFloat64(m.cfg.Confidence)
	putFloat64(m.cfg.AdaptRate)
	putFloat64(m.cfg.TopFrac)
	if version != ensembleMagic {
		conf, sched, upd := strat.Names()
		for _, name := range []string{conf, sched, upd} {
			putUint32(uint32(len(name)))
			buf.WriteString(name)
		}
	}

	putAcc := func(acc *hdc.Accumulator) error {
		b, err := acc.MarshalBinary()
		if err != nil {
			return err
		}
		putUint32(uint32(len(b)))
		buf.Write(b)
		return nil
	}
	writeDomain := func(dm *domainModel) error {
		putUint32(uint32(int32(dm.id)))
		for _, n := range dm.classCount {
			putUint64(uint64(n))
		}
		for _, acc := range dm.classAcc {
			if err := putAcc(acc); err != nil {
				return err
			}
		}
		return putAcc(dm.domAcc)
	}

	putUint32(uint32(len(m.domains)))
	if version == ensembleMagicV3 {
		putUint32(uint32(len(targets)))
		if active < 0 {
			putUint32(noActiveTarget)
		} else {
			putUint32(uint32(active))
		}
	} else {
		adapted := byte(0)
		if len(targets) == 1 {
			adapted = 1
		}
		buf.WriteByte(adapted)
	}
	for _, dm := range m.domains {
		if err := writeDomain(dm); err != nil {
			return nil, err
		}
	}
	for _, t := range targets {
		if version == ensembleMagicV3 {
			putUint32(uint32(len(t.name)))
			buf.WriteString(t.name)
			putUint64(uint64(t.folds))
		}
		if err := writeDomain(t.domainModel); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// WriteTo serializes the ensemble — configuration, strategy, every source
// domain's class/domain accumulators and per-class counts, and every ready
// adapted target model — in the versioned format read by ReadFrom. The
// output is canonical: saving, loading, and saving again yields
// byte-identical output, and the loaded ensemble predicts and continues
// adapting exactly like the original.
func (m *Ensemble) WriteTo(w io.Writer) (int64, error) {
	// Serialization flushes staged accumulator state, so it is a mutator
	// even though the accumulated values don't change: take the mutator
	// lock. Predictions keep flowing off the published snapshot meanwhile.
	m.mu.Lock()
	b, err := m.encodeLocked()
	m.mu.Unlock()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// readState parses a serialized ensemble from r (any format written by
// WriteTo) into a detached ensembleState, validating the configuration and
// bounding every allocation by the declared and checked sizes. It touches
// no Ensemble, so callers can run it without holding any lock and swap the
// result in afterwards with installLocked.
func readState(r io.Reader) (*ensembleState, int64, error) {
	cr := &countReader{r: r}
	var magic [4]byte
	if err := cr.read(magic[:]); err != nil {
		return nil, cr.n, fmt.Errorf("model: reading header: %w", err)
	}
	version := string(magic[:])
	if version != ensembleMagic && version != ensembleMagicV2 && version != ensembleMagicV3 {
		return nil, cr.n, fmt.Errorf("model: bad ensemble magic %q (unsupported version?)", magic[:])
	}
	st := &ensembleState{active: -1}
	cfg := &st.cfg
	var u32 [4]byte
	var u64 [8]byte
	readUint32 := func(dst *int) error {
		if err := cr.read(u32[:]); err != nil {
			return err
		}
		*dst = int(binary.LittleEndian.Uint32(u32[:]))
		return nil
	}
	readFloat64 := func(dst *float64) error {
		if err := cr.read(u64[:]); err != nil {
			return err
		}
		*dst = math.Float64frombits(binary.LittleEndian.Uint64(u64[:]))
		return nil
	}
	for _, f := range []func() error{
		func() error { return readUint32(&cfg.Dim) },
		func() error { return readUint32(&cfg.Classes) },
		func() error { return readUint32(&cfg.RetrainEpochs) },
		func() error { return readUint32(&cfg.AdaptEpochs) },
		func() error { return readFloat64(&cfg.Confidence) },
		func() error { return readFloat64(&cfg.AdaptRate) },
		func() error { return readFloat64(&cfg.TopFrac) },
	} {
		if err := f(); err != nil {
			return nil, cr.n, fmt.Errorf("model: reading config: %w", err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, cr.n, fmt.Errorf("model: loaded config invalid: %w", err)
	}
	if cfg.Classes > maxClasses {
		return nil, cr.n, fmt.Errorf("model: loaded Classes %d exceeds maximum %d", cfg.Classes, maxClasses)
	}
	if cfg.RetrainEpochs > maxEpochs || cfg.AdaptEpochs > maxEpochs {
		return nil, cr.n, fmt.Errorf("model: loaded epoch counts %d/%d exceed maximum %d",
			cfg.RetrainEpochs, cfg.AdaptEpochs, maxEpochs)
	}

	readName := func(limit int) (string, error) {
		var n int
		if err := readUint32(&n); err != nil {
			return "", err
		}
		if n > limit {
			return "", fmt.Errorf("name length %d exceeds maximum %d", n, limit)
		}
		b := make([]byte, n)
		if err := cr.read(b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	st.strat = DefaultStrategy()
	if version != ensembleMagic {
		var names [3]string
		for i := range names {
			name, err := readName(maxStrategyName)
			if err != nil {
				return nil, cr.n, fmt.Errorf("model: reading strategy: %w", err)
			}
			names[i] = name
		}
		var err error
		if st.strat, err = ParseStrategy(names[0], names[1], names[2]); err != nil {
			return nil, cr.n, fmt.Errorf("model: loaded strategy invalid: %w", err)
		}
	}

	var numDomains int
	if err := readUint32(&numDomains); err != nil {
		return nil, cr.n, fmt.Errorf("model: reading domain count: %w", err)
	}
	if numDomains == 0 {
		// An ensemble without source domains cannot predict or adapt;
		// loading one would boot a server that panics on every query.
		return nil, cr.n, fmt.Errorf("model: serialized ensemble has no source domains")
	}
	if numDomains > maxDomains {
		return nil, cr.n, fmt.Errorf("model: domain count %d exceeds maximum %d", numDomains, maxDomains)
	}
	numTargets := 0
	activeU := noActiveTarget
	if version == ensembleMagicV3 {
		if err := readUint32(&numTargets); err != nil {
			return nil, cr.n, fmt.Errorf("model: reading target count: %w", err)
		}
		if numTargets > maxTargetsLoad {
			return nil, cr.n, fmt.Errorf("model: target count %d exceeds maximum %d", numTargets, maxTargetsLoad)
		}
		var a int
		if err := readUint32(&a); err != nil {
			return nil, cr.n, fmt.Errorf("model: reading active target index: %w", err)
		}
		activeU = a
		if activeU != noActiveTarget && activeU >= numTargets {
			return nil, cr.n, fmt.Errorf("model: active target index %d outside %d targets", activeU, numTargets)
		}
	} else {
		var flag [1]byte
		if err := cr.read(flag[:]); err != nil {
			return nil, cr.n, fmt.Errorf("model: reading adapted flag: %w", err)
		}
		if flag[0] > 1 {
			return nil, cr.n, fmt.Errorf("model: adapted flag %d not 0 or 1", flag[0])
		}
		if flag[0] == 1 {
			numTargets, activeU = 1, 0
		}
	}

	readAcc := func() (*hdc.Accumulator, error) {
		if err := cr.read(u32[:]); err != nil {
			return nil, err
		}
		frameLen := int(binary.LittleEndian.Uint32(u32[:]))
		if want := hdc.MarshaledSize(cfg.Dim); frameLen != want {
			return nil, fmt.Errorf("accumulator frame length %d, want %d for dim %d", frameLen, want, cfg.Dim)
		}
		b := make([]byte, frameLen)
		if err := cr.read(b); err != nil {
			return nil, err
		}
		acc := &hdc.Accumulator{}
		if err := acc.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return acc, nil
	}
	readDomain := func() (*domainModel, error) {
		if err := cr.read(u32[:]); err != nil {
			return nil, err
		}
		dm := &domainModel{
			id:         int(int32(binary.LittleEndian.Uint32(u32[:]))),
			classAcc:   make([]*hdc.Accumulator, cfg.Classes),
			classCount: make([]int64, cfg.Classes),
		}
		for c := range dm.classCount {
			if err := cr.read(u64[:]); err != nil {
				return nil, err
			}
			n := int64(binary.LittleEndian.Uint64(u64[:]))
			if n < 0 {
				return nil, fmt.Errorf("negative class count %d", n)
			}
			dm.classCount[c] = n
		}
		for c := range dm.classAcc {
			acc, err := readAcc()
			if err != nil {
				return nil, err
			}
			dm.classAcc[c] = acc
		}
		acc, err := readAcc()
		if err != nil {
			return nil, err
		}
		dm.domAcc = acc
		dm.rebuildPrototypes()
		return dm, nil
	}

	st.domains = make([]*domainModel, 0, min(numDomains, 64))
	for i := range numDomains {
		dm, err := readDomain()
		if err != nil {
			return nil, cr.n, fmt.Errorf("model: reading domain %d: %w", i, err)
		}
		st.domains = append(st.domains, dm)
	}
	for i := range numTargets {
		t := &targetModel{name: "t0", folds: 1}
		if version == ensembleMagicV3 {
			name, err := readName(maxTargetName)
			if err != nil {
				return nil, cr.n, fmt.Errorf("model: reading target %d name: %w", i, err)
			}
			if name == "" {
				return nil, cr.n, fmt.Errorf("model: target %d has an empty name", i)
			}
			for _, o := range st.targets {
				if o.name == name {
					return nil, cr.n, fmt.Errorf("model: duplicate target name %q", name)
				}
			}
			if err := cr.read(u64[:]); err != nil {
				return nil, cr.n, fmt.Errorf("model: reading target %d folds: %w", i, err)
			}
			folds := int64(binary.LittleEndian.Uint64(u64[:]))
			if folds < 0 {
				return nil, cr.n, fmt.Errorf("model: target %d has negative fold count", i)
			}
			t.name, t.folds = name, folds
		}
		dm, err := readDomain()
		if err != nil {
			return nil, cr.n, fmt.Errorf("model: reading target %d: %w", i, err)
		}
		t.domainModel = dm
		st.targets = append(st.targets, t)
	}
	if activeU != noActiveTarget {
		st.active = activeU
	}
	return st, cr.n, nil
}

// installLocked swaps a parsed ensembleState in as the ensemble's current
// state and publishes a fresh snapshot. The fold clock is rebuilt in target
// order (persisted order is spawn order, the LRU approximation the clock
// exists for) and the rollback checkpoint is cleared: a loaded state is a
// new baseline, not a transition to undo. Callers must hold m.mu.
func (m *Ensemble) installLocked(st *ensembleState) {
	m.cfg = st.cfg
	m.domains = st.domains
	m.targets = st.targets
	m.active = st.active
	m.spawnSeq = 0 // auto-naming re-probes for free names on demand
	m.foldClock = int64(len(st.targets))
	for i, t := range m.targets {
		t.lastFold = int64(i + 1)
	}
	m.checkpoint = nil
	m.SetStrategy(st.strat) // stratMu nests inside mu; a reload always reflects the file
	m.rebuildDomainMatrix()
	m.publish()
}

// ReadFrom replaces the ensemble's state with one deserialized from r (the
// format written by WriteTo), validating the configuration, bounding every
// allocation by the declared and checked sizes, and rebuilding the binarized
// prototypes. Parsing runs before the mutator lock is taken, so a slow or
// corrupt stream never stalls concurrent folds. It returns the number of
// bytes consumed.
func (m *Ensemble) ReadFrom(r io.Reader) (int64, error) {
	st, n, err := readState(r)
	if err != nil {
		return n, err
	}
	m.mu.Lock()
	m.installLocked(st)
	m.mu.Unlock()
	return n, nil
}

// Decode reads a serialized ensemble (the format written by WriteTo) into a
// fresh Ensemble.
func Decode(r io.Reader) (*Ensemble, error) {
	m := &Ensemble{active: -1}
	if _, err := m.ReadFrom(r); err != nil {
		return nil, err
	}
	return m, nil
}

// countReader tracks how many bytes ReadFrom has consumed, including on
// partial reads.
type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) read(p []byte) error {
	n, err := io.ReadFull(cr.r, p)
	cr.n += int64(n)
	return err
}
