package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"go-arxiv/smore/internal/hdc"
)

// Wire format (all integers little-endian):
//
//	magic "SME1" or "SME2"
//	config: uint32 Dim, uint32 Classes, uint32 RetrainEpochs,
//	        uint32 AdaptEpochs, float64 Confidence, float64 AdaptRate,
//	        float64 TopFrac
//	(SME2 only) strategy section: 3 × (uint32 length + name bytes) for the
//	        confidence rule, schedule, and update rule
//	uint32 domain count, uint8 adapted flag
//	per domain (then the adapted target model, if the flag is set):
//	    int32 id
//	    Classes × int64 per-class sample count
//	    Classes × framed class accumulator (uint32 length + hdc bytes)
//	    framed domain accumulator
//
// The binarized prototypes are not stored: Majority is deterministic, so
// they are rebuilt bit-identically on load. The magic doubles as the format
// version. An ensemble on the default strategy serializes as "SME1" —
// byte-identical to every pre-strategy artifact, including the committed
// golden — and only a non-default strategy promotes the output to "SME2";
// both versions stay readable, and the strategy choice round-trips.
const (
	ensembleMagic   = "SME1"
	ensembleMagicV2 = "SME2"

	// maxDomains bounds the domain count accepted by ReadFrom so a corrupt
	// header cannot drive an unbounded allocation loop.
	maxDomains = 1 << 16
	// maxClasses bounds cfg.Classes on load for the same reason; Validate
	// has no upper bound because in-process construction is trusted.
	maxClasses = 1 << 20
	// maxEpochs bounds the loaded retrain/adapt epoch counts: a corrupt
	// bundle declaring billions of adapt epochs would otherwise hang the
	// first Adapt call (and, in a server, every reader behind its lock).
	maxEpochs = 1 << 20
	// maxStrategyName bounds the length of a serialized strategy name so a
	// corrupt SME2 header cannot drive a huge allocation.
	maxStrategyName = 64
)

// WriteTo serializes the ensemble — configuration, every source domain's
// class/domain accumulators and per-class counts, and the adapted target
// model if present — in the versioned format read by ReadFrom. Staged
// accumulator state is flushed first (mutating internal representation, not
// accumulated values), so the output is canonical: saving, loading, and
// saving again yields byte-identical output, and the loaded ensemble
// predicts and continues adapting exactly like the original.
func (m *Ensemble) WriteTo(w io.Writer) (int64, error) {
	// Serialization flushes staged accumulator state, so it is a mutator
	// even though the accumulated values don't change: take the mutator
	// lock. Predictions keep flowing off the published snapshot meanwhile.
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.domains) == 0 {
		return 0, fmt.Errorf("model: cannot serialize an untrained ensemble")
	}
	strat := m.Strategy() // stratMu nests inside mu, never the reverse
	var buf bytes.Buffer
	if strat.isDefault() {
		buf.WriteString(ensembleMagic)
	} else {
		buf.WriteString(ensembleMagicV2)
	}
	putUint32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	putFloat64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	}
	putUint32(uint32(m.cfg.Dim))
	putUint32(uint32(m.cfg.Classes))
	putUint32(uint32(m.cfg.RetrainEpochs))
	putUint32(uint32(m.cfg.AdaptEpochs))
	putFloat64(m.cfg.Confidence)
	putFloat64(m.cfg.AdaptRate)
	putFloat64(m.cfg.TopFrac)
	if !strat.isDefault() {
		conf, sched, upd := strat.Names()
		for _, name := range []string{conf, sched, upd} {
			putUint32(uint32(len(name)))
			buf.WriteString(name)
		}
	}

	putUint32(uint32(len(m.domains)))
	adapted := byte(0)
	if m.adapted != nil {
		adapted = 1
	}
	buf.WriteByte(adapted)

	putAcc := func(acc *hdc.Accumulator) error {
		b, err := acc.MarshalBinary()
		if err != nil {
			return err
		}
		putUint32(uint32(len(b)))
		buf.Write(b)
		return nil
	}
	writeDomain := func(dm *domainModel) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(int32(dm.id)))
		buf.Write(b[:])
		var cb [8]byte
		for _, n := range dm.classCount {
			binary.LittleEndian.PutUint64(cb[:], uint64(n))
			buf.Write(cb[:])
		}
		for _, acc := range dm.classAcc {
			if err := putAcc(acc); err != nil {
				return err
			}
		}
		return putAcc(dm.domAcc)
	}
	for _, dm := range m.domains {
		if err := writeDomain(dm); err != nil {
			return 0, err
		}
	}
	if m.adapted != nil {
		if err := writeDomain(m.adapted); err != nil {
			return 0, err
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadFrom replaces the ensemble's state with one deserialized from r (the
// format written by WriteTo), validating the configuration, bounding every
// allocation by the declared and checked sizes, and rebuilding the binarized
// prototypes. It returns the number of bytes consumed.
func (m *Ensemble) ReadFrom(r io.Reader) (int64, error) {
	cr := &countReader{r: r}
	var magic [4]byte
	if err := cr.read(magic[:]); err != nil {
		return cr.n, fmt.Errorf("model: reading header: %w", err)
	}
	version := string(magic[:])
	if version != ensembleMagic && version != ensembleMagicV2 {
		return cr.n, fmt.Errorf("model: bad ensemble magic %q (unsupported version?)", magic[:])
	}
	var cfg Config
	var u32 [4]byte
	var u64 [8]byte
	readUint32 := func(dst *int) error {
		if err := cr.read(u32[:]); err != nil {
			return err
		}
		*dst = int(binary.LittleEndian.Uint32(u32[:]))
		return nil
	}
	readFloat64 := func(dst *float64) error {
		if err := cr.read(u64[:]); err != nil {
			return err
		}
		*dst = math.Float64frombits(binary.LittleEndian.Uint64(u64[:]))
		return nil
	}
	for _, f := range []func() error{
		func() error { return readUint32(&cfg.Dim) },
		func() error { return readUint32(&cfg.Classes) },
		func() error { return readUint32(&cfg.RetrainEpochs) },
		func() error { return readUint32(&cfg.AdaptEpochs) },
		func() error { return readFloat64(&cfg.Confidence) },
		func() error { return readFloat64(&cfg.AdaptRate) },
		func() error { return readFloat64(&cfg.TopFrac) },
	} {
		if err := f(); err != nil {
			return cr.n, fmt.Errorf("model: reading config: %w", err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cr.n, fmt.Errorf("model: loaded config invalid: %w", err)
	}
	if cfg.Classes > maxClasses {
		return cr.n, fmt.Errorf("model: loaded Classes %d exceeds maximum %d", cfg.Classes, maxClasses)
	}
	if cfg.RetrainEpochs > maxEpochs || cfg.AdaptEpochs > maxEpochs {
		return cr.n, fmt.Errorf("model: loaded epoch counts %d/%d exceed maximum %d",
			cfg.RetrainEpochs, cfg.AdaptEpochs, maxEpochs)
	}

	strat := DefaultStrategy()
	if version == ensembleMagicV2 {
		readName := func() (string, error) {
			var n int
			if err := readUint32(&n); err != nil {
				return "", err
			}
			if n > maxStrategyName {
				return "", fmt.Errorf("name length %d exceeds maximum %d", n, maxStrategyName)
			}
			b := make([]byte, n)
			if err := cr.read(b); err != nil {
				return "", err
			}
			return string(b), nil
		}
		var names [3]string
		for i := range names {
			name, err := readName()
			if err != nil {
				return cr.n, fmt.Errorf("model: reading strategy: %w", err)
			}
			names[i] = name
		}
		var err error
		if strat, err = ParseStrategy(names[0], names[1], names[2]); err != nil {
			return cr.n, fmt.Errorf("model: loaded strategy invalid: %w", err)
		}
	}

	var numDomains int
	if err := readUint32(&numDomains); err != nil {
		return cr.n, fmt.Errorf("model: reading domain count: %w", err)
	}
	if numDomains == 0 {
		// An ensemble without source domains cannot predict or adapt;
		// loading one would boot a server that panics on every query.
		return cr.n, fmt.Errorf("model: serialized ensemble has no source domains")
	}
	if numDomains > maxDomains {
		return cr.n, fmt.Errorf("model: domain count %d exceeds maximum %d", numDomains, maxDomains)
	}
	var flag [1]byte
	if err := cr.read(flag[:]); err != nil {
		return cr.n, fmt.Errorf("model: reading adapted flag: %w", err)
	}
	if flag[0] > 1 {
		return cr.n, fmt.Errorf("model: adapted flag %d not 0 or 1", flag[0])
	}

	readAcc := func() (*hdc.Accumulator, error) {
		if err := cr.read(u32[:]); err != nil {
			return nil, err
		}
		frameLen := int(binary.LittleEndian.Uint32(u32[:]))
		if want := hdc.MarshaledSize(cfg.Dim); frameLen != want {
			return nil, fmt.Errorf("accumulator frame length %d, want %d for dim %d", frameLen, want, cfg.Dim)
		}
		b := make([]byte, frameLen)
		if err := cr.read(b); err != nil {
			return nil, err
		}
		acc := &hdc.Accumulator{}
		if err := acc.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return acc, nil
	}
	readDomain := func() (*domainModel, error) {
		if err := cr.read(u32[:]); err != nil {
			return nil, err
		}
		dm := &domainModel{
			id:         int(int32(binary.LittleEndian.Uint32(u32[:]))),
			classAcc:   make([]*hdc.Accumulator, cfg.Classes),
			classCount: make([]int64, cfg.Classes),
		}
		for c := range dm.classCount {
			if err := cr.read(u64[:]); err != nil {
				return nil, err
			}
			n := int64(binary.LittleEndian.Uint64(u64[:]))
			if n < 0 {
				return nil, fmt.Errorf("negative class count %d", n)
			}
			dm.classCount[c] = n
		}
		for c := range dm.classAcc {
			acc, err := readAcc()
			if err != nil {
				return nil, err
			}
			dm.classAcc[c] = acc
		}
		acc, err := readAcc()
		if err != nil {
			return nil, err
		}
		dm.domAcc = acc
		dm.rebuildPrototypes()
		return dm, nil
	}

	domains := make([]*domainModel, 0, min(numDomains, 64))
	for i := range numDomains {
		dm, err := readDomain()
		if err != nil {
			return cr.n, fmt.Errorf("model: reading domain %d: %w", i, err)
		}
		domains = append(domains, dm)
	}
	var adapted *domainModel
	if flag[0] == 1 {
		dm, err := readDomain()
		if err != nil {
			return cr.n, fmt.Errorf("model: reading adapted model: %w", err)
		}
		adapted = dm
	}

	m.mu.Lock()
	m.cfg = cfg
	m.domains = domains
	m.adapted = adapted
	m.SetStrategy(strat) // stratMu nests inside mu; a reload always reflects the file
	m.rebuildDomainMatrix()
	m.publish()
	m.mu.Unlock()
	return cr.n, nil
}

// Decode reads a serialized ensemble (the format written by WriteTo) into a
// fresh Ensemble.
func Decode(r io.Reader) (*Ensemble, error) {
	m := &Ensemble{}
	if _, err := m.ReadFrom(r); err != nil {
		return nil, err
	}
	return m, nil
}

// countReader tracks how many bytes ReadFrom has consumed, including on
// partial reads.
type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) read(p []byte) error {
	n, err := io.ReadFull(cr.r, p)
	cr.n += int64(n)
	return err
}
