// Package fault is a deterministic, seeded fault-injection registry for
// chaos testing the serving stack. Code under test declares named injection
// points (fault.Maybe("persist.write"), fault.Sleep("stream.fold.slow"),
// fault.Writer("persist.torn", f)); a test or the -fault flag arms a subset
// of them with a spec string, and armed points fire deterministically from a
// per-point splitmix64 stream seeded by Enable.
//
// The disabled path is a single atomic load returning immediately, so
// instrumented production code pays nothing when no faults are armed. Hooks
// live only on cold paths (checkpoint writes, stream fold/encode closures) —
// never inside //smore:hotpath kernels.
//
// Spec grammar (comma-separated entries):
//
//	point[:p=PROB][:after=N][:times=M][:delay=DUR]
//
// p is the per-call fire probability (default 1), after skips the first N
// eligible calls, times caps total fires (0 = unlimited), delay is the stall
// duration for Sleep points. Example:
//
//	persist.sync:times=1,stream.fold.slow:delay=150ms,stream.fold.err:p=0.5:after=3
//
// Determinism: a point's fire/no-fire sequence depends only on the seed, the
// point name, and the order of calls against that point. Concurrent callers
// still draw from one serialized stream; only their interleaving varies.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Points is the registry of known injection points. Enable rejects names
// outside this table so a typo in a -fault spec fails fast instead of
// silently arming nothing.
var Points = map[string]string{
	"persist.write":     "checkpoint data write returns a disk error",
	"persist.torn":      "checkpoint write is torn: only a prefix reaches disk, reported as success",
	"persist.sync":      "fsync of a checkpoint file fails",
	"persist.rename":    "atomic rename of a checkpoint file fails",
	"stream.encode.err": "streaming micro-batch encode fails",
	"stream.fold.err":   "streaming fold fails before touching the model",
	"stream.fold.slow":  "streaming fold stalls for the configured delay",
}

// Error is the failure Maybe injects; Point names the injection site.
type Error struct{ Point string }

func (e *Error) Error() string { return "fault: injected failure at " + e.Point }

// IsInjected reports whether err (or anything it wraps) was injected by this
// package, so tests and loadgen can tell deliberate chaos from real faults.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// point is one armed injection site. The mutex serializes the draw stream so
// concurrent callers consume deterministic positions of it.
type point struct {
	prob  float64
	after int64
	times int64
	delay time.Duration

	mu    sync.Mutex
	calls int64
	fired int64
	rng   uint64
}

// splitmix64 advances the per-point stream; the output is uniform in
// [0, 1<<64).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// fire consumes one position of the point's stream and reports whether this
// call injects.
func (p *point) fire() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.calls <= p.after {
		return false
	}
	if p.times > 0 && p.fired >= p.times {
		return false
	}
	if p.prob < 1 {
		draw := float64(splitmix64(&p.rng)>>11) / (1 << 53)
		if draw >= p.prob {
			return false
		}
	}
	p.fired++
	return true
}

// frac draws a deterministic tear fraction in [0.1, 0.9) for torn writes —
// never 0 (an empty file is trivially invalid) and never 1 (not torn).
func (p *point) frac() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return 0.1 + 0.8*float64(splitmix64(&p.rng)>>11)/(1<<53)
}

// registry is an immutable armed-point set, swapped wholesale by Enable so
// readers never lock.
type registry struct {
	points map[string]*point
	spec   string
}

var (
	armed atomic.Bool
	reg   atomic.Pointer[registry]
)

// Enabled reports whether any fault point is armed.
func Enabled() bool { return armed.Load() }

// Spec returns the normalized spec of the armed points, "" when disabled.
func Spec() string {
	if !armed.Load() {
		return ""
	}
	if r := reg.Load(); r != nil {
		return r.spec
	}
	return ""
}

// Disable disarms every point.
func Disable() {
	armed.Store(false)
	reg.Store(nil)
}

// Enable parses spec and arms exactly the points it names, seeding each
// point's draw stream from seed and the point name. An empty spec disables
// injection. Unknown point names and malformed options are errors.
func Enable(spec string, seed uint64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	points := map[string]*point{}
	names := make([]string, 0, 4)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		name := parts[0]
		if _, ok := Points[name]; !ok {
			return fmt.Errorf("fault: unknown injection point %q", name)
		}
		if _, dup := points[name]; dup {
			return fmt.Errorf("fault: injection point %q armed twice", name)
		}
		p := &point{prob: 1}
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("fault: %s: option %q is not key=value", name, kv)
			}
			var err error
			switch k {
			case "p":
				p.prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (p.prob < 0 || p.prob > 1) {
					err = fmt.Errorf("probability %v outside [0,1]", p.prob)
				}
			case "after":
				p.after, err = strconv.ParseInt(v, 10, 64)
			case "times":
				p.times, err = strconv.ParseInt(v, 10, 64)
			case "delay":
				p.delay, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown option %q", k)
			}
			if err != nil {
				return fmt.Errorf("fault: %s: %s=%s: %w", name, k, v, err)
			}
		}
		// Seed per point from the global seed and the name, so arming extra
		// points does not perturb an existing point's sequence.
		h := fnv.New64a()
		h.Write([]byte(name))
		p.rng = seed ^ h.Sum64()
		points[name] = p
		names = append(names, entry)
	}
	if len(points) == 0 {
		Disable()
		return nil
	}
	sort.Strings(names)
	reg.Store(&registry{points: points, spec: strings.Join(names, ",")})
	armed.Store(true)
	return nil
}

// lookup resolves an armed point; nil when injection is off or the point is
// not armed. Callers must have checked armed first for the fast path.
func lookup(name string) *point {
	r := reg.Load()
	if r == nil {
		return nil
	}
	p, ok := r.points[name]
	if !ok {
		if _, known := Points[name]; !known {
			panic("fault: hook references unknown injection point " + name)
		}
		return nil
	}
	return p
}

// Maybe returns an injected error when the named point is armed and fires,
// nil otherwise. The disabled path is one atomic load.
func Maybe(name string) error {
	if !armed.Load() {
		return nil
	}
	p := lookup(name)
	if p == nil || !p.fire() {
		return nil
	}
	return &Error{Point: name}
}

// Sleep stalls for the point's configured delay when it is armed and fires.
func Sleep(name string) {
	if !armed.Load() {
		return
	}
	p := lookup(name)
	if p == nil || p.delay <= 0 || !p.fire() {
		return
	}
	time.Sleep(p.delay)
}

// Writer wraps w with a torn-write injector when the named point is armed
// and fires: only a deterministic prefix of the first Write reaches w, yet
// every Write reports success — modeling a write the kernel acknowledged but
// never fully persisted. When the point does not fire, w is returned as-is.
func Writer(name string, w io.Writer) io.Writer {
	if !armed.Load() {
		return w
	}
	p := lookup(name)
	if p == nil || !p.fire() {
		return w
	}
	return &tornWriter{w: w, frac: p.frac()}
}

// tornWriter forwards a prefix of the first write and swallows everything
// after it, always claiming success.
type tornWriter struct {
	w    io.Writer
	frac float64
	torn bool
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.torn {
		return len(p), nil
	}
	t.torn = true
	if n := int(float64(len(p)) * t.frac); n > 0 {
		if _, err := t.w.Write(p[:n]); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}
