package fault

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func arm(t *testing.T, spec string, seed uint64) {
	t.Helper()
	if err := Enable(spec, seed); err != nil {
		t.Fatalf("Enable(%q): %v", spec, err)
	}
	t.Cleanup(Disable)
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled after Disable")
	}
	if err := Maybe("persist.write"); err != nil {
		t.Fatalf("disabled Maybe returned %v", err)
	}
	var buf bytes.Buffer
	if w := Writer("persist.torn", &buf); w != &buf {
		t.Fatal("disabled Writer did not return the underlying writer")
	}
	Sleep("stream.fold.slow") // must return immediately
}

func TestUnarmedPointIsInert(t *testing.T) {
	arm(t, "persist.sync", 1)
	if err := Maybe("persist.write"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if err := Maybe("persist.sync"); err == nil {
		t.Fatal("armed point did not fire")
	} else if !IsInjected(err) {
		t.Fatalf("IsInjected(%v) = false", err)
	}
}

func TestSpecValidation(t *testing.T) {
	for _, bad := range []string{
		"no.such.point",
		"persist.write:p=1.5",
		"persist.write:p=x",
		"persist.write:frob=1",
		"persist.write:delay",
		"persist.write,persist.write",
	} {
		if err := Enable(bad, 1); err == nil {
			Disable()
			t.Errorf("Enable(%q) accepted", bad)
		}
	}
	if err := Enable("", 1); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if Enabled() {
		t.Fatal("empty spec left injection armed")
	}
}

func TestAfterAndTimes(t *testing.T) {
	arm(t, "stream.fold.err:after=2:times=3", 7)
	var fires []int
	for i := 0; i < 10; i++ {
		if Maybe("stream.fold.err") != nil {
			fires = append(fires, i)
		}
	}
	if want := []int{2, 3, 4}; fmt.Sprint(fires) != fmt.Sprint(want) {
		t.Fatalf("fires at %v, want %v", fires, want)
	}
}

func TestProbabilityIsDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		arm(t, "persist.write:p=0.5", seed)
		var b []byte
		for i := 0; i < 64; i++ {
			if Maybe("persist.write") != nil {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
		}
		return string(b)
	}
	p1, p2, p3 := pattern(42), pattern(42), pattern(43)
	if p1 != p2 {
		t.Fatalf("same seed diverged:\n%s\n%s", p1, p2)
	}
	if p1 == p3 {
		t.Fatalf("different seeds produced identical pattern %s", p1)
	}
	if !bytes.Contains([]byte(p1), []byte{'1'}) || !bytes.Contains([]byte(p1), []byte{'0'}) {
		t.Fatalf("p=0.5 pattern degenerate: %s", p1)
	}
}

func TestSleepDelay(t *testing.T) {
	arm(t, "stream.fold.slow:delay=30ms:times=1", 1)
	start := time.Now()
	Sleep("stream.fold.slow")
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("armed Sleep returned after %v", d)
	}
	start = time.Now()
	Sleep("stream.fold.slow") // times=1 exhausted
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("exhausted Sleep stalled %v", d)
	}
}

func TestTornWriter(t *testing.T) {
	arm(t, "persist.torn:times=1", 9)
	var buf bytes.Buffer
	payload := bytes.Repeat([]byte("smore"), 200)
	w := Writer("persist.torn", &buf)
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("torn write reported (%d, %v), want full success", n, err)
	}
	if n, err := w.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("second torn write reported (%d, %v)", n, err)
	}
	if buf.Len() == 0 || buf.Len() >= len(payload) {
		t.Fatalf("torn writer persisted %d of %d bytes, want a strict non-empty prefix", buf.Len(), len(payload))
	}
	if !bytes.Equal(buf.Bytes(), payload[:buf.Len()]) {
		t.Fatal("torn writer persisted non-prefix bytes")
	}
	// times=1 exhausted: the next Writer call passes through untouched.
	var buf2 bytes.Buffer
	if w := Writer("persist.torn", &buf2); w != &buf2 {
		t.Fatal("exhausted torn point still wrapped the writer")
	}
}

func TestSpecNormalized(t *testing.T) {
	arm(t, " stream.fold.err , persist.sync:times=1 ", 1)
	if got, want := Spec(), "persist.sync:times=1,stream.fold.err"; got != want {
		t.Fatalf("Spec() = %q, want %q", got, want)
	}
}

func TestErrorsAsChain(t *testing.T) {
	arm(t, "persist.rename", 1)
	err := fmt.Errorf("renaming checkpoint: %w", Maybe("persist.rename"))
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "persist.rename" {
		t.Fatalf("wrapped injected error lost its point: %v", err)
	}
}
