package core
