package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
)

// fakeWindow builds a distinguishable 1-timestep window whose single sensor
// value carries the window's sequence number.
func fakeWindow(i int) [][]float64 { return [][]float64{{float64(i)}} }

// passthroughEncode turns each fake window back into a tagged (empty)
// vector; the tag rides along in a side slice recorded by the fold.
func passthroughEncode(windows [][][]float64) ([]hdc.Vector, error) {
	hvs := make([]hdc.Vector, len(windows))
	for i := range windows {
		hvs[i] = hdc.New(64)
		if windows[i][0][0] != 0 {
			hvs[i].SetBit(int(windows[i][0][0])%64, 1)
		}
	}
	return hvs, nil
}

// recordingFold appends each batch's size to sizes under mu.
type recordingFold struct {
	mu     sync.Mutex
	sizes  []int
	gate   chan struct{} // if non-nil, each fold blocks until a receive
	stats  model.AdaptStats
	err    error
	faults int // folds to fail before succeeding
}

func (f *recordingFold) fold(hvs []hdc.Vector) (model.AdaptStats, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.faults > 0 {
		f.faults--
		return model.AdaptStats{}, f.err
	}
	f.sizes = append(f.sizes, len(hvs))
	return f.stats, nil
}

func (f *recordingFold) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, len(f.sizes))
	copy(out, f.sizes)
	return out
}

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestCoalescesIntoMaxBatchChunks(t *testing.T) {
	f := &recordingFold{stats: model.AdaptStats{Epochs: 1, PseudoLabels: 2, Skipped: 3}}
	a := New(Config{QueueCap: 64, MaxBatch: 4}, passthroughEncode, f.fold)
	windows := make([][][]float64, 10)
	for i := range windows {
		windows[i] = fakeWindow(i)
	}
	if _, err := a.Enqueue(windows); err != nil {
		t.Fatal(err)
	}
	// Worker starts only now, so the batch boundaries are deterministic:
	// 4, 4, 2.
	a.Start()
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	got := f.batchSizes()
	want := []int{4, 4, 2}
	if len(got) != len(want) {
		t.Fatalf("fold batches %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fold batches %v, want %v", got, want)
		}
	}
	st := a.Stats()
	if st.Enqueued != 10 || st.WindowsFolded != 10 || st.BatchesFolded != 3 {
		t.Fatalf("stats %+v: want 10 enqueued, 10 folded, 3 batches", st)
	}
	if st.Adapt.Epochs != 3 || st.Adapt.PseudoLabels != 6 || st.Adapt.Skipped != 9 {
		t.Fatalf("cumulative adapt stats %+v, want per-fold stats summed over 3 folds", st.Adapt)
	}
	if !st.Drained() || !st.Closed {
		t.Fatalf("post-close stats %+v: want drained and closed", st)
	}
}

func TestEnqueueBackpressureIsAllOrNothing(t *testing.T) {
	f := &recordingFold{gate: make(chan struct{})}
	a := New(Config{QueueCap: 4, MaxBatch: 2}, passthroughEncode, f.fold)
	a.Start()

	// Fill the queue (the worker may move up to MaxBatch windows in-flight
	// where they block on the gate, so keep feeding until depth == cap).
	deadline := time.After(5 * time.Second)
	for {
		depth, err := a.Enqueue([][][]float64{fakeWindow(1)})
		if err != nil {
			t.Fatalf("enqueue while filling: %v", err)
		}
		if depth == 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
		}
	}

	// A batch that does not fit must be rejected whole, immediately.
	startReject := time.Now()
	if _, err := a.Enqueue([][][]float64{fakeWindow(7), fakeWindow(8)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull enqueue error = %v, want ErrQueueFull", err)
	}
	if elapsed := time.Since(startReject); elapsed > time.Second {
		t.Fatalf("rejection took %v: Enqueue must not block on a full queue", elapsed)
	}
	st := a.Stats()
	if st.Dropped != 2 {
		t.Fatalf("dropped %d windows, want 2 (the whole rejected batch)", st.Dropped)
	}
	if st.QueueDepth != 4 {
		t.Fatalf("queue depth %d after rejection, want 4 (nothing partially enqueued)", st.QueueDepth)
	}

	// Release the worker; everything accepted so far must fold.
	go func() {
		for {
			select {
			case f.gate <- struct{}{}:
			case <-a.done:
				return
			}
		}
	}()
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	st = a.Stats()
	if st.WindowsFolded != st.Enqueued {
		t.Fatalf("folded %d of %d enqueued windows", st.WindowsFolded, st.Enqueued)
	}
	if _, err := a.Enqueue([][][]float64{fakeWindow(9)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close error = %v, want ErrClosed", err)
	}
}

func TestDrainWaitsForInFlightFold(t *testing.T) {
	f := &recordingFold{gate: make(chan struct{})}
	a := New(Config{QueueCap: 8, MaxBatch: 8}, passthroughEncode, f.fold)
	a.Start()
	if _, err := a.Enqueue([][][]float64{fakeWindow(1), fakeWindow(2)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := a.Drain(ctx); err == nil {
		t.Fatal("drain returned while the fold was still gated")
	}
	close(f.gate)
	if err := a.Drain(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	if got := f.batchSizes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("fold batches %v, want [2]", got)
	}
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeAndFoldErrorsAreCountedNotFatal(t *testing.T) {
	encodeErr := errors.New("bad window shape")
	flaky := func(windows [][][]float64) ([]hdc.Vector, error) {
		if windows[0][0][0] < 0 {
			return nil, encodeErr
		}
		return passthroughEncode(windows)
	}
	f := &recordingFold{err: fmt.Errorf("model: fold exploded"), faults: 1}
	a := New(Config{QueueCap: 8, MaxBatch: 1}, flaky, f.fold)
	if _, err := a.Enqueue([][][]float64{{{-1}}}); err != nil { // encode error
		t.Fatal(err)
	}
	if _, err := a.Enqueue([][][]float64{fakeWindow(1)}); err != nil { // fold error
		t.Fatal(err)
	}
	if _, err := a.Enqueue([][][]float64{fakeWindow(2)}); err != nil { // succeeds
		t.Fatal(err)
	}
	a.Start()
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.EncodeErrors != 1 || st.FoldErrors != 1 || st.BatchesFolded != 1 {
		t.Fatalf("stats %+v: want 1 encode error, 1 fold error, 1 folded batch", st)
	}
	if st.WindowsLost != 2 {
		t.Fatalf("stats %+v: the two failed 1-window batches must count as 2 lost windows", st)
	}
	if st.Enqueued != st.WindowsFolded+st.WindowsLost+int64(st.QueueDepth)+int64(st.InFlight) {
		t.Fatalf("stats %+v: window accounting does not reconcile", st)
	}
	if st.LastError != "" {
		t.Fatalf("LastError %q still set: the trailing successful fold must clear it", st.LastError)
	}
}

// TestLastErrorClearsOnSuccessfulFold pins the sticky-error fix: a failure
// is reported while it is the latest outcome, then cleared by the next clean
// fold while the cumulative error counters keep the history.
func TestLastErrorClearsOnSuccessfulFold(t *testing.T) {
	f := &recordingFold{err: fmt.Errorf("model: fold exploded"), faults: 1}
	a := New(Config{QueueCap: 8, MaxBatch: 1}, passthroughEncode, f.fold)
	if _, err := a.Enqueue([][][]float64{fakeWindow(1)}); err != nil { // fails
		t.Fatal(err)
	}
	if !a.runOnce(false) {
		t.Fatal("worker stopped with a queued window")
	}
	if st := a.Stats(); st.LastError == "" {
		t.Fatal("LastError not recorded after the failed fold")
	}
	if _, err := a.Enqueue([][][]float64{fakeWindow(2)}); err != nil { // succeeds
		t.Fatal(err)
	}
	a.runOnce(false)
	st := a.Stats()
	if st.LastError != "" {
		t.Fatalf("LastError %q survived a successful fold", st.LastError)
	}
	if st.FoldErrors != 1 || st.WindowsLost != 1 || st.BatchesFolded != 1 {
		t.Fatalf("stats %+v: clearing LastError must not touch the cumulative counters", st)
	}
}

// TestDrainWakesPromptlyAfterFinalFold pins the condition-variable Drain: it
// must return within a broadcast of the last fold completing, not after a
// poll interval.
func TestDrainWakesPromptlyAfterFinalFold(t *testing.T) {
	f := &recordingFold{gate: make(chan struct{})}
	a := New(Config{QueueCap: 8, MaxBatch: 8}, passthroughEncode, f.fold)
	a.Start()
	if _, err := a.Enqueue([][][]float64{fakeWindow(1), fakeWindow(2)}); err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- a.Drain(ctxShort(t)) }()
	// Give Drain time to park on the condition variable, then release the
	// gated fold and require the wake to land promptly.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) while the fold was still gated", err)
	default:
	}
	close(f.gate)
	woke := time.Now()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain never woke after the final fold")
	}
	if elapsed := time.Since(woke); elapsed > time.Second {
		t.Fatalf("drain woke %v after the final fold: want a prompt broadcast", elapsed)
	}
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
}

func TestCloseWithoutStartDrainsQueue(t *testing.T) {
	f := &recordingFold{}
	a := New(Config{QueueCap: 8, MaxBatch: 8}, passthroughEncode, f.fold)
	if _, err := a.Enqueue([][][]float64{fakeWindow(1)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.WindowsFolded != 1 {
		t.Fatalf("folded %d windows, want 1", st.WindowsFolded)
	}
}

func TestConcurrentEnqueueNeverExceedsCapacity(t *testing.T) {
	f := &recordingFold{}
	a := New(Config{QueueCap: 16, MaxBatch: 4}, passthroughEncode, f.fold)
	a.Start()
	var wg sync.WaitGroup
	for p := range 8 {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := range 50 {
				_, err := a.Enqueue([][][]float64{fakeWindow(p*50 + i)})
				if err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("enqueue: %v", err)
					return
				}
				if d := a.Stats().QueueDepth; d > 16 {
					t.Errorf("queue depth %d exceeds capacity 16", d)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.WindowsFolded != st.Enqueued {
		t.Fatalf("folded %d of %d accepted windows", st.WindowsFolded, st.Enqueued)
	}
	if st.Enqueued+st.Dropped != 400 {
		t.Fatalf("accepted %d + dropped %d != 400 submitted", st.Enqueued, st.Dropped)
	}
}

// TestCloseAbandonsQueueWhenFoldWedges pins the shutdown-robustness fix: a
// wedged fold must not let Close fold a stuffed queue forever. When the
// Close context expires, the remaining queue is abandoned into WindowsLost
// (books still balance) and the worker exits right after its in-flight
// batch. Run under -race: Close, the wedged fold, and Stats race by design.
func TestCloseAbandonsQueueWhenFoldWedges(t *testing.T) {
	f := &recordingFold{gate: make(chan struct{})}
	a := New(Config{QueueCap: 64, MaxBatch: 4}, passthroughEncode, f.fold)
	a.Start()
	windows := make([][][]float64, 12)
	for i := range windows {
		windows[i] = fakeWindow(i)
	}
	if _, err := a.Enqueue(windows); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never took a batch")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := a.Close(ctx)
	if err == nil {
		t.Fatal("close succeeded while the fold was wedged")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("close took %v despite its 50ms budget", d)
	}
	st := a.Stats()
	if st.WindowsLost != 8 || st.QueueDepth != 0 || st.InFlight != 4 {
		t.Fatalf("post-abandon stats %+v: want 8 lost, 0 queued, 4 in flight", st)
	}
	if st.Enqueued != st.WindowsFolded+st.WindowsLost+int64(st.QueueDepth)+int64(st.InFlight) {
		t.Fatalf("reconciliation invariant broken: %+v", st)
	}
	// Unwedge: the worker folds only its in-flight batch, never the
	// abandoned windows, and exits — observed by a second Close.
	close(f.gate)
	if err := a.Close(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	st = a.Stats()
	if st.WindowsFolded != 4 || st.WindowsLost != 8 || !st.Drained() {
		t.Fatalf("final stats %+v: want 4 folded, 8 lost, drained", st)
	}
	if got := f.batchSizes(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("fold batches %v, want [4]", got)
	}
}
