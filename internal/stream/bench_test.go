package stream

import (
	"testing"

	"go-arxiv/smore/internal/encode"
	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
)

// BenchmarkAdapterSteadyState measures the full enqueue → coalesce →
// encode cycle of one micro-batch through a real encoder, driving the
// worker body inline so the numbers carry no scheduler or sleep noise.
// This is the stream-path allocation floor: the batch buffer is reused
// across micro-batches and the encoder runs on pooled scratch, so the
// per-window cost is the encode itself plus one result vector.
func BenchmarkAdapterSteadyState(b *testing.B) {
	enc, err := encode.New(encode.Config{Dim: 2048, Sensors: 4, Levels: 16, NGram: 3, Min: -3, Max: 3, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	a := New(Config{QueueCap: 1024, MaxBatch: 64},
		func(windows [][][]float64) ([]hdc.Vector, error) {
			return enc.EncodeBatch(windows, 1)
		},
		func(hvs []hdc.Vector) (model.AdaptStats, error) {
			return model.AdaptStats{}, nil
		},
	)
	windows := make([][][]float64, 16)
	for i := range windows {
		w := make([][]float64, 16)
		for t := range w {
			w[t] = []float64{float64(i), float64(t), -1, 1}
		}
		windows[i] = w
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := a.Enqueue(windows); err != nil {
			b.Fatal(err)
		}
		if !a.runOnce(false) {
			b.Fatal("worker found an empty queue after a successful enqueue")
		}
	}
}
