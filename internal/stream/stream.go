// Package stream is the bounded ingestion queue and background
// micro-batching adapter behind the streaming adaptation path. Producers
// enqueue raw windows; a single worker goroutine coalesces them into batches
// of up to MaxBatch, encodes each batch on the shared worker pool *outside*
// any model lock, and folds the hypervectors into the model through a
// caller-supplied fold function (typically Ensemble.AdaptIncremental under
// the serving write lock). Prediction traffic therefore only ever contends
// with the short fold step, never with encoding.
//
// Enqueue is all-or-nothing and never blocks: when the queue cannot hold the
// whole batch it returns ErrQueueFull, which the serving layer surfaces as
// HTTP 429 backpressure. Batches fold strictly in enqueue order, and both
// encode and fold are deterministic, so a fixed arrival order always yields
// the same adapted model.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
)

// ErrQueueFull is returned by Enqueue when the queue cannot accept the whole
// batch; nothing is enqueued. Callers should retry later (backpressure).
var ErrQueueFull = errors.New("stream: queue full")

// ErrClosed is returned by Enqueue after Close has begun shutting the
// adapter down.
var ErrClosed = errors.New("stream: adapter closed")

// EncodeFunc encodes raw windows into hypervectors. It runs on the worker
// goroutine with no lock held, so it may use the full worker pool.
type EncodeFunc func(windows [][][]float64) ([]hdc.Vector, error)

// FoldFunc folds one encoded batch into the model. It runs on the worker
// goroutine; the callee is responsible for whatever locking the model needs
// (the serving layer takes its write lock here).
type FoldFunc func(hvs []hdc.Vector) (model.AdaptStats, error)

// Config tunes an Adapter; the zero value picks sane defaults.
type Config struct {
	QueueCap int // maximum windows held in the queue; <= 0 means 4096
	MaxBatch int // maximum windows folded per AdaptIncremental call; <= 0 means 256

	// Policy decides when the worker opens a fresh target domain (nil
	// means NoDrift). A spawning policy needs Sim to measure batches and
	// Spawn to open targets; with either missing the policy is inert.
	Policy DriftPolicy
	// MaxTargets bounds the live target set under a retiring policy;
	// <= 0 means DefaultMaxTargets.
	MaxTargets int
	// Sim measures a batch against the active target (nil disables drift
	// tracking entirely).
	Sim SimFunc
	// Spawn opens a fresh target domain on a drift decision.
	Spawn SpawnFunc
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Policy == nil {
		c.Policy = NoDrift{}
	}
	if c.MaxTargets <= 0 {
		c.MaxTargets = DefaultMaxTargets
	}
	return c
}

// Stats is a consistent snapshot of the adapter's counters.
type Stats struct {
	QueueDepth int  `json:"queue_depth"` // windows waiting in the queue
	InFlight   int  `json:"in_flight"`   // windows taken by the worker, not yet folded
	Capacity   int  `json:"capacity"`    // configured queue capacity
	MaxBatch   int  `json:"max_batch"`   // configured fold batch cap
	Closed     bool `json:"closed"`      // Close has begun; Enqueue rejects

	Enqueued      int64 `json:"enqueued_total"`       // windows accepted by Enqueue
	Dropped       int64 `json:"dropped_total"`        // windows rejected with ErrQueueFull
	BatchesFolded int64 `json:"batches_folded_total"` // successful fold calls
	WindowsFolded int64 `json:"windows_folded_total"` // windows in successful folds
	EncodeErrors  int64 `json:"encode_errors_total"`  // batches dropped by a failed encode
	FoldErrors    int64 `json:"fold_errors_total"`    // batches dropped by a failed fold
	// WindowsLost counts accepted windows discarded by a failed encode or
	// fold, so the books always balance:
	// Enqueued == WindowsFolded + WindowsLost + QueueDepth + InFlight.
	WindowsLost int64 `json:"windows_lost_total"`

	// Adapt accumulates the AdaptStats of every successful fold.
	Adapt model.AdaptStats `json:"adapt_stats"`
	// LastError is the most recent encode/fold error, for /v1/stream/stats.
	LastError string `json:"last_error,omitempty"`

	// DriftPolicy is the configured policy's registered name.
	DriftPolicy string `json:"drift_policy"`
	// SimilarityEMA is the tracked batch-vs-active-target similarity
	// trajectory; valid only while SimilarityValid (it resets on every
	// spawn and rollback).
	SimilarityEMA   float64 `json:"similarity_ema"`
	SimilarityValid bool    `json:"similarity_ema_valid"`
	// FoldsOnTarget counts successful folds since the active target last
	// changed (spawn or rollback).
	FoldsOnTarget int64 `json:"folds_on_target"`
	// TargetsSpawned / TargetsRetired count drift-policy transitions.
	TargetsSpawned int64 `json:"targets_spawned_total"`
	TargetsRetired int64 `json:"targets_retired_total"`
}

// Drained reports whether nothing is queued or being folded.
func (s Stats) Drained() bool { return s.QueueDepth == 0 && s.InFlight == 0 }

// Adapter is the bounded queue plus its background worker. Construct with
// New, then call Start to launch the worker (Start is separate so replay
// harnesses can enqueue a full stream first and get deterministic batch
// boundaries). All methods are safe for concurrent use.
type Adapter struct {
	cfg    Config
	encode EncodeFunc
	fold   FoldFunc

	mu       sync.Mutex
	wake     *sync.Cond // signaled when work arrives or shutdown begins
	idle     *sync.Cond // broadcast when a micro-batch finishes (Drain waiters)
	queue    [][][]float64
	inFlight int
	closed   bool
	started  bool
	stats    Stats
	drift    driftState

	// batchBuf is the coalescing buffer the worker reuses across
	// micro-batches, so steady-state folding does not allocate a fresh
	// batch slice per AdaptIncremental call. Only the worker touches it.
	batchBuf [][][]float64

	done chan struct{} // closed when the worker exits
}

// New builds an adapter; the worker does not run until Start.
func New(cfg Config, encode EncodeFunc, fold FoldFunc) *Adapter {
	a := &Adapter{
		cfg:    cfg.withDefaults(),
		encode: encode,
		fold:   fold,
		done:   make(chan struct{}),
	}
	a.wake = sync.NewCond(&a.mu)
	a.idle = sync.NewCond(&a.mu)
	return a
}

// Start launches the background worker. Calling Start more than once is a
// no-op.
func (a *Adapter) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started {
		return
	}
	a.started = true
	go a.run()
}

// Enqueue appends windows to the queue, all-or-nothing: if the queue's free
// space cannot hold every window, nothing is enqueued and ErrQueueFull is
// returned (the drop is counted). It never blocks. The returned depth is the
// queue depth immediately after the call.
func (a *Adapter) Enqueue(windows [][][]float64) (depth int, err error) {
	if len(windows) == 0 {
		return 0, fmt.Errorf("stream: empty batch")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return len(a.queue), ErrClosed
	}
	if len(a.queue)+len(windows) > a.cfg.QueueCap {
		a.stats.Dropped += int64(len(windows))
		return len(a.queue), ErrQueueFull
	}
	a.queue = append(a.queue, windows...)
	a.stats.Enqueued += int64(len(windows))
	a.wake.Signal()
	return len(a.queue), nil
}

// Stats returns a consistent snapshot of the adapter's counters.
func (a *Adapter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snapshotLocked()
}

func (a *Adapter) snapshotLocked() Stats {
	s := a.stats
	s.QueueDepth = len(a.queue)
	s.InFlight = a.inFlight
	s.Capacity = a.cfg.QueueCap
	s.MaxBatch = a.cfg.MaxBatch
	s.Closed = a.closed
	s.DriftPolicy = a.cfg.Policy.Name()
	s.SimilarityEMA = a.drift.ema
	s.SimilarityValid = a.drift.emaInit
	s.FoldsOnTarget = a.drift.folds
	return s
}

// Drain blocks until the queue is empty and no fold is in flight, or ctx
// expires. It does not stop the worker or reject new traffic; use Close for
// shutdown. The wait is a condition-variable sleep woken at the end of every
// micro-batch, so Drain returns promptly after the final fold instead of
// polling.
func (a *Adapter) Drain(ctx context.Context) error {
	// A sync.Cond cannot select on ctx, so ctx cancellation is bridged into
	// a broadcast that re-checks the loop condition.
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		a.idle.Broadcast()
		a.mu.Unlock()
	})
	defer stop()
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.queue) != 0 || a.inFlight != 0 {
		if ctx.Err() != nil {
			return fmt.Errorf("stream: drain: %w", ctx.Err())
		}
		a.idle.Wait()
	}
	return nil
}

// Close stops accepting new windows, lets the worker drain everything
// already enqueued, and waits for it to exit (or ctx to expire). If Start
// was never called, Close runs the worker once inline so a pre-loaded queue
// still drains. Close is idempotent.
//
// When ctx expires before the drain finishes — typically a wedged or
// deliberately stalled fold — Close abandons the remaining queue: the
// dropped windows are accounted as WindowsLost (so the reconciliation
// invariant still balances) and the worker exits right after its in-flight
// batch instead of grinding through a stuffed queue long after shutdown gave
// up on it. A later Close observes the worker's actual exit.
func (a *Adapter) Close(ctx context.Context) error {
	a.mu.Lock()
	a.closed = true
	if !a.started {
		a.started = true
		go a.run()
	}
	a.wake.Signal()
	a.mu.Unlock()
	select {
	case <-a.done:
		return nil
	case <-ctx.Done():
	}
	a.mu.Lock()
	lost := len(a.queue)
	if lost > 0 {
		clear(a.queue)
		a.queue = a.queue[:0]
		a.stats.WindowsLost += int64(lost)
		a.stats.LastError = fmt.Sprintf("close abandoned %d queued windows: %v", lost, ctx.Err())
		a.idle.Broadcast()
	}
	a.mu.Unlock()
	if lost > 0 {
		return fmt.Errorf("stream: close: %w (abandoned %d queued windows)", ctx.Err(), lost)
	}
	return fmt.Errorf("stream: close: %w", ctx.Err())
}

// maybeDrift measures the encoded batch against the active target domain
// and lets the drift policy redirect it into a freshly spawned target. It
// runs on the worker goroutine between encode and fold: the similarity is
// computed against the pre-fold state, so the drifted batch itself becomes
// the first fold — and the source-mixture initializer — of the new target,
// and the spawn's checkpoint is exactly the pre-drift state. Lock order:
// the Sim/Spawn callees take the model/instance lock; the adapter mutex is
// only held for the trajectory bookkeeping in between, never across either
// call.
func (a *Adapter) maybeDrift(hvs []hdc.Vector) {
	if a.cfg.Sim == nil {
		return
	}
	sim, ok, err := a.cfg.Sim(hvs)
	if err != nil || !ok {
		return
	}
	pol := a.cfg.Policy
	if a.cfg.Spawn == nil {
		pol = NoDrift{} // tracking-only: keep the EMA gauge, never spawn
	}
	a.mu.Lock()
	spawn := a.drift.observe(pol, sim)
	a.mu.Unlock()
	if !spawn {
		return
	}
	_, retired, spawnErr := a.cfg.Spawn(a.cfg.MaxTargets, pol.RetiresLRU())
	a.mu.Lock()
	if spawnErr != nil {
		a.stats.LastError = spawnErr.Error()
	} else {
		a.stats.TargetsSpawned++
		if retired != "" {
			a.stats.TargetsRetired++
		}
	}
	a.mu.Unlock()
}

// run is the worker loop: take up to MaxBatch windows, encode them with no
// lock held, fold them, repeat; exit once closed and empty.
func (a *Adapter) run() {
	defer close(a.done)
	for a.runOnce(true) {
	}
}

// runOnce processes one micro-batch: take up to MaxBatch windows off the
// queue (blocking for work or shutdown when wait is true), encode them with
// no lock held, fold them, and account the outcome. It reports whether the
// worker should keep going — false means the queue is empty and, when
// waiting, that shutdown has begun.
func (a *Adapter) runOnce(wait bool) bool {
	a.mu.Lock()
	if wait {
		for len(a.queue) == 0 && !a.closed {
			a.wake.Wait()
		}
	}
	if len(a.queue) == 0 {
		a.mu.Unlock()
		return false // drained (and, when waiting, closed)
	}
	n := min(len(a.queue), a.cfg.MaxBatch)
	batch := append(a.batchBuf[:0], a.queue[:n]...)
	a.batchBuf = batch
	// Shift rather than re-slice so the backing array's consumed prefix
	// does not pin window data for the queue's lifetime.
	rest := copy(a.queue, a.queue[n:])
	for i := rest; i < len(a.queue); i++ {
		a.queue[i] = nil
	}
	a.queue = a.queue[:rest]
	a.inFlight = n
	a.mu.Unlock()

	var stats model.AdaptStats
	hvs, encErr := a.encode(batch)
	var foldErr error
	if encErr == nil {
		a.maybeDrift(hvs)
		stats, foldErr = a.fold(hvs)
	}
	// Drop the window references so the reused buffer cannot pin client
	// data between micro-batches.
	clear(batch)

	a.mu.Lock()
	switch {
	case encErr != nil:
		a.stats.EncodeErrors++
		a.stats.WindowsLost += int64(n)
		a.stats.LastError = encErr.Error()
	case foldErr != nil:
		a.stats.FoldErrors++
		a.stats.WindowsLost += int64(n)
		a.stats.LastError = foldErr.Error()
	default:
		a.stats.BatchesFolded++
		a.stats.WindowsFolded += int64(n)
		a.stats.Adapt.Accumulate(stats)
		a.drift.folds++
		// A transient failure must not be reported forever: the sticky
		// last-error clears on the next clean fold (the cumulative error
		// counters keep the history).
		a.stats.LastError = ""
	}
	a.inFlight = 0
	a.idle.Broadcast()
	a.mu.Unlock()
	return true
}
