package stream

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"go-arxiv/smore/internal/hdc"
)

// ErrUnknownDriftPolicy marks a drift-policy spec that does not resolve to
// a registered policy — a caller error (HTTP 400 at the serving layer).
var ErrUnknownDriftPolicy = errors.New("stream: unknown drift policy")

// SimFunc computes the similarity signal the drift detector tracks: the
// cosine of the bundled batch against the active target's domain prototype
// (model.Ensemble.BatchSimilarity behind whatever locking the model needs).
// ok is false when no initialized target exists yet. It runs on the worker
// goroutine before the batch is folded, so a drift decision made on it can
// redirect this very batch into a freshly spawned target.
type SimFunc func(hvs []hdc.Vector) (sim float64, ok bool, err error)

// SpawnFunc opens a fresh auto-named target domain, checkpointing the prior
// state for rollback (model.Ensemble.SpawnTarget behind the caller's
// locking). When retire is true and the spawn pushes the live target count
// past maxTargets, the least-recently-folded non-active target is retired
// in the same transition.
type SpawnFunc func(maxTargets int, retire bool) (spawned, retired string, err error)

// Drift-policy defaults: a batch whose similarity sits driftThreshold below
// the tracked EMA is a shift, but only after minFoldsBeforeSpawn folds have
// given the current target a fair chance to absorb the trajectory. The EMA
// weighs the newest batch by driftAlpha.
const (
	defaultDriftThreshold = 0.1
	defaultDriftMinFolds  = 2
	driftAlpha            = 0.3

	// DefaultMaxTargets caps the live target set under spawn+retire when
	// the caller does not choose a bound.
	DefaultMaxTargets = 4
)

// DriftPolicy decides when the streaming adapter opens a fresh target
// domain. Policies are registered by name like adaptation strategies:
// "none" (default), "spawn", and "spawn+retire". ShouldSpawn sees the
// similarity EMA tracked so far (always initialized), the incoming batch's
// similarity, and how many folds the active target has received since it
// became active. Implementations must be stateless: the adapter owns the
// trajectory state and consults the policy under its own lock.
type DriftPolicy interface {
	Name() string
	ShouldSpawn(ema, sim float64, folds int64) bool
	// RetiresLRU reports whether spawns retire the least-recently-folded
	// target once the live set exceeds MaxTargets.
	RetiresLRU() bool
}

// NoDrift never spawns — the single-target streaming behavior.
type NoDrift struct{}

// Name implements DriftPolicy.
func (NoDrift) Name() string { return "none" }

// ShouldSpawn implements DriftPolicy.
func (NoDrift) ShouldSpawn(float64, float64, int64) bool { return false }

// RetiresLRU implements DriftPolicy.
func (NoDrift) RetiresLRU() bool { return false }

// SpawnOnDrift spawns a fresh target when a batch's similarity to the
// active target drops more than Threshold below the tracked EMA, once the
// active target has absorbed at least MinFolds folds.
type SpawnOnDrift struct {
	Threshold float64 // similarity drop below the EMA that is a shift; 0 means 0.1
	MinFolds  int64   // folds the active target gets before spawns; 0 means 2
}

// Name implements DriftPolicy.
func (SpawnOnDrift) Name() string { return "spawn" }

// ShouldSpawn implements DriftPolicy.
func (p SpawnOnDrift) ShouldSpawn(ema, sim float64, folds int64) bool {
	thr, minFolds := p.Threshold, p.MinFolds
	if thr == 0 {
		thr = defaultDriftThreshold
	}
	if minFolds == 0 {
		minFolds = defaultDriftMinFolds
	}
	return folds >= minFolds && sim < ema-thr
}

// RetiresLRU implements DriftPolicy.
func (SpawnOnDrift) RetiresLRU() bool { return false }

// SpawnRetireOnDrift is SpawnOnDrift plus LRU retirement past MaxTargets.
type SpawnRetireOnDrift struct{ SpawnOnDrift }

// Name implements DriftPolicy.
func (SpawnRetireOnDrift) Name() string { return "spawn+retire" }

// RetiresLRU implements DriftPolicy.
func (SpawnRetireOnDrift) RetiresLRU() bool { return true }

// DriftPolicyNames lists the registered drift policies.
func DriftPolicyNames() []string { return []string{"none", "spawn", "spawn+retire"} }

// ParseDriftPolicy resolves a drift-policy spec. The grammar is
//
//	none | spawn[:threshold] | spawn+retire[:threshold]
//
// where the optional threshold (a float in (0,1]) overrides the similarity
// drop that counts as a shift. The empty spec means none.
func ParseDriftPolicy(spec string) (DriftPolicy, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	thr := 0.0
	if hasArg {
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil || !(v > 0 && v <= 1) {
			return nil, fmt.Errorf("%w: threshold %q must be a float in (0,1]", ErrUnknownDriftPolicy, arg)
		}
		thr = v
	}
	switch name {
	case "", "none":
		if hasArg {
			return nil, fmt.Errorf("%w: policy none takes no threshold", ErrUnknownDriftPolicy)
		}
		return NoDrift{}, nil
	case "spawn":
		return SpawnOnDrift{Threshold: thr}, nil
	case "spawn+retire":
		return SpawnRetireOnDrift{SpawnOnDrift{Threshold: thr}}, nil
	}
	return nil, fmt.Errorf("%w: %q (have: %s)", ErrUnknownDriftPolicy, name, strings.Join(DriftPolicyNames(), ", "))
}

// driftState is the adapter's similarity-trajectory tracking, guarded by
// the adapter mutex like the rest of the books.
type driftState struct {
	ema     float64 // EMA of batch-vs-active-target similarity
	emaInit bool    // false until the first post-(re)spawn measurement
	folds   int64   // successful folds since the active target last changed
}

// observe folds one batch similarity into the trajectory and reports
// whether the policy wants a fresh target for this batch. On a spawn
// decision the trajectory resets: the EMA belonged to the target being left
// behind, and the new target starts measuring from its next batch.
func (d *driftState) observe(p DriftPolicy, sim float64) (spawn bool) {
	if d.emaInit && p.ShouldSpawn(d.ema, sim, d.folds) {
		d.ema, d.emaInit, d.folds = 0, false, 0
		return true
	}
	if !d.emaInit {
		d.ema, d.emaInit = sim, true
	} else {
		d.ema = driftAlpha*sim + (1-driftAlpha)*d.ema
	}
	return false
}

// ResetDrift clears the similarity trajectory and the folds-on-target
// counter — the serving layer calls it after a model rollback so the
// detector starts measuring the restored target fresh instead of comparing
// it against the abandoned trajectory. Cumulative spawn/retire counters are
// history and survive.
func (a *Adapter) ResetDrift() {
	a.mu.Lock()
	a.drift = driftState{}
	a.mu.Unlock()
}
