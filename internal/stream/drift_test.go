package stream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/model"
)

func TestParseDriftPolicy(t *testing.T) {
	tests := []struct {
		spec   string
		name   string
		retire bool
		ok     bool
	}{
		{"", "none", false, true},
		{"none", "none", false, true},
		{"spawn", "spawn", false, true},
		{"spawn:0.25", "spawn", false, true},
		{"spawn+retire", "spawn+retire", true, true},
		{"spawn+retire:0.05", "spawn+retire", true, true},
		{"nope", "", false, false},
		{"spawn:2", "", false, false},
		{"spawn:x", "", false, false},
		{"none:0.1", "", false, false},
	}
	for _, tt := range tests {
		p, err := ParseDriftPolicy(tt.spec)
		if !tt.ok {
			if !errors.Is(err, ErrUnknownDriftPolicy) {
				t.Errorf("spec %q: err = %v, want ErrUnknownDriftPolicy", tt.spec, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("spec %q: %v", tt.spec, err)
			continue
		}
		if p.Name() != tt.name || p.RetiresLRU() != tt.retire {
			t.Errorf("spec %q parsed to (%s, retire=%v), want (%s, retire=%v)",
				tt.spec, p.Name(), p.RetiresLRU(), tt.name, tt.retire)
		}
	}
	// A custom threshold must change the decision.
	loose, _ := ParseDriftPolicy("spawn:0.5")
	tight, _ := ParseDriftPolicy("spawn:0.01")
	if loose.ShouldSpawn(0.8, 0.7, 10) {
		t.Error("spawn:0.5 fired on a 0.1 similarity drop")
	}
	if !tight.ShouldSpawn(0.8, 0.7, 10) {
		t.Error("spawn:0.01 did not fire on a 0.1 similarity drop")
	}
}

func TestDriftStateObserve(t *testing.T) {
	p := SpawnOnDrift{} // defaults: threshold 0.1, min folds 2
	var d driftState
	if d.observe(p, 0.6) {
		t.Fatal("first observation spawned with an uninitialized EMA")
	}
	if !d.emaInit || d.ema != 0.6 {
		t.Fatalf("EMA after first observation = (%v, %v), want initialized to 0.6", d.ema, d.emaInit)
	}
	d.folds = 1 // below MinFolds: even a cliff must not spawn yet
	if d.observe(p, 0.1) {
		t.Fatal("spawned before MinFolds folds")
	}
	d = driftState{ema: 0.6, emaInit: true, folds: 5}
	if d.observe(p, 0.55) {
		t.Fatal("spawned on an in-threshold wobble")
	}
	wobbled := d.ema
	if wobbled >= 0.6 || wobbled <= 0.55 {
		t.Fatalf("EMA %v not between the old value and the new sample", wobbled)
	}
	if !d.observe(p, wobbled-0.2) {
		t.Fatal("did not spawn on a clear similarity cliff")
	}
	if d.emaInit || d.folds != 0 {
		t.Fatalf("trajectory not reset after spawn decision: %+v", d)
	}
}

// driftModel is a scripted Sim/Spawn pair: similarities come from a fixed
// per-batch schedule, and spawns are recorded.
type driftModel struct {
	mu      sync.Mutex
	sims    []float64
	next    int
	hasTgt  bool
	spawns  []int // MaxTargets value seen per spawn
	retires []bool
	live    int
}

func (m *driftModel) sim([]hdc.Vector) (float64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasTgt {
		return 0, false, nil
	}
	s := m.sims[min(m.next, len(m.sims)-1)]
	m.next++
	return s, true, nil
}

func (m *driftModel) spawn(maxTargets int, retire bool) (string, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spawns = append(m.spawns, maxTargets)
	m.retires = append(m.retires, retire)
	m.live++
	retired := ""
	if retire && m.live > maxTargets {
		m.live--
		retired = "lru"
	}
	return "t9", retired, nil
}

func (m *driftModel) fold([]hdc.Vector) (model.AdaptStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hasTgt = true
	return model.AdaptStats{}, nil
}

// TestWorkerSpawnsOnDrift drives the adapter worker over a scripted
// similarity cliff and checks the whole drift loop: EMA tracking, the spawn
// decision, MaxTargets/retire plumbed through to the SpawnFunc, the
// trajectory reset, and the cumulative counters.
func TestWorkerSpawnsOnDrift(t *testing.T) {
	dm := &driftModel{
		// Batch 1 has no target yet; batches 2-4 sit at 0.6; batch 5 is
		// the cliff; batches 6+ track the new target at 0.55.
		sims: []float64{0.6, 0.6, 0.6, 0.2, 0.55, 0.55},
	}
	a := New(Config{
		MaxBatch: 1, Policy: SpawnOnDrift{}, MaxTargets: 3,
		Sim: dm.sim, Spawn: dm.spawn,
	}, passthroughEncode, dm.fold)
	for i := range 7 {
		if _, err := a.Enqueue([][][]float64{fakeWindow(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.TargetsSpawned != 1 {
		t.Fatalf("TargetsSpawned = %d, want exactly 1 (stats: %+v)", st.TargetsSpawned, st)
	}
	if st.TargetsRetired != 0 {
		t.Fatalf("TargetsRetired = %d under a non-retiring policy", st.TargetsRetired)
	}
	if len(dm.spawns) != 1 || dm.spawns[0] != 3 || dm.retires[0] {
		t.Fatalf("SpawnFunc saw (maxTargets=%v, retire=%v), want (3, false)", dm.spawns, dm.retires)
	}
	if st.DriftPolicy != "spawn" {
		t.Fatalf("DriftPolicy = %q, want spawn", st.DriftPolicy)
	}
	// The trajectory restarted on the new target: the drifted batch plus
	// two follow-ups folded into it, and the EMA re-seeded from the
	// post-spawn similarities.
	if !st.SimilarityValid || st.SimilarityEMA < 0.5 {
		t.Fatalf("post-spawn EMA = (%v, valid=%v), want re-seeded near 0.55", st.SimilarityEMA, st.SimilarityValid)
	}
	if st.FoldsOnTarget != 3 {
		t.Fatalf("FoldsOnTarget = %d, want 3 post-spawn folds", st.FoldsOnTarget)
	}
	if st.WindowsFolded != 7 {
		t.Fatalf("WindowsFolded = %d, want all 7 (a spawn must not drop the drifted batch)", st.WindowsFolded)
	}
}

// TestWorkerRetiresPastMaxTargets pins the retiring policy: the SpawnFunc
// is asked to retire and a reported retirement is counted.
func TestWorkerRetiresPastMaxTargets(t *testing.T) {
	dm := &driftModel{
		live: 1, // the implicit first target
		sims: []float64{0.6, 0.6, 0.6, 0.2, 0.6, 0.6, 0.6, 0.2, 0.55},
	}
	a := New(Config{
		MaxBatch: 1, Policy: SpawnRetireOnDrift{}, MaxTargets: 2,
		Sim: dm.sim, Spawn: dm.spawn,
	}, passthroughEncode, dm.fold)
	for i := range 10 {
		if _, err := a.Enqueue([][][]float64{fakeWindow(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.TargetsSpawned != 2 {
		t.Fatalf("TargetsSpawned = %d, want 2 (stats: %+v)", st.TargetsSpawned, st)
	}
	if st.TargetsRetired != 1 {
		t.Fatalf("TargetsRetired = %d, want 1: the second spawn pushes past MaxTargets=2", st.TargetsRetired)
	}
	for i, r := range dm.retires {
		if !r {
			t.Fatalf("spawn %d was not asked to retire under spawn+retire", i)
		}
	}
}

// TestNonePolicyTracksButNeverSpawns pins that the default policy keeps the
// observability signal (EMA gauge) without ever opening a target.
func TestNonePolicyTracksButNeverSpawns(t *testing.T) {
	dm := &driftModel{sims: []float64{0.6, 0.6, 0.1, 0.1, 0.1}}
	a := New(Config{MaxBatch: 1, Sim: dm.sim, Spawn: dm.spawn}, passthroughEncode, dm.fold)
	for i := range 6 {
		if _, err := a.Enqueue([][][]float64{fakeWindow(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.TargetsSpawned != 0 || len(dm.spawns) != 0 {
		t.Fatalf("none policy spawned: %+v", st)
	}
	if st.DriftPolicy != "none" {
		t.Fatalf("DriftPolicy = %q, want none", st.DriftPolicy)
	}
	if !st.SimilarityValid {
		t.Fatal("none policy lost the similarity EMA gauge")
	}
}

// TestResetDriftClearsTrajectoryKeepsHistory pins the rollback contract on
// the adapter side: the EMA and folds-on-target reset, cumulative
// spawn/retire counters survive.
func TestResetDriftClearsTrajectoryKeepsHistory(t *testing.T) {
	dm := &driftModel{sims: []float64{0.6, 0.6, 0.6, 0.2, 0.55}}
	a := New(Config{
		MaxBatch: 1, Policy: SpawnOnDrift{}, Sim: dm.sim, Spawn: dm.spawn,
	}, passthroughEncode, dm.fold)
	for i := range 6 {
		if _, err := a.Enqueue([][][]float64{fakeWindow(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Close(ctx); err != nil {
		t.Fatal(err)
	}
	before := a.Stats()
	if before.TargetsSpawned != 1 || !before.SimilarityValid {
		t.Fatalf("fixture did not reach a spawned+tracking state: %+v", before)
	}
	a.ResetDrift()
	after := a.Stats()
	if after.SimilarityValid || after.SimilarityEMA != 0 || after.FoldsOnTarget != 0 {
		t.Fatalf("ResetDrift left trajectory state: %+v", after)
	}
	if after.TargetsSpawned != before.TargetsSpawned || after.WindowsFolded != before.WindowsFolded {
		t.Fatalf("ResetDrift clobbered cumulative history: %+v vs %+v", after, before)
	}
}
