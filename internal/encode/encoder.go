// Package encode maps multi-sensor time-series windows into binary
// hypervectors following the SMORE/DOMINO recipe: each (sensor, quantized
// value) pair is bound as sensorID XOR levelHV, sensor terms are
// majority-bundled into a per-timestep vector, consecutive timesteps form
// permutation-shifted n-grams, and the n-grams are bundled into the final
// window hypervector.
package encode

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/parallel"
)

// Config parameterizes an Encoder.
type Config struct {
	Dim     int     // hypervector dimension, positive multiple of 64
	Sensors int     // number of sensor channels
	Levels  int     // quantization levels for sensor values, >= 2
	NGram   int     // temporal n-gram length, >= 1
	Min     float64 // lower clamp of the quantization range
	Max     float64 // upper clamp of the quantization range
	Seed    uint64  // seed for the item memories (ID and level vectors)
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if err := hdc.CheckDim(c.Dim); err != nil {
		return err
	}
	if c.Sensors < 1 {
		return fmt.Errorf("encode: Sensors %d < 1", c.Sensors)
	}
	if c.Levels < 2 {
		return fmt.Errorf("encode: Levels %d < 2", c.Levels)
	}
	if c.Levels-1 > c.Dim/2 {
		return fmt.Errorf("encode: Levels %d needs at least %d dimensions to keep adjacent levels distinct", c.Levels, 2*(c.Levels-1))
	}
	if c.NGram < 1 {
		return fmt.Errorf("encode: NGram %d < 1", c.NGram)
	}
	if !(c.Max > c.Min) {
		return fmt.Errorf("encode: Max %v must exceed Min %v", c.Max, c.Min)
	}
	return nil
}

// Encoder holds the frozen item memories. It is safe for concurrent use
// once constructed, since Encode only reads the memories.
type Encoder struct {
	cfg       Config
	sensorIDs []hdc.Vector // one quasi-orthogonal ID per sensor
	levels    []hdc.Vector // correlated level vectors, similarity decays with distance

	// pairs caches every sensorID ⊗ level binding in one contiguous
	// row-major matrix (row s*Levels+l): the sensor/level space is finite,
	// so the per-sample inner loop of Encode is a row lookup instead of an
	// XOR pass over the whole vector.
	pairs *hdc.Matrix

	// scratch pools *Scratch values so Encode and EncodeBatch reuse
	// per-window working state instead of reallocating it; serving and
	// streaming traffic hit this steady-state path on every request.
	scratch sync.Pool
}

// New builds the encoder's item memories deterministically from cfg.Seed.
func New(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5eed))
	e := &Encoder{cfg: cfg}
	e.sensorIDs = make([]hdc.Vector, cfg.Sensors)
	for s := range e.sensorIDs {
		e.sensorIDs[s] = hdc.Random(rng, cfg.Dim)
	}
	// Level vectors: start from a random base and flip a disjoint random
	// slice of Dim/2 bits spread over the levels, so adjacent levels are
	// nearly identical and the extremes are quasi-orthogonal.
	e.levels = make([]hdc.Vector, cfg.Levels)
	e.levels[0] = hdc.Random(rng, cfg.Dim)
	perm := rng.Perm(cfg.Dim)[:cfg.Dim/2]
	per := len(perm) / (cfg.Levels - 1)
	for l := 1; l < cfg.Levels; l++ {
		v := e.levels[l-1].Clone()
		lo, hi := (l-1)*per, l*per
		if l == cfg.Levels-1 {
			hi = len(perm)
		}
		for _, bit := range perm[lo:hi] {
			v.FlipBit(bit)
		}
		e.levels[l] = v
	}
	e.pairs = hdc.NewMatrix(cfg.Sensors*cfg.Levels, cfg.Dim)
	for s := range cfg.Sensors {
		for l := range cfg.Levels {
			row := e.pairs.Row(s*cfg.Levels + l)
			e.sensorIDs[s].BindInto(e.levels[l], &row)
		}
	}
	return e, nil
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Quantize maps a sensor value to its level index, clamping to [Min, Max].
// NaN maps to level 0 so corrupt sensor readings stay in range instead of
// hitting the implementation-defined float-to-int conversion.
func (e *Encoder) Quantize(x float64) int {
	c := e.cfg
	if math.IsNaN(x) || x <= c.Min {
		return 0
	}
	if x >= c.Max {
		return c.Levels - 1
	}
	l := int((x - c.Min) / (c.Max - c.Min) * float64(c.Levels))
	if l > c.Levels-1 {
		l = c.Levels - 1
	}
	return l
}

// Scratch is the reusable working state of one Encode pass: the current
// step and gram vectors, the ring of shifted steps the sliding recurrence
// folds out, and the window accumulator. A Scratch is bound to the encoder
// configuration it was created from and is not safe for concurrent use;
// create one per goroutine with NewScratch, or let Encode/EncodeBatch pool
// them internally.
type Scratch struct {
	rows   []hdc.Vector // bound-pair rows selected by the current timestep
	step   hdc.Vector   // spatial bundle of the current timestep
	gram   hdc.Vector   // sliding n-gram of the last NGram steps
	tmp    hdc.Vector   // rotation target, swapped with gram
	ring   []hdc.Vector // P^(NGram-1)-shifted steps, indexed t mod NGram
	winAcc *hdc.Accumulator

	// stepAcc is the fallback spatial bundler for configurations with more
	// sensors than the fused register kernel can count.
	stepAcc *hdc.Accumulator
}

// NewScratch allocates encode working state sized for e's configuration.
func (e *Encoder) NewScratch() *Scratch {
	c := e.cfg
	sc := &Scratch{
		rows:   make([]hdc.Vector, c.Sensors),
		step:   hdc.New(c.Dim),
		gram:   hdc.New(c.Dim),
		tmp:    hdc.New(c.Dim),
		winAcc: hdc.NewAccumulator(c.Dim),
	}
	if c.NGram > 1 {
		sc.ring = make([]hdc.Vector, c.NGram)
		for i := range sc.ring {
			sc.ring[i] = hdc.New(c.Dim)
		}
	}
	if c.Sensors > hdc.BundleRowsMax {
		sc.stepAcc = hdc.NewAccumulator(c.Dim)
	}
	return sc
}

func (e *Encoder) getScratch() *Scratch {
	if sc, ok := e.scratch.Get().(*Scratch); ok {
		return sc
	}
	return e.NewScratch()
}

// Encode maps a window to a hypervector. window[t][s] is the value of
// sensor s at timestep t; every row must have exactly cfg.Sensors values
// and the window must hold at least NGram timesteps.
func (e *Encoder) Encode(window [][]float64) (hdc.Vector, error) {
	sc := e.getScratch()
	defer e.scratch.Put(sc)
	out := hdc.New(e.cfg.Dim)
	if err := e.EncodeInto(sc, window, &out); err != nil {
		return hdc.Vector{}, err
	}
	return out, nil
}

// EncodeInto encodes window into dst using sc's buffers; with a reused
// Scratch and a caller-owned dst the steady-state path allocates nothing.
//
// The temporal pass exploits that permutation is a rotation and bind is
// XOR, so rotation distributes over the n-gram product: with
// gram(t) = Π_k P^(n-1-k)(step[t+k]),
//
//	gram(t+1) = P( gram(t) ⊗ P^(n-1)(step[t]) ) ⊗ step[t+n]
//
// — fold out the leaving step (its P^(n-1) shift was stashed in the ring
// when it entered), rotate once, fold in the arriving step. Each position
// therefore costs O(1) vector ops regardless of NGram, instead of the
// NGram permute+bind passes of the direct product, and the bits are
// identical because every operation is exact.
//
//smore:hotpath
func (e *Encoder) EncodeInto(sc *Scratch, window [][]float64, dst *hdc.Vector) error {
	c := e.cfg
	if len(window) < c.NGram {
		return fmt.Errorf("encode: window of %d timesteps shorter than n-gram %d", len(window), c.NGram)
	}
	if dst.Dim() != c.Dim {
		return fmt.Errorf("encode: destination dimension %d, want %d", dst.Dim(), c.Dim)
	}
	n := c.NGram
	sc.winAcc.Reset()
	for t, row := range window {
		if len(row) != c.Sensors {
			return fmt.Errorf("encode: timestep %d has %d sensors, want %d", t, len(row), c.Sensors)
		}
		e.bundleStep(sc, row)
		if n == 1 {
			sc.winAcc.Add(sc.step, 1)
			continue
		}
		if t == 0 {
			sc.step.CopyInto(&sc.gram)
		} else {
			// Slide: drop the leaving step once the window is full, rotate
			// the partial gram, fold in the new step. Before the window
			// fills this same rotate-and-fold builds gram(0) incrementally.
			if t >= n {
				sc.gram.BindInto(sc.ring[t%n], &sc.gram)
			}
			sc.gram.PermuteInto(1, &sc.tmp)
			sc.gram, sc.tmp = sc.tmp, sc.gram
			sc.gram.BindInto(sc.step, &sc.gram)
		}
		if t >= n-1 {
			sc.winAcc.Add(sc.gram, 1)
		}
		if t+n < len(window) {
			// This step leaves the sliding gram at timestep t+n; stash its
			// P^(n-1) shift now so the removal there is a single XOR. The
			// slot it lands in is exactly the one the fold-out at t+n reads
			// first.
			sc.step.PermuteInto(n-1, &sc.ring[t%n])
		}
	}
	sc.winAcc.MajorityInto(dst)
	return nil
}

// bundleStep writes the spatial encoding of one timestep into sc.step: the
// majority bundle of the cached sensorID ⊗ level rows selected by the
// row's quantized values. Configurations within the fused kernel's lane
// budget never touch accumulator staging memory.
func (e *Encoder) bundleStep(sc *Scratch, row []float64) {
	c := e.cfg
	if sc.stepAcc == nil {
		for s, x := range row {
			sc.rows[s] = e.pairs.Row(s*c.Levels + e.Quantize(x))
		}
		hdc.BundleRowsInto(&sc.step, sc.rows...)
		return
	}
	sc.stepAcc.Reset()
	for s, x := range row {
		sc.stepAcc.Add(e.pairs.Row(s*c.Levels+e.Quantize(x)), 1)
	}
	sc.stepAcc.MajorityInto(&sc.step)
}

// EncodeBatch encodes windows concurrently on a pool of the given worker
// count (workers <= 0 means GOMAXPROCS). Each window is encoded with its own
// scratch state and written to its own output slot, so the result is
// byte-identical for every worker count. On error the lowest-index failure
// is returned and the partial results are discarded.
func (e *Encoder) EncodeBatch(windows [][][]float64, workers int) ([]hdc.Vector, error) {
	out := make([]hdc.Vector, len(windows))
	err := parallel.NewPool(workers).ForEachErr(len(windows), func(i int) error {
		hv, err := e.Encode(windows[i])
		if err != nil {
			return fmt.Errorf("window %d: %w", i, err)
		}
		out[i] = hv
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MustEncode is Encode for windows known to be well-formed; it panics on
// error. Intended for tests and benchmarks.
func (e *Encoder) MustEncode(window [][]float64) hdc.Vector {
	v, err := e.Encode(window)
	if err != nil {
		panic(err)
	}
	return v
}
