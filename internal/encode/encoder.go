// Package encode maps multi-sensor time-series windows into binary
// hypervectors following the SMORE/DOMINO recipe: each (sensor, quantized
// value) pair is bound as sensorID XOR levelHV, sensor terms are
// majority-bundled into a per-timestep vector, consecutive timesteps form
// permutation-shifted n-grams, and the n-grams are bundled into the final
// window hypervector.
package encode

import (
	"fmt"
	"math"
	"math/rand/v2"

	"go-arxiv/smore/internal/hdc"
	"go-arxiv/smore/internal/parallel"
)

// Config parameterizes an Encoder.
type Config struct {
	Dim     int     // hypervector dimension, positive multiple of 64
	Sensors int     // number of sensor channels
	Levels  int     // quantization levels for sensor values, >= 2
	NGram   int     // temporal n-gram length, >= 1
	Min     float64 // lower clamp of the quantization range
	Max     float64 // upper clamp of the quantization range
	Seed    uint64  // seed for the item memories (ID and level vectors)
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if err := hdc.CheckDim(c.Dim); err != nil {
		return err
	}
	if c.Sensors < 1 {
		return fmt.Errorf("encode: Sensors %d < 1", c.Sensors)
	}
	if c.Levels < 2 {
		return fmt.Errorf("encode: Levels %d < 2", c.Levels)
	}
	if c.Levels-1 > c.Dim/2 {
		return fmt.Errorf("encode: Levels %d needs at least %d dimensions to keep adjacent levels distinct", c.Levels, 2*(c.Levels-1))
	}
	if c.NGram < 1 {
		return fmt.Errorf("encode: NGram %d < 1", c.NGram)
	}
	if !(c.Max > c.Min) {
		return fmt.Errorf("encode: Max %v must exceed Min %v", c.Max, c.Min)
	}
	return nil
}

// Encoder holds the frozen item memories. It is safe for concurrent use
// once constructed, since Encode only reads the memories.
type Encoder struct {
	cfg       Config
	sensorIDs []hdc.Vector // one quasi-orthogonal ID per sensor
	levels    []hdc.Vector // correlated level vectors, similarity decays with distance
}

// New builds the encoder's item memories deterministically from cfg.Seed.
func New(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5eed))
	e := &Encoder{cfg: cfg}
	e.sensorIDs = make([]hdc.Vector, cfg.Sensors)
	for s := range e.sensorIDs {
		e.sensorIDs[s] = hdc.Random(rng, cfg.Dim)
	}
	// Level vectors: start from a random base and flip a disjoint random
	// slice of Dim/2 bits spread over the levels, so adjacent levels are
	// nearly identical and the extremes are quasi-orthogonal.
	e.levels = make([]hdc.Vector, cfg.Levels)
	e.levels[0] = hdc.Random(rng, cfg.Dim)
	perm := rng.Perm(cfg.Dim)[:cfg.Dim/2]
	per := len(perm) / (cfg.Levels - 1)
	for l := 1; l < cfg.Levels; l++ {
		v := e.levels[l-1].Clone()
		lo, hi := (l-1)*per, l*per
		if l == cfg.Levels-1 {
			hi = len(perm)
		}
		for _, bit := range perm[lo:hi] {
			v.FlipBit(bit)
		}
		e.levels[l] = v
	}
	return e, nil
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Quantize maps a sensor value to its level index, clamping to [Min, Max].
// NaN maps to level 0 so corrupt sensor readings stay in range instead of
// hitting the implementation-defined float-to-int conversion.
func (e *Encoder) Quantize(x float64) int {
	c := e.cfg
	if math.IsNaN(x) || x <= c.Min {
		return 0
	}
	if x >= c.Max {
		return c.Levels - 1
	}
	l := int((x - c.Min) / (c.Max - c.Min) * float64(c.Levels))
	if l > c.Levels-1 {
		l = c.Levels - 1
	}
	return l
}

// Encode maps a window to a hypervector. window[t][s] is the value of
// sensor s at timestep t; every row must have exactly cfg.Sensors values
// and the window must hold at least NGram timesteps.
func (e *Encoder) Encode(window [][]float64) (hdc.Vector, error) {
	c := e.cfg
	if len(window) < c.NGram {
		return hdc.Vector{}, fmt.Errorf("encode: window of %d timesteps shorter than n-gram %d", len(window), c.NGram)
	}
	// Per-timestep spatial encoding: bundle of sensorID ⊗ level terms.
	steps := make([]hdc.Vector, len(window))
	bound := hdc.New(c.Dim)
	stepAcc := hdc.NewAccumulator(c.Dim)
	for t, row := range window {
		if len(row) != c.Sensors {
			return hdc.Vector{}, fmt.Errorf("encode: timestep %d has %d sensors, want %d", t, len(row), c.Sensors)
		}
		stepAcc.Reset()
		for s, x := range row {
			e.sensorIDs[s].BindInto(e.levels[e.Quantize(x)], &bound)
			stepAcc.Add(bound, 1)
		}
		steps[t] = stepAcc.Majority()
	}
	// Temporal n-grams: gram(t) = Π_k permute(steps[t+k], NGram-1-k),
	// bundled over all window positions.
	winAcc := hdc.NewAccumulator(c.Dim)
	gram := hdc.New(c.Dim)
	shifted := hdc.New(c.Dim)
	for t := 0; t+c.NGram <= len(steps); t++ {
		steps[t].PermuteInto(c.NGram-1, &gram)
		for k := 1; k < c.NGram; k++ {
			steps[t+k].PermuteInto(c.NGram-1-k, &shifted)
			gram.BindInto(shifted, &gram)
		}
		winAcc.Add(gram, 1)
	}
	return winAcc.Majority(), nil
}

// EncodeBatch encodes windows concurrently on a pool of the given worker
// count (workers <= 0 means GOMAXPROCS). Each window is encoded with its own
// scratch state and written to its own output slot, so the result is
// byte-identical for every worker count. On error the lowest-index failure
// is returned and the partial results are discarded.
func (e *Encoder) EncodeBatch(windows [][][]float64, workers int) ([]hdc.Vector, error) {
	out := make([]hdc.Vector, len(windows))
	err := parallel.NewPool(workers).ForEachErr(len(windows), func(i int) error {
		hv, err := e.Encode(windows[i])
		if err != nil {
			return fmt.Errorf("window %d: %w", i, err)
		}
		out[i] = hv
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MustEncode is Encode for windows known to be well-formed; it panics on
// error. Intended for tests and benchmarks.
func (e *Encoder) MustEncode(window [][]float64) hdc.Vector {
	v, err := e.Encode(window)
	if err != nil {
		panic(err)
	}
	return v
}
