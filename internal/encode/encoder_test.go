package encode

import (
	"bytes"
	"encoding/hex"
	"flag"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testConfig() Config {
	return Config{Dim: 512, Sensors: 3, Levels: 8, NGram: 3, Min: -2, Max: 2, Seed: 99}
}

// testWindow returns a deterministic 16-timestep, 3-sensor window.
func testWindow() [][]float64 {
	w := make([][]float64, 16)
	for t := range w {
		x := float64(t) / 16
		w[t] = []float64{
			math.Sin(2 * math.Pi * x),
			math.Cos(4 * math.Pi * x),
			2*x - 1,
		}
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"bad dim", func(c *Config) { c.Dim = 100 }, false},
		{"no sensors", func(c *Config) { c.Sensors = 0 }, false},
		{"one level", func(c *Config) { c.Levels = 1 }, false},
		{"zero ngram", func(c *Config) { c.NGram = 0 }, false},
		{"empty range", func(c *Config) { c.Min, c.Max = 1, 1 }, false},
		{"inverted range", func(c *Config) { c.Min, c.Max = 2, -2 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestQuantize(t *testing.T) {
	enc, err := New(testConfig()) // Min -2, Max 2, 8 levels
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want int
	}{
		{-10, 0}, {-2, 0}, {-1.99, 0},
		{-0.01, 3}, {0, 4}, {1.99, 7}, {2, 7}, {10, 7},
	}
	for _, tt := range tests {
		if got := enc.Quantize(tt.x); got != tt.want {
			t.Errorf("Quantize(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestLevelSimilarityDecays(t *testing.T) {
	enc, err := New(Config{Dim: 4096, Sensors: 1, Levels: 8, NGram: 1, Min: 0, Max: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Similarity to level 0 must strictly decrease as the level index
	// grows, and the extremes must be quasi-orthogonal.
	prev := 1.1
	for l := range enc.levels {
		sim := enc.levels[0].Cosine(enc.levels[l])
		if sim >= prev {
			t.Fatalf("level %d similarity %.3f did not decrease (prev %.3f)", l, sim, prev)
		}
		prev = sim
	}
	if end := enc.levels[0].Cosine(enc.levels[len(enc.levels)-1]); math.Abs(end) > 0.1 {
		t.Fatalf("extreme levels have similarity %.3f, want near 0", end)
	}
}

func TestSensorIDsQuasiOrthogonal(t *testing.T) {
	enc, err := New(Config{Dim: 4096, Sensors: 6, Levels: 4, NGram: 1, Min: 0, Max: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc.sensorIDs {
		for j := i + 1; j < len(enc.sensorIDs); j++ {
			if sim := enc.sensorIDs[i].Cosine(enc.sensorIDs[j]); math.Abs(sim) > 0.1 {
				t.Fatalf("sensor IDs %d and %d have similarity %.3f", i, j, sim)
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.MustEncode(testWindow()).Equal(b.MustEncode(testWindow())) {
		t.Fatal("same seed and window produced different hypervectors")
	}
	cfg := testConfig()
	cfg.Seed = 100
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MustEncode(testWindow()).Equal(c.MustEncode(testWindow())) {
		t.Fatal("different seeds produced identical hypervectors")
	}
}

func TestEncodeErrors(t *testing.T) {
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode([][]float64{{0, 0, 0}}); err == nil {
		t.Error("accepted a window shorter than the n-gram")
	}
	bad := testWindow()
	bad[5] = []float64{1, 2}
	if _, err := enc.Encode(bad); err == nil {
		t.Error("accepted a timestep with the wrong sensor count")
	}
}

func TestEncodeSimilarWindowsSimilarHVs(t *testing.T) {
	// Encoding must be locally smooth: a lightly perturbed window stays
	// far closer to the original than an unrelated window does.
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := enc.MustEncode(testWindow())
	perturbed := testWindow()
	rng := rand.New(rand.NewPCG(5, 6))
	for t := range perturbed {
		for s := range perturbed[t] {
			perturbed[t][s] += 0.02 * rng.NormFloat64()
		}
	}
	other := testWindow()
	for t := range other {
		for s := range other[t] {
			other[t][s] = 2 * rng.Float64() * math.Cos(float64(3*t+s))
		}
	}
	simNear := base.Cosine(enc.MustEncode(perturbed))
	simFar := base.Cosine(enc.MustEncode(other))
	if simNear < simFar+0.2 {
		t.Fatalf("perturbed similarity %.3f not clearly above unrelated %.3f", simNear, simFar)
	}
}

// TestEncodeGolden pins the exact encoder output for a fixed seed and
// window, guarding the whole encode path (item memories, quantization,
// binding, permutation, bundling) against silent behavioral drift.
// Regenerate deliberately with: go test ./internal/encode -run Golden -update
func TestEncodeGolden(t *testing.T) {
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := enc.MustEncode(testWindow()).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(buf)
	golden := filepath.Join("testdata", "encode_golden.hex")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Errorf("encoder output drifted from golden file; if intentional, rerun with -update\n got: %s…\nwant: %s…",
			got[:64], strings.TrimSpace(string(want))[:64])
	}
}

// TestEncodeBatchDeterministicAcrossWorkers is the batch-API determinism
// contract: EncodeBatch must produce byte-identical hypervectors at worker
// counts 1 and N. Run under -race in CI.
func TestEncodeBatchDeterministicAcrossWorkers(t *testing.T) {
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 12))
	windows := make([][][]float64, 37)
	for i := range windows {
		w := make([][]float64, 8+rng.IntN(8))
		for t := range w {
			row := make([]float64, 3)
			for s := range row {
				row[s] = 4*rng.Float64() - 2
			}
			w[t] = row
		}
		windows[i] = w
	}
	ref, err := enc.EncodeBatch(windows, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8, 64} {
		got, err := enc.EncodeBatch(windows, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			refBuf, err1 := ref[i].MarshalBinary()
			gotBuf, err2 := got[i].MarshalBinary()
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !bytes.Equal(refBuf, gotBuf) {
				t.Fatalf("workers=%d: window %d not byte-identical to workers=1", workers, i)
			}
		}
	}
}

func TestEncodeBatchError(t *testing.T) {
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	windows := [][][]float64{testWindow(), {{0, 0, 0}}, {{1, 2}}}
	if _, err := enc.EncodeBatch(windows, 4); err == nil || !strings.Contains(err.Error(), "window 1") {
		t.Fatalf("EncodeBatch error = %v, want lowest-index failure (window 1)", err)
	}
	out, err := enc.EncodeBatch(nil, 4)
	if err != nil || len(out) != 0 {
		t.Fatalf("EncodeBatch(nil) = %v, %v", out, err)
	}
}

func BenchmarkEncode(b *testing.B) {
	enc, err := New(Config{Dim: 4096, Sensors: 4, Levels: 32, NGram: 3, Min: -3, Max: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	window := make([][]float64, 64)
	rng := rand.New(rand.NewPCG(2, 3))
	for t := range window {
		row := make([]float64, 4)
		for s := range row {
			row[s] = 3 * (2*rng.Float64() - 1)
		}
		window[t] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		enc.MustEncode(window)
	}
}

func BenchmarkEncodeBatch(b *testing.B) {
	enc, err := New(Config{Dim: 4096, Sensors: 4, Levels: 32, NGram: 3, Min: -3, Max: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 3))
	windows := make([][][]float64, 64)
	for i := range windows {
		w := make([][]float64, 64)
		for t := range w {
			row := make([]float64, 4)
			for s := range row {
				row[s] = 3 * (2*rng.Float64() - 1)
			}
			w[t] = row
		}
		windows[i] = w
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := enc.EncodeBatch(windows, 0); err != nil {
			b.Fatal(err)
		}
	}
}
