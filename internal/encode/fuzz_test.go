package encode

import (
	"math"
	"testing"
)

// FuzzEncodeWindow feeds arbitrary sensor readings (including NaN, ±Inf,
// and out-of-range values) through the encoder and checks the invariants
// Encode promises for any well-shaped window: no panics, a vector of the
// configured dimension, determinism across repeated calls, and quantization
// staying inside [0, Levels).
func FuzzEncodeWindow(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(16), []byte{0xff, 0x00, 0x80, 0x7f})
	f.Fuzz(func(t *testing.T, steps uint8, raw []byte) {
		cfg := Config{Dim: 128, Sensors: 2, Levels: 8, NGram: 2, Min: -2, Max: 2, Seed: 5}
		enc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nSteps := int(steps)%30 + cfg.NGram // always long enough to encode
		window := make([][]float64, nSteps)
		k := 0
		next := func() float64 {
			if len(raw) == 0 {
				return 0
			}
			b := raw[k%len(raw)]
			k++
			switch b {
			case 0xfe:
				return math.NaN()
			case 0xfd:
				return math.Inf(1)
			case 0xfc:
				return math.Inf(-1)
			}
			return (float64(b) - 127.5) / 16 // spans well past [Min, Max]
		}
		for t := range window {
			row := make([]float64, cfg.Sensors)
			for s := range row {
				row[s] = next()
				if l := enc.Quantize(row[s]); l < 0 || l >= cfg.Levels {
					panic("quantize out of range") // caught as fuzz failure
				}
			}
			window[t] = row
		}
		a, err := enc.Encode(window)
		if err != nil {
			t.Fatalf("Encode rejected a well-shaped window: %v", err)
		}
		if a.Dim() != cfg.Dim {
			t.Fatalf("Encode returned dim %d, want %d", a.Dim(), cfg.Dim)
		}
		b, err := enc.Encode(window)
		if err != nil || !a.Equal(b) {
			t.Fatalf("Encode is not deterministic: %v", err)
		}
	})
}
