package encode

import (
	"math/rand/v2"
	"testing"

	"go-arxiv/smore/internal/hdc"
)

// encodeReference is the pre-recurrence encoder: materialize every
// timestep bundle, then build each n-gram as the full permute-and-bind
// product. It is the brute-force oracle the sliding fast path must match
// bit for bit.
func encodeReference(e *Encoder, window [][]float64) hdc.Vector {
	c := e.cfg
	steps := make([]hdc.Vector, len(window))
	bound := hdc.New(c.Dim)
	stepAcc := hdc.NewAccumulator(c.Dim)
	for t, row := range window {
		stepAcc.Reset()
		for s, x := range row {
			e.sensorIDs[s].BindInto(e.levels[e.Quantize(x)], &bound)
			stepAcc.Add(bound, 1)
		}
		steps[t] = stepAcc.Majority()
	}
	winAcc := hdc.NewAccumulator(c.Dim)
	gram := hdc.New(c.Dim)
	shifted := hdc.New(c.Dim)
	for t := 0; t+c.NGram <= len(steps); t++ {
		steps[t].PermuteInto(c.NGram-1, &gram)
		for k := 1; k < c.NGram; k++ {
			steps[t+k].PermuteInto(c.NGram-1-k, &shifted)
			gram.BindInto(shifted, &gram)
		}
		winAcc.Add(gram, 1)
	}
	return winAcc.Majority()
}

func randomWindow(rng *rand.Rand, timesteps, sensors int) [][]float64 {
	w := make([][]float64, timesteps)
	for t := range w {
		row := make([]float64, sensors)
		for s := range row {
			row[s] = 6*rng.Float64() - 3
		}
		w[t] = row
	}
	return w
}

// TestEncodeMatchesBruteForceOracle sweeps n-gram lengths, window lengths
// (including windows exactly one n-gram long), and sensor counts on both
// sides of the fused-bundle lane budget, asserting the sliding recurrence
// plus bound-pair cache is byte-identical to the direct product.
func TestEncodeMatchesBruteForceOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for _, tc := range []struct {
		ngram, timesteps, sensors int
	}{
		{1, 1, 3}, {1, 9, 3},
		{2, 2, 3}, {2, 17, 4},
		{3, 3, 4}, {3, 16, 4}, {3, 64, 4},
		{5, 5, 2}, {5, 23, 2},
		{7, 40, 1},
		{3, 12, hdc.BundleRowsMax},     // largest fused bundle
		{3, 12, hdc.BundleRowsMax + 2}, // accumulator fallback path
	} {
		cfg := Config{Dim: 512, Sensors: tc.sensors, Levels: 8, NGram: tc.ngram, Min: -3, Max: 3, Seed: 77}
		enc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		window := randomWindow(rng, tc.timesteps, tc.sensors)
		got := enc.MustEncode(window)
		want := encodeReference(enc, window)
		if !got.Equal(want) {
			t.Fatalf("ngram=%d timesteps=%d sensors=%d: fast path diverged from brute-force oracle",
				tc.ngram, tc.timesteps, tc.sensors)
		}
	}
}

// TestBoundPairCache pins the precomputed pairs matrix to the binding it
// replaces.
func TestBoundPairCache(t *testing.T) {
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := enc.cfg
	for s := range c.Sensors {
		for l := range c.Levels {
			if !enc.pairs.Row(s*c.Levels + l).Equal(enc.sensorIDs[s].Bind(enc.levels[l])) {
				t.Fatalf("cached pair (sensor %d, level %d) != sensorID ⊗ level", s, l)
			}
		}
	}
}

// TestEncodeIntoZeroAllocs pins the scratch fast path at zero allocations
// per window, so the serving hot path cannot silently regress back to
// per-call state.
func TestEncodeIntoZeroAllocs(t *testing.T) {
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := enc.NewScratch()
	window := testWindow()
	dst := hdc.New(enc.cfg.Dim)
	if err := enc.EncodeInto(sc, window, &dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := enc.EncodeInto(sc, window, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestEncodeIntoErrors(t *testing.T) {
	enc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := enc.NewScratch()
	short := hdc.New(64)
	if err := enc.EncodeInto(sc, testWindow(), &short); err == nil {
		t.Error("accepted a destination with the wrong dimension")
	}
	dst := hdc.New(enc.cfg.Dim)
	if err := enc.EncodeInto(sc, [][]float64{{0, 0, 0}}, &dst); err == nil {
		t.Error("accepted a window shorter than the n-gram")
	}
}

// BenchmarkEncodeScratch is the zero-allocation steady-state encode path
// the serving and streaming layers run per window.
func BenchmarkEncodeScratch(b *testing.B) {
	enc, err := New(Config{Dim: 4096, Sensors: 4, Levels: 32, NGram: 3, Min: -3, Max: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 3))
	window := randomWindow(rng, 64, 4)
	sc := enc.NewScratch()
	dst := hdc.New(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if err := enc.EncodeInto(sc, window, &dst); err != nil {
			b.Fatal(err)
		}
	}
}
