// Package unit implements the `go vet -vettool` command-line protocol for
// the smorevet analyzers, mirroring x/tools' unitchecker on the standard
// library alone:
//
//	-V=full    print an executable fingerprint for the build cache
//	-flags     describe supported flags as JSON
//	unit.cfg   analyze the single compilation unit the go command describes
//
// The go command hands each package a JSON config naming its (already
// parsed-and-compiled) sources plus gc export-data files for every import,
// so analysis is fully modular and needs no network, GOPATH, or go/packages.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"go-arxiv/smore/internal/lint/analysis"
)

// Config is the JSON compilation-unit description written by the go
// command for a -vettool (the subset of fields smorevet consumes).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> gc export data file
	Standard                  map[string]bool
	VetxOnly                  bool   // facts-only run for a dependency
	VetxOutput                string // where to write the (empty) facts file
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/smorevet.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		name := a.Name
		enabled[name] = flag.Bool(name, false, "enable only "+name+" analysis")
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s [-<analyzer>] packages\n", progname)
		os.Exit(1)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	// Explicitly naming analyzers on the go vet command line narrows the
	// run; by default all of them run.
	anySelected := false
	for _, on := range enabled {
		anySelected = anySelected || *on
	}
	if anySelected {
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if args[0] == "help" {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("invoke via go vet -vettool=%s; direct invocation takes a single .cfg file", progname)
	}
	Run(args[0], analyzers)
}

// Run analyzes the unit described by configFile and exits: 0 on a clean
// run, 1 when any diagnostic was reported.
func Run(configFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	// smorevet defines no analysis facts, but go vet expects every unit to
	// leave a facts file for its dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	diags, err := run(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the parse/type error; stay quiet.
			os.Exit(0)
		}
		log.Fatal(err)
	}
	exit := 0
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		exit = 1
	}
	os.Exit(exit)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func run(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path (post ImportMap resolution).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring, etc
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	return diags, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full fingerprint protocol go vet uses for
// build caching: hash the tool binary so edits invalidate cached results.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
