// Fixture for the hotpath analyzer: annotated roots, transitive callees,
// cold-guard exemptions, and the allocation/determinism bans.
package hot

import (
	"fmt"
	"math/rand"
	"time"
)

//smore:hotpath
func ScoreInto(out []float64, q []uint64) {
	if len(q) == 0 {
		panic(fmt.Sprintf("empty query of %d words", len(q))) // cold guard: allowed
	}
	_ = fmt.Sprintf("scoring %d", len(q)) // want `fmt\.Sprintf in hot path \(ScoreInto is //smore:hotpath\)`
	_ = time.Now()                        // want `time\.Now in hot path`
	_ = rand.Int()                        // want `math/rand\.Int in hot path`
	helper(out)
}

func helper(out []float64) {
	counts := map[int]int{}
	for k := range counts { // want `map iteration in hot path \(helper is called from //smore:hotpath ScoreInto\)`
		_ = k
	}
	fresh := make([]float64, 0, 8)
	fresh = append(fresh, 1) // want `append to freshly-allocated slice fresh in hot path`
	_ = fresh
	box(len(out)) // want `int value boxed into .* in hot path`
}

func box(v any) { _ = v }

//smore:hotpath
func CleanInto(dst, src []int) (int, error) {
	if len(dst) != len(src) {
		return 0, fmt.Errorf("size mismatch: %d vs %d", len(dst), len(src)) // cold guard + Errorf: allowed
	}
	n := copy(dst, src)
	dst = append(dst, n) // dst is caller-provided, not fresh: allowed
	_ = dst
	return n, nil
}

// notHot is neither annotated nor called from hot code; everything here is
// legal.
func notHot() string {
	_ = time.Now()
	return fmt.Sprintf("cold %d", rand.Intn(4))
}
