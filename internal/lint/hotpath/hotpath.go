// Package hotpath enforces the zero-allocation serve-path contract
// statically: functions annotated //smore:hotpath — and every same-package
// function they (transitively) call from hot code — must not format with
// fmt's print family, read the clock, use the global math/rand state,
// iterate a map, append to a freshly-allocated slice, or box non-pointer
// values into interfaces. It is the static complement to the cmd/benchjson
// zero-alloc benchmark gate: the gate proves the current code allocates
// nothing, this analyzer points at the exact expression when a change would.
//
// Cold guards are exempt: an if-body whose last statement is a panic or a
// return (dimension-mismatch panics, error returns) may format freely —
// that code never runs on the hot path. Cross-package callees are not
// traced; annotate them directly (the seed set already annotates the hdc
// kernels that encode/model call into).
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"go-arxiv/smore/internal/lint/analysis"
	"go-arxiv/smore/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid fmt printing, time.Now, global math/rand, map iteration, " +
		"fresh-slice append, and interface boxing in //smore:hotpath functions " +
		"and their intra-package callees",
	Run: run,
}

// printFamily is fmt's allocating formatter surface. fmt.Errorf is absent
// on purpose: error construction lives in cold guards, which the
// cold-branch rule already exempts, and wrapping errors is how the repo
// reports dimension mismatches.
var printFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Append": true, "Appendf": true, "Appendln": true,
}

// randConstructors are math/rand(/v2) functions that build a private
// generator — fine to call at setup time from hot-adjacent init code; it is
// the implicitly-locked global state that is banned.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) (any, error) {
	sup := lintutil.NewSuppressor(pass.Fset, pass.Files)

	// Index every function declared in this package and collect the
	// //smore:hotpath roots.
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fn
			if lintutil.HasAnnotation(fn, lintutil.MarkerHotpath) {
				roots = append(roots, obj)
			}
		}
	}

	// BFS the intra-package call graph from the roots, following only calls
	// that appear in hot (non-cold-guard) code. rootName records which
	// annotated root made each function hot, for diagnostics.
	rootName := map[*types.Func]string{}
	queue := []*types.Func{}
	for _, r := range roots {
		rootName[r] = r.Name()
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fn := decls[cur]
		cold := coldBlocks(fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if blk, ok := n.(*ast.BlockStmt); ok && cold[blk] {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintutil.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := rootName[callee]; seen {
				return true
			}
			if _, declared := decls[callee]; !declared {
				return true
			}
			rootName[callee] = rootName[cur]
			queue = append(queue, callee)
			return true
		})
	}

	for obj, root := range rootName {
		why := obj.Name() + " is //smore:hotpath"
		if root != obj.Name() {
			why = fmt.Sprintf("%s is called from //smore:hotpath %s", obj.Name(), root)
		}
		checkFunc(pass, sup, decls[obj], why)
	}
	return nil, nil
}

// coldBlocks returns the set of if-bodies that are terminating guards
// (panic or return) — exempt from hot-path rules.
func coldBlocks(fn *ast.FuncDecl) map[*ast.BlockStmt]bool {
	cold := map[*ast.BlockStmt]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && lintutil.IsColdBranch(ifs.Body) {
			cold[ifs.Body] = true
		}
		return true
	})
	return cold
}

func checkFunc(pass *analysis.Pass, sup *lintutil.Suppressor, fn *ast.FuncDecl, why string) {
	info := pass.TypesInfo
	cold := coldBlocks(fn)
	fresh := freshSlices(info, fn, cold)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if blk, ok := n.(*ast.BlockStmt); ok && cold[blk] {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					lintutil.Reportf(pass, sup, n.Pos(),
						"map iteration in hot path (%s): range order is nondeterministic; use a slice or sorted keys", why)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, sup, n, why, fresh)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, sup *lintutil.Suppressor, call *ast.CallExpr, why string, fresh map[types.Object]bool) {
	info := pass.TypesInfo

	// Builtins: only append is interesting.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := info.Uses[base]; obj != nil && fresh[obj] {
					lintutil.Reportf(pass, sup, call.Pos(),
						"append to freshly-allocated slice %s in hot path (%s): allocates per call; reuse a caller-provided or pooled scratch buffer",
						base.Name, why)
				}
			}
			return
		}
	}

	// Conversions to interface types box their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			reportBoxed(pass, sup, call.Args[0], tv.Type, why)
		}
		return
	}

	f := lintutil.CalleeFunc(info, call)
	if f != nil {
		switch pkg := lintutil.FuncPkgPath(f); {
		case pkg == "fmt" && printFamily[f.Name()]:
			lintutil.Reportf(pass, sup, call.Pos(),
				"fmt.%s in hot path (%s): formatting allocates; keep it in cold guards or drop it", f.Name(), why)
			return
		case pkg == "time" && f.Name() == "Now" && lintutil.ReceiverNamed(f) == nil:
			lintutil.Reportf(pass, sup, call.Pos(),
				"time.Now in hot path (%s): per-call clock reads stall the serve path; hoist timing to the caller", why)
			return
		case (pkg == "math/rand" || pkg == "math/rand/v2") &&
			lintutil.ReceiverNamed(f) == nil && !randConstructors[f.Name()]:
			lintutil.Reportf(pass, sup, call.Pos(),
				"%s.%s in hot path (%s): the global generator takes a lock and breaks replayable determinism; use a seeded local source", pkg, f.Name(), why)
			return
		}
	}

	// Implicit boxing: concrete non-pointer values passed to interface
	// parameters allocate. Builtins (panic, copy, delete, ...) are exempt —
	// their "parameters" are compiler intrinsics, not boxing sites we police.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			reportBoxed(pass, sup, arg, pt, why)
		}
	}
}

// reportBoxed flags arg if converting it to iface heap-boxes a value.
func reportBoxed(pass *analysis.Pass, sup *lintutil.Suppressor, arg ast.Expr, iface types.Type, why string) {
	info := pass.TypesInfo
	tv, ok := info.Types[arg]
	if !ok || tv.IsNil() || tv.Type == nil {
		return
	}
	at := types.Default(tv.Type)
	if types.IsInterface(at) || lintutil.IsPointerShaped(at) {
		return
	}
	if _, isParam := types.Unalias(at).(*types.TypeParam); isParam {
		return
	}
	lintutil.Reportf(pass, sup, arg.Pos(),
		"%s value boxed into %s in hot path (%s): interface conversion allocates; pass a pointer or a concrete type",
		types.TypeString(at, types.RelativeTo(pass.Pkg)),
		types.TypeString(iface, types.RelativeTo(pass.Pkg)), why)
}

// freshSlices collects local slice variables whose declaration allocates —
// `s := make([]T, ...)`, `s := []T{...}`, `var s []T` — outside cold
// guards. Appending to one of these in hot code is a per-call allocation;
// appending to a parameter or struct-field scratch buffer is the sanctioned
// pattern and stays legal.
func freshSlices(info *types.Info, fn *ast.FuncDecl, cold map[*ast.BlockStmt]bool) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				fresh[obj] = true
			}
		}
	}
	allocates := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(e.Fun).(*ast.Ident)
			if !ok {
				return false
			}
			_, isBuiltin := info.Uses[id].(*types.Builtin)
			return isBuiltin && id.Name == "make"
		case *ast.CompositeLit:
			return true
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if blk, ok := n.(*ast.BlockStmt); ok && cold[blk] {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if allocates(n.Rhs[i]) {
					mark(id)
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if len(vs.Values) == 0 || (i < len(vs.Values) && allocates(vs.Values[i])) {
						mark(id)
					}
				}
			}
		}
		return true
	})
	return fresh
}
