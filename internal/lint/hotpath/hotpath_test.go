package hotpath_test

import (
	"testing"

	"go-arxiv/smore/internal/lint/analysistest"
	"go-arxiv/smore/internal/lint/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "hot")
}
