// Package load type-checks Go packages from source without the network or
// golang.org/x/tools: it shells out to `go list -export -deps -json`, which
// compiles every dependency into the build cache and reports the gc
// export-data file for each, then parses the target packages and checks
// them with an importer that reads those export files. This is the same
// modular-analysis shape `go vet` drives through the vettool protocol; here
// it powers the in-process test drivers (self_test, analysistest).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"go-arxiv/smore/internal/lint/analysis"
)

// Package is one source-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output load consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads, parses, and type-checks the packages matching the go
// list patterns, rooted at dir. Imports — including in-module siblings —
// resolve through build-cache export data, so the loaded set is exactly the
// matched packages, each checked from source.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	byPath, targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, byPath)

	var out []*Package
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		tc := &types.Config{Importer: imp, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
		pkg, err := tc.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// ExportData maps each listed import path (plus transitive deps) to its gc
// export-data file, compiling into the build cache as needed. analysistest
// uses it to resolve fixtures' std-library imports offline.
func ExportData(dir string, paths ...string) (map[string]string, error) {
	byPath, _, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	files := make(map[string]string, len(byPath))
	for p, lp := range byPath {
		if lp.Export != "" {
			files[p] = lp.Export
		}
	}
	return files, nil
}

func goList(dir string, patterns []string) (byPath map[string]*listPkg, targets []*listPkg, err error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	byPath = map[string]*listPkg{}
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		byPath[lp.ImportPath] = lp
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	return byPath, targets, nil
}

// exportImporter resolves imports through the Export files go list
// produced. The gc importer handles "unsafe" itself.
func exportImporter(fset *token.FileSet, byPath map[string]*listPkg) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		lp := byPath[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	})
}
