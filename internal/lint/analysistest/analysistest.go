// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want` expectations,
// mirroring the x/tools harness of the same name on the standard library
// alone. A fixture line reads
//
//	fmt.Sprintf("x") // want `fmt\.Sprintf in hot path`
//
// where each backquoted or double-quoted string after `want` is a regexp
// that must match exactly one diagnostic on that line; diagnostics with no
// expectation, and expectations with no diagnostic, fail the test.
//
// Fixture import paths resolve against testdata/src first (so fixtures can
// model multi-package shapes like serve→stream), then against the standard
// library via build-cache export data — fully offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"go-arxiv/smore/internal/lint/analysis"
	"go-arxiv/smore/internal/lint/load"
)

// TestData returns the caller's testdata directory as an absolute path.
func TestData(t *testing.T) string {
	t.Helper()
	td, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return td
}

// Run analyzes each named fixture package under testdata/src with a and
// compares diagnostics to the fixtures' want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(t, testdata)
	for _, name := range pkgs {
		p := ld.load(name)
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     p.files,
			Pkg:       p.pkg,
			TypesInfo: p.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s failed: %v", name, a.Name, err)
			continue
		}
		checkWants(t, ld.fset, p.files, diags)
	}
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	t        *testing.T
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*fixturePkg
	loading  map[string]bool
	stdFiles map[string]string // std package path -> export data file
	stdImp   types.Importer
}

func newLoader(t *testing.T, testdata string) *loader {
	ld := &loader{
		t:        t,
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*fixturePkg{},
		loading:  map[string]bool{},
		stdFiles: map[string]string{},
	}
	ld.stdImp = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ld.stdFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ld
}

// load parses and type-checks testdata/src/<name>, resolving its imports
// through the loader (fixture siblings from source, std from export data).
func (ld *loader) load(name string) *fixturePkg {
	ld.t.Helper()
	if p, ok := ld.pkgs[name]; ok {
		return p
	}
	if ld.loading[name] {
		ld.t.Fatalf("fixture import cycle through %q", name)
	}
	ld.loading[name] = true
	defer delete(ld.loading, name)

	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(name))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("fixture package %q: %v", name, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.t.Fatalf("fixture package %q has no Go files", name)
	}

	info := analysis.NewInfo()
	tc := &types.Config{
		Importer: importerFunc(ld.importPkg),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := tc.Check(name, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("type-checking fixture %q: %v", name, err)
	}
	p := &fixturePkg{files: files, pkg: pkg, info: info}
	ld.pkgs[name] = p
	return p
}

func (ld *loader) importPkg(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.testdata, "src", filepath.FromSlash(path))); err == nil && st.IsDir() {
		return ld.load(path).pkg, nil
	}
	if _, ok := ld.stdFiles[path]; !ok {
		// First use of this std package: compile it (and its deps) into the
		// build cache and record every export file.
		files, err := load.ExportData(ld.testdata, path)
		if err != nil {
			return nil, err
		}
		for p, f := range files {
			ld.stdFiles[p] = f
		}
	}
	return ld.stdImp.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one want regexp awaiting a diagnostic on its line.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants pairs diagnostics with want expectations by file:line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, arg, err)
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pattern, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, exp.rx)
			}
		}
	}
}
