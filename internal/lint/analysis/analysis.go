// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a Pass
// hands it one type-checked package, and Report emits diagnostics. The repo
// vendors nothing, so the four smorevet analyzers build against this
// stdlib-only core; if golang.org/x/tools ever lands in the module, the
// analyzers port by swapping this import — the field and method names match
// deliberately.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression comments
	// (//smorevet:allow <name>), and the driver's -<name> selection flags.
	// It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: first line summary, then detail.
	Doc string

	// Run applies the check to one package and reports findings through
	// pass.Report. The result value is unused by this driver (kept for API
	// parity) — return nil.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between the driver and one Analyzer.Run application:
// a single type-checked package plus a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // the package's syntax, parsed with comments
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NewInfo allocates a types.Info with every map the analyzers consult.
// All drivers (vettool, analysistest, self-test loader) must use it so an
// analyzer never finds a nil map in one driver that was populated in
// another.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// Validate rejects analyzer sets the driver cannot run: missing names,
// duplicate names, or a nil Run.
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		switch {
		case a == nil:
			return fmt.Errorf("nil *Analyzer")
		case a.Name == "":
			return fmt.Errorf("analyzer has no name")
		case a.Run == nil:
			return fmt.Errorf("analyzer %q has no Run", a.Name)
		case seen[a.Name]:
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
