package atomicsnap_test

import (
	"testing"

	"go-arxiv/smore/internal/lint/analysistest"
	"go-arxiv/smore/internal/lint/atomicsnap"
)

func TestAtomicSnap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicsnap.Analyzer, "snap")
}
