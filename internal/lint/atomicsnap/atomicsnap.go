// Package atomicsnap pins PR 6's snapshot contract structurally: an
// atomic.Pointer[T] struct field is a publication point, so (1) Store/Swap
// on such a field may only happen in a function that has already locked a
// mutex on the same owner expression — or is annotated //smore:locked,
// meaning its callers hold that mutex (model.Ensemble.publish) — and (2) a
// value bound from Load() is an immutable snapshot: assigning through it
// (fields, elements, or the pointee itself) is flagged.
//
// The match is syntactic on the owner expression (s.reg.mu.Lock() sanctions
// s.reg.def.Store(...)), which is exactly how the repo writes these
// sections; a Store guarded through an alias of the owner needs the
// //smore:locked annotation instead.
package atomicsnap

import (
	"go/ast"
	"go/types"

	"go-arxiv/smore/internal/lint/analysis"
	"go-arxiv/smore/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicsnap",
	Doc: "atomic.Pointer fields: Store/Swap only under the owning struct's " +
		"mutex (or //smore:locked), and values from Load() are read-only snapshots",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	sup := lintutil.NewSuppressor(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, sup, fn)
		}
	}
	return nil, nil
}

// atomicPtrField matches `<owner>.<field>.<method>` where field's type is
// sync/atomic.Pointer[T], returning the owner expression and method name.
func atomicPtrField(info *types.Info, call *ast.CallExpr) (owner ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	field, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	ft := lintutil.NamedOf(info.TypeOf(field))
	if ft == nil || ft.Obj().Pkg() == nil ||
		ft.Obj().Pkg().Path() != "sync/atomic" || ft.Obj().Name() != "Pointer" {
		return nil, "", false
	}
	return field.X, sel.Sel.Name, true
}

func checkFunc(pass *analysis.Pass, sup *lintutil.Suppressor, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	calledLocked := lintutil.HasAnnotation(fn, lintutil.MarkerLocked)

	// lockedOwners collects, in source order, positions at which a mutex on
	// some owner expression is locked/unlocked; a Store at pos P on owner O
	// is sanctioned when O's mutex was locked before P (unlocks are ignored:
	// storing right before the unlock is the normal shape, and a stale
	// sanction only weakens the check, never breaks builds).
	type lockEvt struct {
		owner string
		pos   int
	}
	var locks []lockEvt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		mt := lintutil.NamedOf(info.TypeOf(field))
		if mt == nil || mt.Obj().Pkg() == nil || mt.Obj().Pkg().Path() != "sync" ||
			(mt.Obj().Name() != "Mutex" && mt.Obj().Name() != "RWMutex") {
			return true
		}
		locks = append(locks, lockEvt{owner: types.ExprString(field.X), pos: int(call.Pos())})
		return true
	})
	lockedBefore := func(owner string, pos int) bool {
		for _, l := range locks {
			if l.owner == owner && l.pos < pos {
				return true
			}
		}
		return false
	}

	// snapVars are local variables bound from Load() on an atomic.Pointer
	// field — immutable snapshots.
	snapVars := map[types.Object]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			owner, method, ok := atomicPtrField(info, n)
			if !ok {
				return true
			}
			if method == "Store" || method == "Swap" {
				if calledLocked || lockedBefore(types.ExprString(owner), int(n.Pos())) {
					return true
				}
				lintutil.Reportf(pass, sup, n.Pos(),
					"%s on atomic.Pointer field of %s without holding its mutex; publish under Lock or annotate the function //smore:locked",
					method, types.ExprString(owner))
			}
		case *ast.AssignStmt:
			// v := x.snap.Load() binds an immutable snapshot.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if _, method, ok := atomicPtrField(info, call); !ok || method != "Load" {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							snapVars[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							snapVars[obj] = true
						}
					}
				}
			}
			checkSnapshotWrite(pass, sup, info, n.Lhs, snapVars)
		case *ast.IncDecStmt:
			checkSnapshotWrite(pass, sup, info, []ast.Expr{n.X}, snapVars)
		}
		return true
	})
}

// checkSnapshotWrite flags assignment targets rooted in a snapshot variable
// or directly in a Load() call: v.field = x, v.rows[i] = x, *v = x,
// x.snap.Load().field = x.
func checkSnapshotWrite(pass *analysis.Pass, sup *lintutil.Suppressor, info *types.Info, targets []ast.Expr, snapVars map[types.Object]bool) {
	for _, t := range targets {
		root, through := rootOf(t)
		if !through {
			continue // writing the variable itself (rebinding) is fine
		}
		switch root := root.(type) {
		case *ast.Ident:
			if obj := info.Uses[root]; obj != nil && snapVars[obj] {
				lintutil.Reportf(pass, sup, t.Pos(),
					"write through snapshot %s loaded from an atomic.Pointer field; snapshots are immutable — build a new value and Store it",
					root.Name)
			}
		case *ast.CallExpr:
			if _, method, ok := atomicPtrField(info, root); ok && method == "Load" {
				lintutil.Reportf(pass, sup, t.Pos(),
					"write through atomic.Pointer Load(); snapshots are immutable — build a new value and Store it")
			}
		}
	}
}

// rootOf unwraps selectors, indexes, derefs, and slices down to the base
// expression; through reports whether any such step was taken (a bare ident
// target is a rebind, not a write through the snapshot).
func rootOf(e ast.Expr) (root ast.Expr, through bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e, through = x.X, true
		case *ast.IndexExpr:
			e, through = x.X, true
		case *ast.StarExpr:
			e, through = x.X, true
		case *ast.SliceExpr:
			e, through = x.X, true
		default:
			return e, through
		}
	}
}
