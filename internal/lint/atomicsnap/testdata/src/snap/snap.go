// Fixture for the atomicsnap analyzer: publication under the owner's
// mutex, the //smore:locked annotation, and writes through loaded
// snapshots.
package snap

import (
	"sync"
	"sync/atomic"
)

type Snapshot struct {
	rows []float64
	n    int
}

type Ensemble struct {
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]
}

func goodPublishUnderLock(m *Ensemble, s *Snapshot) {
	m.mu.Lock()
	m.snap.Store(s)
	m.mu.Unlock()
}

//smore:locked — callers hold m.mu.
func goodAnnotatedPublish(m *Ensemble, s *Snapshot) {
	m.snap.Store(s)
}

func badUnlockedStore(m *Ensemble, s *Snapshot) {
	m.snap.Store(s) // want `Store on atomic\.Pointer field of m without holding its mutex`
}

func badUnlockedSwap(m *Ensemble, s *Snapshot) {
	_ = m.snap.Swap(s) // want `Swap on atomic\.Pointer field of m without holding its mutex`
}

func badWriteThroughSnapshot(m *Ensemble) {
	v := m.snap.Load()
	v.n = 1       // want `write through snapshot v loaded from an atomic\.Pointer field`
	v.rows[0] = 2 // want `write through snapshot v`
	v.n++         // want `write through snapshot v`
}

func badWriteThroughLoad(m *Ensemble) {
	m.snap.Load().n = 3 // want `write through atomic\.Pointer Load\(\)`
}

func goodReadOnlySnapshot(m *Ensemble) float64 {
	v := m.snap.Load()
	total := 0.0
	for _, r := range v.rows {
		total += r
	}
	return total + float64(v.n)
}
