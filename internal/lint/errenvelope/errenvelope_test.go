package errenvelope_test

import (
	"testing"

	"go-arxiv/smore/internal/lint/analysistest"
	"go-arxiv/smore/internal/lint/errenvelope"
)

func TestErrEnvelope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errenvelope.Analyzer, "serve")
}
