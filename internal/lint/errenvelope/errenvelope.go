// Package errenvelope enforces PR 7's uniform error-envelope contract
// inside the serve package: every error response is rendered by the
// envelope helper as {"error":{"code","message"}} with a code from the
// registered set, and nothing writes error statuses or bodies around it.
//
// Concretely, in any package named "serve":
//
//   - calls to net/http.Error are flagged (they emit a text/plain body that
//     bypasses the envelope);
//   - WriteHeader with a constant 4xx/5xx status is flagged outside
//     functions annotated //smore:envelope-helper;
//   - errorEnvelope / errorBody composite literals are flagged outside the
//     annotated helper — handlers return errors, they do not render them;
//   - the code field of every httpError literal must be a constant found in
//     the package's exported ErrorCodes table (non-constant codes, like
//     uploadModel's errors.Is dispatch, are resolved at their const sources
//     by the completeness rule instead);
//   - every package-level string constant named code* must be registered in
//     ErrorCodes — adding a code without registering it is a contract break;
//   - discarding a response-write error with `_ = ...Encode(...)` or
//     `_ = ...Write(...)` is flagged unless the site carries a
//     //smorevet:allow errenvelope suppression with a rationale; the
//     envelope helper's own best-effort encode is the one sanctioned site.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"go-arxiv/smore/internal/lint/analysis"
	"go-arxiv/smore/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: "require serve errors to flow through the envelope helper with " +
		"registered machine codes; no http.Error, bare 4xx/5xx WriteHeader, " +
		"or silently-discarded response writes",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "serve" {
		return nil, nil
	}
	sup := lintutil.NewSuppressor(pass.Fset, pass.Files)
	registered, tablePos := errorCodesTable(pass)
	if registered == nil {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"package serve has no exported ErrorCodes table; errenvelope cannot verify code registration")
		}
		return nil, nil
	}
	checkRegistrationCompleteness(pass, sup, registered, tablePos)
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, sup, fn, registered)
		}
	}
	return nil, nil
}

// errorCodesTable resolves the package's `var ErrorCodes = []string{...}`
// into the set of registered code strings, using go/types to evaluate each
// element to its constant value.
func errorCodesTable(pass *analysis.Pass) (map[string]bool, token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "ErrorCodes" || i >= len(vs.Values) {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						return nil, token.NoPos
					}
					set := map[string]bool{}
					for _, elt := range lit.Elts {
						tv, ok := pass.TypesInfo.Types[elt]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							pass.Reportf(elt.Pos(),
								"ErrorCodes entry is not a string constant; the table must enumerate the code consts")
							continue
						}
						set[constant.StringVal(tv.Value)] = true
					}
					return set, name.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}

// checkRegistrationCompleteness flags package-level string consts named
// code* that are missing from ErrorCodes.
func checkRegistrationCompleteness(pass *analysis.Pass, sup *lintutil.Suppressor, registered map[string]bool, tablePos token.Pos) {
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					// The naming convention: unexported string consts
					// codeXxx are envelope codes.
					if len(name.Name) <= 4 || name.Name[:4] != "code" ||
						name.Name[4] < 'A' || name.Name[4] > 'Z' {
						continue
					}
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || c.Val() == nil || c.Val().Kind() != constant.String {
						continue
					}
					if !registered[constant.StringVal(c.Val())] {
						lintutil.Reportf(pass, sup, name.Pos(),
							"error code const %s (%q) is not registered in ErrorCodes (line %d); every envelope code must be in the table",
							name.Name, constant.StringVal(c.Val()), pass.Fset.Position(tablePos).Line)
					}
				}
			}
		}
	}
}

func checkFunc(pass *analysis.Pass, sup *lintutil.Suppressor, fn *ast.FuncDecl, registered map[string]bool) {
	isHelper := lintutil.HasAnnotation(fn, lintutil.MarkerEnvelopeHelper)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, sup, n, isHelper)
		case *ast.CompositeLit:
			checkLit(pass, sup, n, isHelper, registered)
		case *ast.AssignStmt:
			checkDiscard(pass, sup, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, sup *lintutil.Suppressor, call *ast.CallExpr, isHelper bool) {
	f := lintutil.CalleeFunc(pass.TypesInfo, call)
	if f == nil {
		return
	}
	if lintutil.FuncPkgPath(f) == "net/http" && f.Name() == "Error" && lintutil.ReceiverNamed(f) == nil {
		lintutil.Reportf(pass, sup, call.Pos(),
			"http.Error bypasses the error envelope; return an *httpError and let the envelope helper render it")
		return
	}
	if f.Name() == "WriteHeader" && !isHelper && len(call.Args) == 1 {
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return
		}
		if status, ok := constant.Int64Val(tv.Value); ok && status >= 400 {
			lintutil.Reportf(pass, sup, call.Pos(),
				"bare WriteHeader(%d) outside the envelope helper; error statuses must be rendered with the envelope body", status)
		}
	}
}

func checkLit(pass *analysis.Pass, sup *lintutil.Suppressor, lit *ast.CompositeLit, isHelper bool, registered map[string]bool) {
	named := lintutil.NamedOf(pass.TypesInfo.TypeOf(lit))
	if named == nil || named.Obj().Pkg() != pass.Pkg {
		return
	}
	switch named.Obj().Name() {
	case "errorEnvelope", "errorBody":
		if !isHelper {
			lintutil.Reportf(pass, sup, lit.Pos(),
				"%s constructed outside the //smore:envelope-helper function; handlers return errors, only the helper renders them", named.Obj().Name())
		}
	case "httpError":
		code := codeFieldExpr(lit)
		if code == nil {
			return
		}
		tv, ok := pass.TypesInfo.Types[code]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return // variable code: its const sources are checked by the completeness rule
		}
		if v := constant.StringVal(tv.Value); !registered[v] {
			lintutil.Reportf(pass, sup, code.Pos(),
				"httpError code %q is not registered in ErrorCodes; add it to the table (codes are API contract)", v)
		}
	}
}

// codeFieldExpr extracts the code field from an httpError literal, whether
// written positionally ({status, code, msg}) or with field names.
func codeFieldExpr(lit *ast.CompositeLit) ast.Expr {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "code" {
				return kv.Value
			}
			continue
		}
		if i == 1 {
			return elt
		}
	}
	return nil
}

// checkDiscard flags `_ = ...Encode(...)` / `_ = ...Write(...)` — a
// response write whose error is thrown away. The envelope helper's
// best-effort encode carries a //smorevet:allow errenvelope rationale and is
// the one sanctioned site.
func checkDiscard(pass *analysis.Pass, sup *lintutil.Suppressor, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	for _, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		f := lintutil.CalleeFunc(pass.TypesInfo, call)
		if f == nil {
			continue
		}
		switch f.Name() {
		case "Encode", "Write", "WriteString", "Flush":
			lintutil.Reportf(pass, sup, as.Pos(),
				"response-write error from %s discarded; count it in metrics or mark the one sanctioned site with //smorevet:allow errenvelope -- <reason>", f.FullName())
		}
	}
}
