// Fixture for the errenvelope analyzer, modeled on the repo's
// internal/serve: the ErrorCodes registration table, the annotated
// envelope helper, and every way of leaking an error response around it.
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

const (
	codeInvalidJSON = "invalid_json"
	codeInternal    = "internal"
	codeOrphan      = "orphan" // want `error code const codeOrphan \("orphan"\) is not registered in ErrorCodes`
)

// ErrorCodes is the registered code set the analyzer loads via go/types.
var ErrorCodes = []string{codeInvalidJSON, codeInternal}

type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

func badHTTPError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusBadRequest) // want `http\.Error bypasses the error envelope`
}

func badBareWriteHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want `bare WriteHeader\(500\) outside the envelope helper`
}

func badEnvelopeOutsideHelper(w http.ResponseWriter) {
	v := errorEnvelope{Error: errorBody{Code: codeInternal, Message: "x"}} // want `errorEnvelope constructed outside` `errorBody constructed outside`
	_ = v
}

func badUnregisteredCode() error {
	return &httpError{400, "not_registered", "nope"} // want `httpError code "not_registered" is not registered in ErrorCodes`
}

func badDiscardedWrite(w http.ResponseWriter) {
	_ = json.NewEncoder(w).Encode(map[string]int{"a": 1}) // want `response-write error from \(\*encoding/json\.Encoder\)\.Encode discarded`
}

//smore:envelope-helper — the one function that renders error bodies.
func finish(w http.ResponseWriter, err error) {
	w.WriteHeader(statusOf(err))
	w.WriteHeader(500) // constant 4xx/5xx is legal inside the annotated helper
	//smorevet:allow errenvelope -- best-effort write; nothing left to do if the client is gone
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: codeOf(err), Message: err.Error()}})
}

func statusOf(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

func codeOf(err error) string {
	var he *httpError
	if errors.As(err, &he) && he.code != "" {
		return he.code
	}
	return codeInternal
}

// goodHandler returns a registered code through the normal error flow; a
// non-constant status through WriteHeader (writeJSON-style) is also legal.
func goodHandler(w http.ResponseWriter, status int) error {
	w.WriteHeader(status)
	return &httpError{status: 400, code: codeInvalidJSON, msg: "bad"}
}
