// self_test runs all four smorevet analyzers over the repo's production
// packages, so `go test ./...` — not only `make vet-smore` — fails when a
// change breaks a concurrency, hot-path, or error-envelope invariant.
package lint_test

import (
	"testing"

	"go-arxiv/smore/internal/lint/analysis"
	"go-arxiv/smore/internal/lint/atomicsnap"
	"go-arxiv/smore/internal/lint/errenvelope"
	"go-arxiv/smore/internal/lint/hotpath"
	"go-arxiv/smore/internal/lint/load"
	"go-arxiv/smore/internal/lint/lockdiscipline"
)

func TestRepoSatisfiesInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole repo via go list -export; skipped in -short")
	}
	pkgs, err := load.Packages("../..", "./internal/...", "./cmd/...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	analyzers := []*analysis.Analyzer{
		lockdiscipline.Analyzer,
		hotpath.Analyzer,
		errenvelope.Analyzer,
		atomicsnap.Analyzer,
	}
	for _, p := range pkgs {
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				t.Errorf("%s on %s: %v", a.Name, p.ImportPath, err)
				continue
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, p.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}
