// Package lintutil holds the plumbing shared by the four smorevet
// analyzers: annotation markers (//smore:hotpath, //smore:locked,
// //smore:envelope-helper), per-site suppression (//smorevet:allow),
// cold-branch detection, and go/types call-resolution helpers.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode/utf8"

	"go-arxiv/smore/internal/lint/analysis"
)

// Annotation markers recognized in function doc comments.
const (
	MarkerHotpath        = "smore:hotpath"
	MarkerLocked         = "smore:locked"
	MarkerEnvelopeHelper = "smore:envelope-helper"
)

// IsTestFile reports whether the file containing pos is a _test.go file.
// The smorevet invariants target production code; tests may legitimately
// poke at locked state or allocate on hot paths.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// HasAnnotation reports whether the function's doc comment contains the
// marker as a standalone machine-readable line, e.g. "//smore:hotpath".
// Trailing prose after the marker is permitted ("//smore:locked — callers
// hold m.mu").
func HasAnnotation(fn *ast.FuncDecl, marker string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if matchMarker(c.Text, marker) {
			return true
		}
	}
	return false
}

func matchMarker(comment, marker string) bool {
	rest, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return false
	}
	rest = strings.TrimSpace(rest)
	rest, ok = strings.CutPrefix(rest, marker)
	if !ok {
		return false
	}
	// Exact marker, or marker followed by a separator — rejects prefixes of
	// longer markers (e.g. "smore:hotpath" must not match "smore:hotpathx").
	if rest == "" {
		return true
	}
	r, _ := utf8.DecodeRuneInString(rest)
	switch r {
	case ' ', '\t', ':', '-', '—':
		return true
	}
	return false
}

// Suppressor indexes //smorevet:allow comments so analyzers can honor
// per-site suppressions. A finding at line N is suppressed when an allow
// comment naming the analyzer sits on line N (trailing) or line N-1
// (preceding). The suppression syntax is
//
//	//smorevet:allow <analyzer> -- <reason>
//
// and the reason is mandatory by convention (reviewed, not enforced).
type Suppressor struct {
	fset *token.FileSet
	// allows maps filename -> line -> set of analyzer names allowed there.
	allows map[string]map[int]map[string]bool
}

// NewSuppressor scans every comment in files for //smorevet:allow markers.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, allows: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//smorevet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				byLine := s.allows[p.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					s.allows[p.Filename] = byLine
				}
				names := byLine[p.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[p.Line] = names
				}
				// First field is the analyzer name (or comma-separated list);
				// everything from "--" on is the rationale.
				for _, name := range strings.Split(fields[0], ",") {
					names[name] = true
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from analyzer at pos is covered
// by an allow comment on the same line or the line above.
func (s *Suppressor) Suppressed(pos token.Pos, analyzer string) bool {
	p := s.fset.Position(pos)
	byLine := s.allows[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		if byLine[line][analyzer] {
			return true
		}
	}
	return false
}

// Reportf emits a diagnostic unless the site is in a _test.go file or
// carries a matching //smorevet:allow suppression.
func Reportf(pass *analysis.Pass, sup *Suppressor, pos token.Pos, format string, args ...any) {
	if IsTestFile(pass.Fset, pos) || sup.Suppressed(pos, pass.Analyzer.Name) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// IsColdBranch reports whether an if-body is a terminating guard — its last
// statement is a panic or a return — so hot-path and lock checks can skip
// error/panic guards like
//
//	if a.dim != b.dim { panic(fmt.Sprintf(...)) }
//	if err != nil { return fmt.Errorf(...) }
//
// which never execute on the hot path.
func IsColdBranch(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// CalleeFunc resolves the function or method called by call, or nil when the
// callee is not a statically-known *types.Func (builtins, func-typed
// variables, type conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FuncPkgPath returns the import path of the package declaring f, or "".
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// ReceiverNamed returns the named type of f's receiver (through one level
// of pointer), or nil for plain functions.
func ReceiverNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return NamedOf(sig.Recv().Type())
}

// NamedOf unwraps t to its *types.Named through pointers and aliases,
// or nil if t has no named core.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsPointerShaped reports whether values of type t are represented as a
// single pointer word, so converting one to an interface does not allocate a
// fresh box for the value itself (the conversion still writes an iface
// header, but no heap copy of the payload).
func IsPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
