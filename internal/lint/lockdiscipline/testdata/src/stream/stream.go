// Package stream is a fixture stand-in for the repo's internal/stream: the
// lockdiscipline analyzer matches Adapter fold entry points by package and
// type name.
package stream

import "sync"

type Adapter struct {
	mu sync.Mutex
}

func (a *Adapter) Drain() error { return nil }
func (a *Adapter) Close() error { return nil }
