// Package encode is a fixture stand-in for the repo's internal/encode: the
// lockdiscipline analyzer matches its Encoder entry points by package and
// type name.
package encode

type Encoder struct{}

func (e *Encoder) Encode(w [][]float64) error                { return nil }
func (e *Encoder) EncodeBatch(ws [][][]float64, n int) error { return nil }
