// Fixture for the lockdiscipline analyzer: banned work under watched
// mutexes, lock leaks, and the flow shapes (early-unlock branches, defers,
// goroutines, closures) that must stay clean.
package a

import (
	"encoding/json"
	"os"
	"sync"

	"encode"
	"stream"
)

type Ensemble struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu sync.Mutex
}

func badMarshalUnderLock(m *Ensemble, enc *encode.Encoder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, _ = json.Marshal(m.n) // want `encoding/json call encoding/json\.Marshal while Ensemble\.mu is held \(locked at line \d+\)`
	return enc.Encode(nil)   // want `encode entry point \(\*encode\.Encoder\)\.Encode while Ensemble\.mu is held`
}

func badDrainUnderLock(g *registry, a *stream.Adapter) {
	g.mu.Lock()
	_ = a.Drain() // want `stream fold entry point \(\*stream\.Adapter\)\.Drain while registry\.mu is held`
	g.mu.Unlock()
}

func badFileIOUnderLock(m *Ensemble, f *os.File) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_ = os.Rename("a", "b") // want `os file-I/O call os\.Rename while Ensemble\.mu is held`
	_, _ = f.Write(nil)     // want `os file-I/O call \(\*os\.File\)\.Write while Ensemble\.mu is held`
	return f.Sync()         // want `os file-I/O call \(\*os\.File\)\.Sync while Ensemble\.mu is held`
}

func goodFileIOOffLock(m *Ensemble, f *os.File) error {
	m.mu.Lock()
	n := m.n
	m.mu.Unlock()
	if err := os.WriteFile("a", []byte{byte(n)}, 0o644); err != nil {
		return err
	}
	return f.Sync()
}

func badLeakOnReturn(m *Ensemble, cond bool) {
	m.mu.Lock()
	if cond {
		return // want `Ensemble\.mu locked at line \d+ is still held at this return`
	}
	m.mu.Unlock()
}

func badLeakAtEnd(m *Ensemble) {
	m.mu.Lock()
	m.n++
} // want `Ensemble\.mu locked at line \d+ is still held at function end`

func goodMarshalOffLock(m *Ensemble) error {
	m.mu.Lock()
	n := m.n
	m.mu.Unlock()
	_, err := json.Marshal(n)
	return err
}

func goodEarlyUnlockBranch(g *registry, a *stream.Adapter, cond bool) {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		_ = a.Close()
		return
	}
	g.mu.Unlock()
}

func goodDeferUnlock(m *Ensemble) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n++
}

func goodGoroutineOutsideSection(m *Ensemble) {
	m.mu.Lock()
	go func() {
		_, _ = json.Marshal(1) // the goroutine runs outside the critical section
	}()
	m.mu.Unlock()
}

func goodClosureNotInvoked(m *Ensemble) func() {
	m.mu.Lock()
	f := func() { _, _ = json.Marshal(2) } // runs later, after the unlock
	m.mu.Unlock()
	return f
}

func badClosureInvokedUnderLock(m *Ensemble) {
	m.mu.Lock()
	func() {
		_, _ = json.Marshal(m.n) // want `encoding/json call encoding/json\.Marshal while Ensemble\.mu is held`
	}()
	m.mu.Unlock()
}

func goodSuppressed(m *Ensemble) {
	m.mu.Lock()
	//smorevet:allow lockdiscipline -- fixture: demonstrates per-site suppression
	_, _ = json.Marshal(m.n)
	m.mu.Unlock()
}
