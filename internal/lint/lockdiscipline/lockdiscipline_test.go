package lockdiscipline_test

import (
	"testing"

	"go-arxiv/smore/internal/lint/analysistest"
	"go-arxiv/smore/internal/lint/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockdiscipline.Analyzer, "a")
}
