// Package lockdiscipline flags expensive or re-entrant work performed while
// one of the repo's serving-critical mutexes is held, and locks that leak
// past a return. It mechanizes the lessons of PR 4 (encode off-lock) and
// PR 6 (no drains or marshaling inside the registry critical section).
//
// Watched mutexes are sync.Mutex/RWMutex fields of the named types
// Ensemble, registry, and Adapter (matched by type name so the testdata
// fixtures exercise the same code path as the real packages). While any of
// them is held, calls into encoding/json, net/http, the os package (file
// I/O — Create/Rename/fsync and every other syscall-latency operation; the
// PR 10 checkpoint-persist-off-lock rule), encode.Encoder encode entry
// points, or stream.Adapter fold entry points (Drain/Close) are flagged. The walker is flow-sensitive over if/else branches (an unlock on
// an early-return branch is honored), treats `defer mu.Unlock()` as keeping
// the lock held for banned-call purposes while satisfying the leak check,
// and skips `go` statements and non-invoked function literals, which run
// outside the current critical section.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"go-arxiv/smore/internal/lint/analysis"
	"go-arxiv/smore/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "flag marshaling, net/http, os file-I/O, encode, or stream-fold calls made " +
		"while an Ensemble/registry/Adapter mutex is held, and locks leaked past return",
	Run: run,
}

// watchedOwners are the struct type names whose mutex fields guard serving
// state. instance.mu (per-model serve lock) is deliberately absent: its
// critical sections are allowed to marshal because they never sit on the
// lock-free predict path.
var watchedOwners = map[string]bool{
	"Ensemble": true,
	"registry": true,
	"Adapter":  true,
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// bannedEncoderMethods are encode.Encoder entry points that do heavy
// per-sample work (the PR 4 encode-off-lock rule).
var bannedEncoderMethods = map[string]bool{
	"Encode": true, "EncodeBatch": true, "EncodeInto": true, "MustEncode": true,
}

// bannedAdapterMethods are stream.Adapter fold entry points that block on
// the background fold loop (the PR 6 drain-under-lock rule).
var bannedAdapterMethods = map[string]bool{"Drain": true, "Close": true}

func run(pass *analysis.Pass) (any, error) {
	sup := lintutil.NewSuppressor(pass.Fset, pass.Files)
	c := &checker{pass: pass, sup: sup}
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn.Body)
		}
	}
	return nil, nil
}

// lockInfo records one held mutex on the current control-flow path.
type lockInfo struct {
	pos      token.Pos // the Lock() call
	name     string    // display name, e.g. "Ensemble.mu"
	deferred bool      // a defer Unlock covers function exit
}

// state maps lock keys (owner expression + field, e.g. "s.reg.mu") to info.
type state map[string]*lockInfo

func clone(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		cp := *v
		out[k] = &cp
	}
	return out
}

// mergeInto unions src into dst: a lock held on either surviving path is
// conservatively treated as held afterwards.
func mergeInto(dst, src state) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			cp := *v
			dst[k] = &cp
		}
	}
}

func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	mergeInto(dst, src)
}

type checker struct {
	pass  *analysis.Pass
	sup   *lintutil.Suppressor
	queue []*ast.FuncLit // closures to analyze as independent functions
}

// checkFunc analyzes one function body with an empty lock state, then
// drains any function literals discovered inside it — each closure is its
// own lock scope (it executes later, not at its definition site).
func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := state{}
	if !c.stmts(body.List, st) {
		c.checkLeak(body.Rbrace, st, "function end")
	}
	for len(c.queue) > 0 {
		fl := c.queue[0]
		c.queue = c.queue[1:]
		inner := state{}
		if !c.stmts(fl.Body.List, inner) {
			c.checkLeak(fl.Body.Rbrace, inner, "function end")
		}
	}
}

// stmts walks a statement list, returning true if the path terminates
// (return or branch) before the end.
func (c *checker) stmts(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		c.expr(s.X, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st)
		}
		c.checkLeak(s.Pos(), st, "this return")
		return true
	case *ast.BranchStmt:
		// break/continue/goto end the linear path through this list.
		return s.Tok != token.FALLTHROUGH
	case *ast.DeferStmt:
		c.deferCall(s.Call, st)
	case *ast.GoStmt:
		// The spawned goroutine runs outside this critical section; its body
		// is analyzed as an independent lock scope.
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.queue = append(c.queue, fl)
		}
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
	case *ast.IfStmt:
		c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		thenSt := clone(st)
		thenTerm := c.stmts(s.Body.List, thenSt)
		if s.Else == nil {
			if !thenTerm {
				mergeInto(st, thenSt)
			}
			return false
		}
		elseSt := clone(st)
		elseTerm := c.stmt(s.Else, elseSt)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			replace(st, thenSt)
			mergeInto(st, elseSt)
		}
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.ForStmt:
		c.stmt(s.Init, st)
		if s.Cond != nil {
			c.expr(s.Cond, st)
		}
		c.stmt(s.Post, st)
		// Loop bodies are checked on a copy: zero or more iterations, so the
		// post-loop state conservatively matches the pre-loop state.
		c.stmts(s.Body.List, clone(st))
	case *ast.RangeStmt:
		c.expr(s.X, st)
		c.stmts(s.Body.List, clone(st))
	case *ast.SwitchStmt:
		c.stmt(s.Init, st)
		if s.Tag != nil {
			c.expr(s.Tag, st)
		}
		c.caseBodies(s.Body, st)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, st)
		c.stmt(s.Assign, st)
		c.caseBodies(s.Body, st)
	case *ast.SelectStmt:
		c.caseBodies(s.Body, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, st)
		}
		for _, e := range s.Lhs {
			c.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	case *ast.IncDecStmt:
		c.expr(s.X, st)
	}
	return false
}

// caseBodies walks each clause of a switch/select on its own copy of the
// state; the post-statement state conservatively stays at the pre-state.
func (c *checker) caseBodies(body *ast.BlockStmt, st state) {
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.expr(e, st)
			}
			c.stmts(cl.Body, clone(st))
		case *ast.CommClause:
			c.stmt(cl.Comm, clone(st))
			c.stmts(cl.Body, clone(st))
		}
	}
}

// deferCall handles `defer X()`: a deferred watched Unlock marks the lock
// as released at function exit; a deferred closure is scanned for the same.
func (c *checker) deferCall(call *ast.CallExpr, st state) {
	for _, a := range call.Args {
		c.expr(a, st)
	}
	if key, _, method, ok := c.watchedMutexOp(call); ok && unlockMethods[method] {
		if info := st[key]; info != nil {
			info.deferred = true
		}
		return
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... m.mu.Unlock() ... }(): honor unlocks, and
		// analyze the rest of the closure as its own scope.
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if key, _, method, ok := c.watchedMutexOp(inner); ok && unlockMethods[method] {
					if info := st[key]; info != nil {
						info.deferred = true
					}
				}
			}
			return true
		})
		c.queue = append(c.queue, fl)
	}
}

// expr walks an expression, updating lock state for watched Lock/Unlock
// calls and flagging banned calls made while a watched lock is held.
func (c *checker) expr(e ast.Expr, st state) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.FuncLit:
		c.queue = append(c.queue, e)
	case *ast.CallExpr:
		if fl, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked closure: runs here, under the current locks.
			for _, a := range e.Args {
				c.expr(a, st)
			}
			c.stmts(fl.Body.List, st)
			return
		}
		for _, a := range e.Args {
			c.expr(a, st)
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			c.expr(sel.X, st)
		}
		c.call(e, st)
	case *ast.ParenExpr:
		c.expr(e.X, st)
	case *ast.SelectorExpr:
		c.expr(e.X, st)
	case *ast.StarExpr:
		c.expr(e.X, st)
	case *ast.UnaryExpr:
		c.expr(e.X, st)
	case *ast.BinaryExpr:
		c.expr(e.X, st)
		c.expr(e.Y, st)
	case *ast.IndexExpr:
		c.expr(e.X, st)
		c.expr(e.Index, st)
	case *ast.IndexListExpr:
		c.expr(e.X, st)
	case *ast.SliceExpr:
		c.expr(e.X, st)
		c.expr(e.Low, st)
		c.expr(e.High, st)
		c.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		c.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.expr(el, st)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Key, st)
		c.expr(e.Value, st)
	}
}

// call applies one resolved call to the lock state: Lock/Unlock transitions
// for watched mutexes, banned-callee reports otherwise.
func (c *checker) call(call *ast.CallExpr, st state) {
	if key, name, method, ok := c.watchedMutexOp(call); ok {
		switch {
		case lockMethods[method]:
			st[key] = &lockInfo{pos: call.Pos(), name: name}
		case unlockMethods[method]:
			delete(st, key)
		}
		return
	}
	if len(st) == 0 {
		return
	}
	c.checkBanned(call, st)
}

// watchedMutexOp matches `<owner-expr>.<field>.<Lock|Unlock|RLock|RUnlock>()`
// where field is a sync.Mutex/RWMutex and the owner's named type is in the
// watched set. It returns a path-identity key, a display name, and the
// method name.
func (c *checker) watchedMutexOp(call *ast.CallExpr) (key, name, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	method = sel.Sel.Name
	if !lockMethods[method] && !unlockMethods[method] {
		return "", "", "", false
	}
	field, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	mt := lintutil.NamedOf(c.pass.TypesInfo.TypeOf(field))
	if mt == nil || mt.Obj().Pkg() == nil ||
		mt.Obj().Pkg().Path() != "sync" ||
		(mt.Obj().Name() != "Mutex" && mt.Obj().Name() != "RWMutex") {
		return "", "", "", false
	}
	owner := lintutil.NamedOf(c.pass.TypesInfo.TypeOf(field.X))
	if owner == nil || !watchedOwners[owner.Obj().Name()] {
		return "", "", "", false
	}
	key = types.ExprString(field.X) + "." + field.Sel.Name
	name = owner.Obj().Name() + "." + field.Sel.Name
	return key, name, method, true
}

// checkBanned reports call if its callee is in the banned set while any
// watched lock is held.
func (c *checker) checkBanned(call *ast.CallExpr, st state) {
	f := lintutil.CalleeFunc(c.pass.TypesInfo, call)
	if f == nil {
		return
	}
	var what string
	switch lintutil.FuncPkgPath(f) {
	case "encoding/json":
		what = "encoding/json call " + f.FullName()
	case "net/http":
		what = "net/http call " + f.FullName()
	case "os":
		// Covers both package functions (os.Rename, os.CreateTemp) and
		// *os.File methods (Write, Sync): checkpoint persistence and any
		// other file I/O must happen outside serving critical sections.
		what = "os file-I/O call " + f.FullName()
	default:
		recv := lintutil.ReceiverNamed(f)
		if recv == nil || recv.Obj().Pkg() == nil {
			return
		}
		switch {
		case recv.Obj().Name() == "Encoder" && recv.Obj().Pkg().Name() == "encode" &&
			bannedEncoderMethods[f.Name()]:
			what = "encode entry point " + f.FullName()
		case recv.Obj().Name() == "Adapter" && recv.Obj().Pkg().Name() == "stream" &&
			bannedAdapterMethods[f.Name()]:
			what = "stream fold entry point " + f.FullName()
		default:
			return
		}
	}
	lintutil.Reportf(c.pass, c.sup, call.Pos(),
		"%s while %s is held (locked at line %d); move it outside the critical section",
		what, c.heldNames(st), c.firstLockLine(st))
}

func (c *checker) heldNames(st state) string {
	names := make([]string, 0, len(st))
	for _, info := range st {
		names = append(names, info.name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func (c *checker) firstLockLine(st state) int {
	line := 0
	for _, info := range st {
		l := c.pass.Fset.Position(info.pos).Line
		if line == 0 || l < line {
			line = l
		}
	}
	return line
}

// checkLeak reports watched locks still held, with no deferred unlock, at a
// return statement or at the end of the function body.
func (c *checker) checkLeak(pos token.Pos, st state, where string) {
	for _, info := range st {
		if info.deferred {
			continue
		}
		lintutil.Reportf(c.pass, c.sup, pos,
			"%s locked at line %d is still held at %s; add Unlock or defer Unlock",
			info.name, c.pass.Fset.Position(info.pos).Line, where)
	}
}
