// Package parallel is the shared worker pool behind the batch APIs
// (encode.EncodeBatch, model PredictBatch/AdaptBatch). Work is split into
// contiguous index ranges so each worker touches a cache-friendly slice of
// the input, and results are always written to caller-owned per-index slots,
// which makes every batch operation deterministic: the merged output is
// identical for any worker count, including 1.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool bounds the number of goroutines a batch operation may use. The zero
// value (and any non-positive size) behaves like a pool of GOMAXPROCS
// workers; Pool values are freely copyable and safe for concurrent use.
type Pool struct {
	size int
}

// NewPool returns a pool of the given size; size <= 0 means GOMAXPROCS.
func NewPool(size int) Pool { return Pool{size: size} }

// Size returns the resolved worker count.
func (p Pool) Size() int { return Workers(p.size) }

// ForEach invokes fn(i) for every i in [0, n), spread across the pool's
// workers as contiguous chunks. fn must only write to state owned by index
// i (e.g. out[i]); under that contract the result is deterministic for any
// pool size. ForEach returns once every call has finished. With one worker
// (or n <= 1) it runs inline with no goroutines, so the sequential and
// parallel paths share one code path.
func (p Pool) ForEach(n int, fn func(i int)) {
	w := p.Size()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := min(start+chunk, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := start; i < end; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work: it runs fn over [0, n) and
// returns the error of the lowest failing index (deterministic regardless
// of worker count, since every index still runs).
func (p Pool) ForEachErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	p.ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
