package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			NewPool(workers).ForEach(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachDeterministicMerge(t *testing.T) {
	const n = 257
	ref := make([]int, n)
	NewPool(1).ForEach(n, func(i int) { ref[i] = i * i })
	got := make([]int, n)
	NewPool(16).ForEach(n, func(i int) { got[i] = i * i })
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("slot %d differs across worker counts: %d vs %d", i, ref[i], got[i])
		}
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := NewPool(workers).ForEachErr(100, func(i int) error {
			if i == 90 || i == 37 || i == 62 {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@37" {
			t.Fatalf("workers=%d: err = %v, want fail@37", workers, err)
		}
	}
	if err := NewPool(4).ForEachErr(10, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	want := errors.New("boom")
	if err := NewPool(4).ForEachErr(1, func(int) error { return want }); !errors.Is(err, want) {
		t.Fatalf("single-index error not propagated: %v", err)
	}
}
