#!/usr/bin/env bash
# Loadgen proof point for the crash-safe serving work, in two phases against
# real binaries:
#
#   phase 1 (clean): a durably-checkpointing server under mixed
#   predict/stream/drift/adapt traffic must serve with zero 5xx, zero 429,
#   a bounded predict p99, and an exactly-reconciled streaming queue
#   (enqueued == folded + lost + depth + in-flight), while the fold-count
#   trigger writes checkpoint generations under -state-dir.
#
#   phase 2 (overload): the same traffic against a server with a tiny
#   in-flight cap, an armed fold-failure injector, and the circuit breaker
#   enabled must shed load the contractual way — 429/503 WITH Retry-After,
#   no 500s, books still balanced — and the breaker must actually trip.
#
# Reports land in loadgen_clean.json / loadgen_overload.json (CI uploads
# them as artifacts). Used by `make loadgen-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

ADDR="${SMORE_LOADGEN_ADDR:-127.0.0.1:8797}"
OVER_ADDR="${SMORE_LOADGEN_OVER_ADDR:-127.0.0.1:8798}"
DURATION="${SMORE_LOADGEN_DURATION:-6s}"
tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  # Reap the servers before deleting $tmp: a SIGTERM shutdown checkpoint may
  # still be writing into the state dir, and a concurrent rm -rf can fail.
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "loadgen-smoke: $1" >&2; exit 1; }

wait_healthz() { # $1 addr, $2 pid
  for _ in $(seq 1 50); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$2" 2>/dev/null || fail "smore-serve on $1 died during startup"
    sleep 0.2
  done
  fail "smore-serve on $1 never became healthy"
}

go build -o "$tmp/smore" ./cmd/smore
go build -o "$tmp/smore-serve" ./cmd/smore-serve
go build -o "$tmp/smore-loadgen" ./cmd/smore-loadgen

"$tmp/smore" -dim 512 -levels 8 -ngram 2 -sensors 2 -classes 3 -window 16 \
  -per-class 8 -seed 7 -save "$tmp/model.smore" >/dev/null

# --- phase 1: clean serving with durable checkpoints -------------------------
"$tmp/smore-serve" -load "$tmp/model.smore" -addr "$ADDR" \
  -state-dir "$tmp/state" -checkpoint-folds 64 &
pids+=($!)
wait_healthz "$ADDR" "${pids[-1]}"

"$tmp/smore-loadgen" -addr "http://$ADDR" -duration "$DURATION" -qps 150 \
  -seed 7 -p99-max 500ms -out loadgen_clean.json \
  || fail "clean phase failed its gates (see loadgen_clean.json)"
grep -q '"429"' loadgen_clean.json && fail "clean phase saw 429 backpressure"
grep -q '"503"' loadgen_clean.json && fail "clean phase saw 503 backpressure"
[ -f "$tmp/state/default/MANIFEST.json" ] \
  || fail "fold-count trigger wrote no checkpoint manifest under -state-dir"
grep -q '"gen"' "$tmp/state/default/MANIFEST.json" \
  || fail "checkpoint manifest lists no generations"
echo "loadgen-smoke: clean phase OK (state dir populated: $(find "$tmp/state/default" -type f | wc -l) files)"

# --- phase 2: overload + injected fold failures ------------------------------
# stream.fold.err:after=4 lets four folds succeed, then fails every one:
# the threshold-3 breaker must trip (503 adapter_open), and the in-flight
# cap of 2 must shed the rest as 429 — all with Retry-After, never a 500.
"$tmp/smore-serve" -load "$tmp/model.smore" -addr "$OVER_ADDR" \
  -max-in-flight 2 -breaker-threshold 3 -breaker-cooldown 500ms \
  -stream-batch 8 \
  -fault 'stream.fold.err:after=4,stream.fold.slow:delay=20ms' -fault-seed 7 &
pids+=($!)
wait_healthz "$OVER_ADDR" "${pids[-1]}"

"$tmp/smore-loadgen" -addr "http://$OVER_ADDR" -duration "$DURATION" -qps 300 \
  -workers 16 -seed 7 -expect-backpressure -out loadgen_overload.json \
  || fail "overload phase failed its gates (see loadgen_overload.json)"
grep -Eq '"(429|503)"' loadgen_overload.json \
  || fail "overload phase produced no backpressure at all"
curl -fsS "http://$OVER_ADDR/metrics" >"$tmp/over_metrics.txt"
grep -Eq 'smore_breaker_opens_total\{model="default"\} [1-9]' "$tmp/over_metrics.txt" \
  || fail "circuit breaker never opened under injected fold failures"
grep -q 'smore_breaker_state{model="default"}' "$tmp/over_metrics.txt" \
  || fail "breaker state gauge missing from /metrics"
echo "loadgen-smoke: overload phase OK (backpressure with Retry-After, breaker tripped)"

echo "loadgen-smoke OK"
