#!/usr/bin/env bash
# End-to-end check of the train-once/serve-many path with the real binaries:
# train+adapt+save a small model with `smore`, boot `smore-serve` on it, and
# verify /healthz, a /v1/predict round trip, a byte-identical /v1/model
# export, incremental /v1/adapt, and /metrics. Used by `make e2e` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMORE_E2E_ADDR:-127.0.0.1:8791}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/smore" ./cmd/smore
go build -o "$tmp/smore-serve" ./cmd/smore-serve

"$tmp/smore" -dim 512 -levels 8 -ngram 2 -sensors 2 -classes 3 -window 16 \
  -per-class 8 -seed 7 -save "$tmp/model.smore" >/dev/null

"$tmp/smore-serve" -load "$tmp/model.smore" -addr "$ADDR" &
pid=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "e2e: smore-serve died during startup" >&2; exit 1; }
  sleep 0.2
done

fail() { echo "e2e: $1" >&2; exit 1; }

curl -fsS "http://$ADDR/healthz" | grep -q '"ok"' || fail "healthz did not report ok"

body='{"windows":[[[0.1,-0.2],[0.3,0.4],[0.0,1.1],[0.5,-0.5]]]}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
  "http://$ADDR/v1/predict" | grep -q '"predictions"' || fail "predict round trip failed"

# The served model must export byte-identically to the saved artifact.
curl -fsS "http://$ADDR/v1/model" -o "$tmp/served.smore"
cmp "$tmp/model.smore" "$tmp/served.smore" || fail "/v1/model export is not byte-identical to the saved bundle"

curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
  "http://$ADDR/v1/adapt" | grep -q '"stats"' || fail "adapt round trip failed"

curl -fsS "http://$ADDR/metrics" | grep -q 'smore_requests_total{endpoint="predict"} 1' \
  || fail "metrics did not count the predict request"

# The loaded bundle must also re-evaluate identically through the CLI.
"$tmp/smore" -dim 512 -sensors 2 -classes 3 -window 16 -per-class 8 -seed 7 \
  -load "$tmp/model.smore" -json >"$tmp/loaded.json"
"$tmp/smore" -dim 512 -levels 8 -ngram 2 -sensors 2 -classes 3 -window 16 \
  -per-class 8 -seed 7 -json >"$tmp/fresh.json"
# Elapsed differs between runs; compare everything else.
if ! diff <(grep -v '"elapsed"' "$tmp/fresh.json") <(grep -v '"elapsed"' "$tmp/loaded.json"); then
  fail "loaded-model evaluation differs from the fresh run"
fi

echo "e2e serve OK"
