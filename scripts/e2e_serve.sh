#!/usr/bin/env bash
# End-to-end check of the train-once/serve-many path with the real binaries:
# train+adapt+save a small model with `smore`, boot `smore-serve` on it, and
# verify /healthz, a /v1/predict round trip, a byte-identical /v1/model
# export, incremental /v1/adapt, and /metrics. Then exercise the streaming
# path: serve a source-only model, push the target split through
# /v1/stream/adapt, poll /v1/stream/stats until drained, and verify the
# adapted accuracy beats the source-only baseline, plus queue-full 429
# backpressure and SIGTERM graceful shutdown. Finally exercise the model
# registry: upload a second named bundle, round-trip it byte-identically,
# predict against it, hot-swap it, and push past -max-models to watch the
# LRU eviction. Along the way, error responses are checked against the
# uniform {"error":{"code","message"}} envelope, and a per-request
# adaptation strategy is installed, listed, and round-tripped through an
# SME2 bundle export/upload. A drift-policy server then streams a harsh
# second-shift split: the detector spawns a second target, stats/metrics
# report the transition, and POST /v1/stream/rollback restores the
# pre-drift bundle byte-identically. Used by `make e2e` and CI.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

ADDR="${SMORE_E2E_ADDR:-127.0.0.1:8791}"
STREAM_ADDR="${SMORE_E2E_STREAM_ADDR:-127.0.0.1:8792}"
tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  # Reap the servers before deleting $tmp: a SIGTERM shutdown checkpoint may
  # still be writing into the state dir, and a concurrent rm -rf can fail.
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "e2e: $1" >&2; exit 1; }

wait_healthz() { # $1 addr, $2 pid
  for _ in $(seq 1 50); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$2" 2>/dev/null || fail "smore-serve on $1 died during startup"
    sleep 0.2
  done
  fail "smore-serve on $1 never became healthy"
}

go build -o "$tmp/smore" ./cmd/smore
go build -o "$tmp/smore-serve" ./cmd/smore-serve

"$tmp/smore" -dim 512 -levels 8 -ngram 2 -sensors 2 -classes 3 -window 16 \
  -per-class 8 -seed 7 -save "$tmp/model.smore" >/dev/null

"$tmp/smore-serve" -load "$tmp/model.smore" -addr "$ADDR" -max-models 2 &
pids+=($!)
wait_healthz "$ADDR" "${pids[-1]}"

curl -fsS "http://$ADDR/healthz" | grep >/dev/null '"ok"' || fail "healthz did not report ok"

body='{"windows":[[[0.1,-0.2],[0.3,0.4],[0.0,1.1],[0.5,-0.5]]]}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
  "http://$ADDR/v1/predict" | grep >/dev/null '"predictions"' || fail "predict round trip failed"

# The served model must export byte-identically to the saved artifact.
curl -fsS "http://$ADDR/v1/model" -o "$tmp/served.smore"
cmp "$tmp/model.smore" "$tmp/served.smore" || fail "/v1/model export is not byte-identical to the saved bundle"

curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
  "http://$ADDR/v1/adapt" | grep >/dev/null '"stats"' || fail "adapt round trip failed"

curl -fsS "http://$ADDR/metrics" | grep >/dev/null 'smore_requests_total{endpoint="predict"} 1' \
  || fail "metrics did not count the predict request"
curl -fsS "http://$ADDR/metrics" | grep >/dev/null 'smore_requests_total{endpoint="metrics"} 1' \
  || fail "metrics did not count its own scrapes"

# A body with trailing garbage after the JSON object must be rejected, in
# the uniform error envelope with its stable machine code.
code=$(curl -s -o "$tmp/err_trailing.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d "${body}garbage" "http://$ADDR/v1/predict")
[ "$code" = "400" ] || fail "trailing-garbage body returned $code, want 400"
grep -q '"error":{"code":"trailing_data"' "$tmp/err_trailing.json" \
  || fail "trailing-garbage error is not the {\"error\":{\"code\",\"message\"}} envelope: $(cat "$tmp/err_trailing.json")"

# The loaded bundle must also re-evaluate identically through the CLI.
"$tmp/smore" -dim 512 -sensors 2 -classes 3 -window 16 -per-class 8 -seed 7 \
  -load "$tmp/model.smore" -json >"$tmp/loaded.json"
"$tmp/smore" -dim 512 -levels 8 -ngram 2 -sensors 2 -classes 3 -window 16 \
  -per-class 8 -seed 7 -json >"$tmp/fresh.json"
# Elapsed differs between runs; compare everything else.
if ! diff <(grep -v '"elapsed"' "$tmp/fresh.json") <(grep -v '"elapsed"' "$tmp/loaded.json"); then
  fail "loaded-model evaluation differs from the fresh run"
fi

# --- streaming adaptation ---------------------------------------------------
# Train a source-only model on a config whose target shift leaves clear room
# to improve, dump the raw target split, and serve the unadapted bundle.
"$tmp/smore" -dim 1024 -levels 16 -ngram 3 -sensors 3 -classes 4 -window 48 \
  -per-class 24 -retrain 2 -seed 7 \
  -no-adapt -save "$tmp/source.smore" -dump-target "$tmp/target" \
  -dump-drift "$tmp/drift" >/dev/null

"$tmp/smore-serve" -load "$tmp/source.smore" -addr "$STREAM_ADDR" \
  -stream-queue 128 -stream-batch 8 &
stream_pid=$!
pids+=("$stream_pid")
wait_healthz "$STREAM_ADDR" "$stream_pid"

labels=$(sed 's/\[//;s/\]//' "$tmp/target.labels.json")
hits() { # stdin: /v1/predict response; prints correct-prediction count
  sed 's/.*"predictions":\[//;s/\].*//' | awk -v l="$labels" '{
    np = split($0, P, ","); nl = split(l, L, ",");
    if (np != nl) { print -1; exit }
    h = 0; for (i = 1; i <= np; i++) if (P[i] == L[i]) h++;
    print h
  }'
}

total=$(awk -v l="$labels" 'BEGIN{print split(l, L, ",")}')
[ "$total" = "96" ] || fail "target dump has $total labels, want 96"

# Baseline: the served model is unadapted, so a plain predict is source-only.
base_resp=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$STREAM_ADDR/v1/predict")
echo "$base_resp" | grep >/dev/null '"adapted":false' || fail "source-only bundle reports adapted=true before streaming"
base_hits=$(echo "$base_resp" | hits)
[ "$base_hits" -ge 0 ] || fail "baseline prediction count does not match label count"

# Push the whole target split through the streaming queue in one 202 batch...
code=$(curl -s -o "$tmp/stream_ack.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$STREAM_ADDR/v1/stream/adapt")
[ "$code" = "202" ] || fail "stream adapt returned $code, want 202"
grep -q '"accepted":96' "$tmp/stream_ack.json" || fail "stream adapt did not accept all 96 windows"

# ...and poll the stats endpoint until the background adapter has folded it.
for _ in $(seq 1 100); do
  stats=$(curl -fsS "http://$STREAM_ADDR/v1/stream/stats")
  if echo "$stats" | grep >/dev/null '"queue_depth":0' &&
     echo "$stats" | grep >/dev/null '"in_flight":0' &&
     echo "$stats" | grep >/dev/null '"windows_folded_total":96'; then
    break
  fi
  sleep 0.1
done
echo "$stats" | grep >/dev/null '"windows_folded_total":96' || fail "stream never drained: $stats"
echo "$stats" | grep >/dev/null '"batches_folded_total":12' || fail "expected 12 micro-batches of 8: $stats"

curl -fsS "http://$STREAM_ADDR/metrics" | grep >/dev/null 'smore_stream_windows_folded_total{model="default"} 96' \
  || fail "stream metrics did not count the folded windows"

# The streamed-in adaptation must beat the source-only baseline.
adapted_resp=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$STREAM_ADDR/v1/predict")
echo "$adapted_resp" | grep >/dev/null '"adapted":true' || fail "model not adapted after stream drain"
adapted_hits=$(echo "$adapted_resp" | hits)
if [ "$adapted_hits" -le "$base_hits" ]; then
  fail "streamed adaptation did not improve target accuracy: $base_hits/$total -> $adapted_hits/$total"
fi
echo "e2e: streamed adaptation improved target accuracy $base_hits/$total -> $adapted_hits/$total"

# A batch larger than the whole queue can never fit: terminal 413, not a
# retry-later 429 (transient queue-full 429s are pinned by the Go tests,
# where the fold can be gated deterministically).
TINY_ADDR="${SMORE_E2E_TINY_ADDR:-127.0.0.1:8793}"
"$tmp/smore-serve" -load "$tmp/source.smore" -addr "$TINY_ADDR" \
  -stream-queue 32 -stream-batch 8 &
tiny_pid=$!
pids+=("$tiny_pid")
wait_healthz "$TINY_ADDR" "$tiny_pid"
code=$(curl -s -o "$tmp/err_tiny.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$TINY_ADDR/v1/stream/adapt")
[ "$code" = "413" ] || fail "never-fitting stream batch returned $code, want 413"
grep -q '"error":{"code":"batch_too_large"' "$tmp/err_tiny.json" \
  || fail "never-fitting stream batch missing its envelope code: $(cat "$tmp/err_tiny.json")"
curl -fsS "http://$TINY_ADDR/v1/stream/stats" | grep >/dev/null '"enqueued_total":0' \
  || fail "rejected batch must not be partially enqueued"

# --- model registry ---------------------------------------------------------
# The main server booted with -max-models 2 (the pinned default + one named
# slot), so the registry's hot-swap and LRU-eviction paths are both reachable.
curl -fsS "http://$ADDR/v1/models" | grep >/dev/null '"name":"default"' \
  || fail "registry listing does not include the default model"

# Upload the 3-sensor source bundle under a name; it must round-trip
# byte-identically and serve predictions with its own encoder shape.
code=$(curl -s -o "$tmp/alt_up.json" -w '%{http_code}' -X POST \
  --data-binary "@$tmp/source.smore" "http://$ADDR/v1/models/alt")
[ "$code" = "201" ] || fail "named upload returned $code, want 201"
grep -q '"swapped":false' "$tmp/alt_up.json" || fail "fresh named upload reported a swap"

curl -fsS "http://$ADDR/v1/models/alt" -o "$tmp/alt_served.smore"
cmp "$tmp/source.smore" "$tmp/alt_served.smore" \
  || fail "named export is not byte-identical to the uploaded bundle"

body3='{"windows":[[[0.1,-0.2,0.3],[0.3,0.4,-0.1],[0.0,1.1,0.2],[0.5,-0.5,0.0]]]}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body3" \
  "http://$ADDR/v1/models/alt/predict" | grep >/dev/null '"predictions"' \
  || fail "per-model predict round trip failed"
# The 3-sensor windows must NOT be accepted by the 2-sensor default model.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d "$body3" "http://$ADDR/v1/predict")
[ "$code" = "400" ] || fail "default model accepted 3-sensor windows ($code), want 400"

# Re-uploading under the same name is an atomic hot swap.
code=$(curl -s -o "$tmp/alt_swap.json" -w '%{http_code}' -X POST \
  --data-binary "@$tmp/model.smore" "http://$ADDR/v1/models/alt")
[ "$code" = "200" ] || fail "hot-swap upload returned $code, want 200"
grep -q '"swapped":true' "$tmp/alt_swap.json" || fail "hot-swap upload did not report a swap"
curl -fsS "http://$ADDR/v1/models/alt" -o "$tmp/alt_swapped.smore"
cmp "$tmp/model.smore" "$tmp/alt_swapped.smore" \
  || fail "post-swap export does not match the swapped-in bundle"

# A second named upload pushes past -max-models 2: the LRU named model is
# evicted (the default is pinned) and its routes start answering 404.
code=$(curl -s -o "$tmp/other_up.json" -w '%{http_code}' -X POST \
  --data-binary "@$tmp/source.smore" "http://$ADDR/v1/models/other")
[ "$code" = "201" ] || fail "over-cap upload returned $code, want 201"
grep -q '"evicted":"alt"' "$tmp/other_up.json" || fail "over-cap upload did not evict the LRU model"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/models/alt")
[ "$code" = "404" ] || fail "evicted model still answers $code, want 404"

# The default model is pinned: DELETE answers 409 with its stable machine
# code; a named delete frees it.
code=$(curl -s -o "$tmp/err_pinned.json" -w '%{http_code}' -X DELETE "http://$ADDR/v1/models/default")
[ "$code" = "409" ] || fail "deleting the default model returned $code, want 409"
grep -q '"error":{"code":"default_pinned"' "$tmp/err_pinned.json" \
  || fail "pinned-default delete missing its envelope code: $(cat "$tmp/err_pinned.json")"

curl -fsS "http://$ADDR/metrics" >"$tmp/metrics.txt"
for want in 'smore_models 2' 'smore_model_uploads_total 3' \
    'smore_model_evictions_total 1' 'smore_model_dim{model="default"} 512' \
    'smore_model_dim{model="other"} 1024'; do
  grep -qF "$want" "$tmp/metrics.txt" || fail "metrics missing '$want'"
done

code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$ADDR/v1/models/other")
[ "$code" = "200" ] || fail "named delete returned $code, want 200"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/models/other")
[ "$code" = "404" ] || fail "deleted model still answers $code, want 404"
echo "e2e: registry upload/round-trip, hot swap, LRU eviction, delete OK"

# --- adaptation strategies ---------------------------------------------------
# A per-request strategy is applied to the fold, reported in the response,
# and sticks on the model, so the registry listing shows it.
strat='entropy+constant+bundle'
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"windows\":[[[0.1,-0.2],[0.3,0.4],[0.0,1.1],[0.5,-0.5]]],\"strategy\":\"$strat\"}" \
  "http://$ADDR/v1/adapt" | grep >/dev/null "\"strategy\":\"$strat\"" \
  || fail "adapt did not report the requested strategy"
curl -fsS "http://$ADDR/v1/models" | grep >/dev/null "\"strategy\":\"$strat\"" \
  || fail "registry listing does not show the installed strategy"

# An unregistered spec is a 400 with its stable code, before any fold.
code=$(curl -s -o "$tmp/err_strat.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d "{\"windows\":[[[0.1,-0.2],[0.3,0.4],[0.0,1.1],[0.5,-0.5]]],\"strategy\":\"margin+constant+nope\"}" \
  "http://$ADDR/v1/adapt")
[ "$code" = "400" ] || fail "unknown strategy returned $code, want 400"
grep -q '"error":{"code":"unknown_strategy"' "$tmp/err_strat.json" \
  || fail "unknown-strategy error missing its envelope code: $(cat "$tmp/err_strat.json")"

# A non-default strategy rides inside the bundle (SME2) through the
# export/upload cycle and shows up on the re-served model.
curl -fsS "http://$ADDR/v1/model" -o "$tmp/strat.smore"
# The ensemble payload starts after the 44-byte SMB1 bundle header.
[ "$(tail -c +45 "$tmp/strat.smore" | head -c 4)" = "SME2" ] \
  || fail "non-default strategy did not export as an SME2 bundle"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary "@$tmp/strat.smore" "http://$ADDR/v1/models/strat")
[ "$code" = "201" ] || fail "SME2 upload returned $code, want 201"
n=$(curl -fsS "http://$ADDR/v1/models" | grep -o "\"strategy\":\"$strat\"" | wc -l)
[ "$n" -eq 2 ] || fail "SME2 strategy did not survive the upload round trip ($n of 2 listings)"
echo "e2e: error envelope, per-request strategy, SME2 round trip OK"

# --- drift: spawn, stats, rollback -------------------------------------------
# Rollback with no checkpoint is a 409 with its stable code — pinned on the
# policy-none stream server, where no spawn can ever create one.
code=$(curl -s -o "$tmp/err_ckpt.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{}' "http://$STREAM_ADDR/v1/stream/rollback")
[ "$code" = "409" ] || fail "rollback without checkpoint returned $code, want 409"
grep -q '"error":{"code":"no_checkpoint"' "$tmp/err_ckpt.json" \
  || fail "no-checkpoint rollback missing its envelope code: $(cat "$tmp/err_ckpt.json")"

# A spawn-policy server: phase A streams the target split (a stable
# similarity trajectory; no spawn), then the harsh -dump-drift split trips
# the detector exactly once. The pre-drift export must come back
# byte-identically after the rollback.
DRIFT_ADDR="${SMORE_E2E_DRIFT_ADDR:-127.0.0.1:8794}"
"$tmp/smore-serve" -load "$tmp/source.smore" -addr "$DRIFT_ADDR" \
  -stream-queue 256 -stream-batch 8 -drift-policy spawn &
drift_pid=$!
pids+=("$drift_pid")
wait_healthz "$DRIFT_ADDR" "$drift_pid"

drain_drift() { # $1: expected windows_folded_total
  for _ in $(seq 1 100); do
    dstats=$(curl -fsS "http://$DRIFT_ADDR/v1/stream/stats")
    if echo "$dstats" | grep >/dev/null "\"windows_folded_total\":$1"; then return 0; fi
    sleep 0.1
  done
  fail "drift server never folded $1 windows: $dstats"
}

curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$DRIFT_ADDR/v1/stream/adapt" >/dev/null
drain_drift 96
echo "$dstats" | grep >/dev/null '"targets_spawned_total":0' || fail "phase A spawned a target: $dstats"
echo "$dstats" | grep >/dev/null '"targets_live":1' || fail "phase A must end with one live target: $dstats"
echo "$dstats" | grep >/dev/null '"similarity_ema_valid":true' || fail "phase A left no similarity trajectory: $dstats"
echo "$dstats" | grep >/dev/null '"has_checkpoint":false' || fail "checkpoint exists before any spawn: $dstats"
curl -fsS "http://$DRIFT_ADDR/v1/model" -o "$tmp/predrift.smore"

curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/drift.windows.json" "http://$DRIFT_ADDR/v1/stream/adapt" >/dev/null
drain_drift 192
echo "$dstats" | grep >/dev/null '"targets_spawned_total":1' || fail "second shift did not spawn exactly one target: $dstats"
echo "$dstats" | grep >/dev/null '"targets_live":2' || fail "expected two live targets after the spawn: $dstats"
echo "$dstats" | grep >/dev/null '"has_checkpoint":true' || fail "spawn left no checkpoint: $dstats"

curl -fsS "http://$DRIFT_ADDR/metrics" >"$tmp/drift_metrics.txt"
for want in 'smore_model_targets{model="default"} 2' \
    'smore_stream_targets_spawned_total{model="default"} 1' \
    'smore_stream_rollbacks_total{model="default"} 0'; do
  grep -qF "$want" "$tmp/drift_metrics.txt" || fail "drift metrics missing '$want'"
done

code=$(curl -s -o "$tmp/rollback.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{}' "http://$DRIFT_ADDR/v1/stream/rollback")
[ "$code" = "200" ] || fail "rollback returned $code, want 200"
grep -q '"rolled_back":true' "$tmp/rollback.json" || fail "rollback did not report success: $(cat "$tmp/rollback.json")"
grep -q '"targets_live":1' "$tmp/rollback.json" || fail "rollback did not shrink the target set: $(cat "$tmp/rollback.json")"
curl -fsS "http://$DRIFT_ADDR/v1/model" -o "$tmp/postroll.smore"
cmp "$tmp/predrift.smore" "$tmp/postroll.smore" \
  || fail "rollback did not restore the pre-drift bundle byte-identically"
curl -fsS "http://$DRIFT_ADDR/metrics" | grep >/dev/null 'smore_stream_rollbacks_total{model="default"} 1' \
  || fail "rollback did not count on the metrics surface"
echo "e2e: drift spawn, stats/metrics, byte-identical rollback OK"

# --- chaos: kill -9 mid-stream, recover from durable checkpoints -------------
# A spawn-policy server with a -state-dir replays the two-shift scenario,
# persists a checkpoint (model + drift rollback) via POST /v1/checkpoint,
# then gets SIGKILLed with windows still in the queue. A restart on the same
# state dir must serve the checkpointed bundle byte-identically, keep the
# drift rollback available across the crash, and resume folding new windows.
CHAOS_ADDR="${SMORE_E2E_CHAOS_ADDR:-127.0.0.1:8795}"
"$tmp/smore-serve" -load "$tmp/source.smore" -addr "$CHAOS_ADDR" \
  -stream-queue 256 -stream-batch 8 -drift-policy spawn \
  -state-dir "$tmp/chaos-state" &
chaos_pid=$!
pids+=("$chaos_pid")
wait_healthz "$CHAOS_ADDR" "$chaos_pid"

drain_chaos() { # $1: expected windows_folded_total
  for _ in $(seq 1 100); do
    cstats=$(curl -fsS "http://$CHAOS_ADDR/v1/stream/stats")
    if echo "$cstats" | grep >/dev/null "\"windows_folded_total\":$1"; then return 0; fi
    sleep 0.1
  done
  fail "chaos server never folded $1 windows: $cstats"
}

curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$CHAOS_ADDR/v1/stream/adapt" >/dev/null
drain_chaos 96
curl -fsS "http://$CHAOS_ADDR/v1/model" -o "$tmp/chaos_predrift.smore"

curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/drift.windows.json" "http://$CHAOS_ADDR/v1/stream/adapt" >/dev/null
drain_chaos 192
echo "$cstats" | grep >/dev/null '"has_checkpoint":true' || fail "chaos drift did not spawn a rollback checkpoint: $cstats"

# Persist the adapted model AND its drift rollback durably, and export the
# exact bytes the restart must come back with.
code=$(curl -s -o "$tmp/ckpt_ack.json" -w '%{http_code}' -X POST "http://$CHAOS_ADDR/v1/checkpoint")
[ "$code" = "200" ] || fail "manual checkpoint returned $code, want 200"
grep -q '"generation"' "$tmp/ckpt_ack.json" || fail "checkpoint ack has no generation: $(cat "$tmp/ckpt_ack.json")"
[ -f "$tmp/chaos-state/default/MANIFEST.json" ] || fail "checkpoint wrote no manifest"
curl -fsS "http://$CHAOS_ADDR/v1/model" -o "$tmp/chaos_ckpt.smore"

# Crash hard with fresh windows still queued: everything since the manual
# checkpoint is legitimately lost; nothing durable may be torn.
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$CHAOS_ADDR/v1/stream/adapt" >/dev/null
kill -9 "$chaos_pid"
wait "$chaos_pid" 2>/dev/null || true

"$tmp/smore-serve" -load "$tmp/source.smore" -addr "$CHAOS_ADDR" \
  -stream-queue 256 -stream-batch 8 -drift-policy spawn \
  -state-dir "$tmp/chaos-state" &
chaos_pid=$!
pids+=("$chaos_pid")
wait_healthz "$CHAOS_ADDR" "$chaos_pid"

curl -fsS "http://$CHAOS_ADDR/v1/model" -o "$tmp/chaos_recovered.smore"
cmp "$tmp/chaos_ckpt.smore" "$tmp/chaos_recovered.smore" \
  || fail "post-crash recovery is not byte-identical to the last checkpoint"

# The drift rollback checkpoint must survive the crash: rollback restores the
# pre-drift bundle byte-identically, exactly as it would have before the kill.
curl -fsS "http://$CHAOS_ADDR/v1/stream/stats" | grep >/dev/null '"has_checkpoint":true' \
  || fail "drift rollback checkpoint did not survive the crash"
code=$(curl -s -o "$tmp/chaos_rb.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{}' "http://$CHAOS_ADDR/v1/stream/rollback")
[ "$code" = "200" ] || fail "post-crash rollback returned $code, want 200"
curl -fsS "http://$CHAOS_ADDR/v1/model" -o "$tmp/chaos_postroll.smore"
cmp "$tmp/chaos_predrift.smore" "$tmp/chaos_postroll.smore" \
  || fail "post-crash rollback did not restore the pre-drift bundle byte-identically"

# Serving resumes: new windows are accepted and folded by the revived server.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/target.windows.json" "http://$CHAOS_ADDR/v1/stream/adapt")
[ "$code" = "202" ] || fail "revived server rejected new stream windows ($code), want 202"
drain_chaos 96
echo "e2e: kill -9 recovery, checkpoint byte-identity, rollback survival OK"

# SIGTERM must drain cleanly: all three streaming servers exit 0, and the
# revived chaos server writes its final checkpoint on the way out.
kill -TERM "$stream_pid" "$tiny_pid" "$drift_pid" "$chaos_pid"
wait "$stream_pid" || fail "stream server did not shut down cleanly on SIGTERM"
wait "$tiny_pid" || fail "tiny-queue server did not shut down cleanly on SIGTERM"
wait "$drift_pid" || fail "drift server did not shut down cleanly on SIGTERM"
wait "$chaos_pid" || fail "chaos server did not shut down cleanly on SIGTERM"

echo "e2e serve OK"
